//! Seeding strategies: weighted k-means++ and weighted random sampling.

use crate::assign::sq_distance_to_nearest;
use rand::Rng;
use ustream_common::DeterministicPoint;

/// Samples an index with probability proportional to `weights[i]`.
///
/// Falls back to uniform sampling when every weight is zero (e.g. all
/// candidate points coincide with already-chosen seeds).
pub fn sample_weighted_index<R: Rng>(weights: &[f64], rng: &mut R) -> usize {
    debug_assert!(!weights.is_empty());
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// k-means++ seeding over weighted points.
///
/// The first seed is drawn with probability proportional to point weight (the
/// CluStream modification); subsequent seeds proportional to
/// `weight · D(x)²` where `D(x)` is the distance to the nearest chosen seed.
pub fn kmeans_pp_seeds<R: Rng>(
    points: &[DeterministicPoint],
    k: usize,
    rng: &mut R,
) -> Vec<Vec<f64>> {
    assert!(!points.is_empty(), "cannot seed k-means on empty input");
    let k = k.min(points.len());
    let mut seeds: Vec<Vec<f64>> = Vec::with_capacity(k);

    let weights: Vec<f64> = points.iter().map(|p| p.weight.max(0.0)).collect();
    let first = sample_weighted_index(&weights, rng);
    seeds.push(points[first].values.clone());

    // lint:allow(hot-panic): seeds is non-empty — first seed pushed on the previous line
    let mut d2: Vec<f64> = points.iter().map(|p| p.sq_distance_to(&seeds[0])).collect();
    while seeds.len() < k {
        let scores: Vec<f64> = d2.iter().zip(&weights).map(|(d, w)| d * w).collect();
        let next = sample_weighted_index(&scores, rng);
        let seed = points[next].values.clone();
        // Incremental D² update: only distances to the new seed can shrink.
        for (dist, p) in d2.iter_mut().zip(points) {
            let nd = p.sq_distance_to(&seed);
            if nd < *dist {
                *dist = nd;
            }
        }
        seeds.push(seed);
    }
    debug_assert_eq!(seeds.len(), k, "seeding must produce exactly k centroids");
    let _ = sq_distance_to_nearest; // re-exported for callers; silence unused in some cfgs
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let weights = [0.0, 0.0, 1.0, 0.0];
        for _ in 0..50 {
            assert_eq!(sample_weighted_index(&weights, &mut rng), 2);
        }
    }

    #[test]
    fn weighted_sampling_all_zero_falls_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let weights = [0.0, 0.0, 0.0];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[sample_weighted_index(&weights, &mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn weighted_sampling_distribution_roughly_proportional() {
        let mut rng = StdRng::seed_from_u64(3);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..4000 {
            counts[sample_weighted_index(&weights, &mut rng)] += 1;
        }
        let frac = counts[1] as f64 / 4000.0;
        assert!((frac - 0.75).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn seeds_spread_across_separated_blobs() {
        let mut pts: Vec<DeterministicPoint> = (0..20)
            .map(|i| DeterministicPoint::new(vec![(i % 4) as f64 * 0.01, 0.0]))
            .collect();
        pts.extend(
            (0..20).map(|i| DeterministicPoint::new(vec![100.0 + (i % 4) as f64 * 0.01, 0.0])),
        );
        let mut rng = StdRng::seed_from_u64(4);
        let seeds = kmeans_pp_seeds(&pts, 2, &mut rng);
        assert_eq!(seeds.len(), 2);
        // With D² weighting the two seeds must land in different blobs.
        let sides: Vec<bool> = seeds.iter().map(|s| s[0] > 50.0).collect();
        assert_ne!(sides[0], sides[1], "seeds: {seeds:?}");
    }

    #[test]
    fn k_clamped_to_points() {
        let pts = vec![DeterministicPoint::new(vec![1.0]); 2];
        let mut rng = StdRng::seed_from_u64(5);
        let seeds = kmeans_pp_seeds(&pts, 6, &mut rng);
        assert_eq!(seeds.len(), 2);
    }

    #[test]
    #[should_panic(expected = "empty input")]
    fn empty_input_panics() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = kmeans_pp_seeds(&[], 2, &mut rng);
    }
}
