//! Point-to-centroid assignment and SSQ computation.

use ustream_common::point::sq_euclidean;
use ustream_common::DeterministicPoint;

/// Result of assigning every point to its nearest centroid.
#[derive(Debug, Clone)]
pub struct Assignments {
    /// `owner[i]` = index of the centroid nearest to point `i`.
    pub owner: Vec<usize>,
    /// Weighted sum over points of squared distance to their owner.
    pub weighted_ssq: f64,
}

/// Squared distance from `point` to the nearest of `centroids`, together
/// with the winning index. Centroids must be non-empty.
#[inline]
pub fn sq_distance_to_nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    debug_assert!(!centroids.is_empty());
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_euclidean(point, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// Assigns every weighted point to its nearest centroid.
pub fn assign_all(points: &[DeterministicPoint], centroids: &[Vec<f64>]) -> Assignments {
    let mut owner = Vec::with_capacity(points.len());
    let mut ssq = 0.0;
    for p in points {
        let (idx, d) = sq_distance_to_nearest(&p.values, centroids);
        owner.push(idx);
        ssq += p.weight * d;
    }
    Assignments {
        owner,
        weighted_ssq: ssq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_picks_minimum() {
        let cents = vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![5.0, 5.0]];
        let (idx, d) = sq_distance_to_nearest(&[9.0, 1.0], &cents);
        assert_eq!(idx, 1);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_tie_goes_to_first() {
        let cents = vec![vec![-1.0], vec![1.0]];
        let (idx, _) = sq_distance_to_nearest(&[0.0], &cents);
        assert_eq!(idx, 0);
    }

    #[test]
    fn assign_all_computes_weighted_ssq() {
        let pts = vec![
            DeterministicPoint::weighted(vec![1.0], 2.0), // d²=1 to centroid 0
            DeterministicPoint::weighted(vec![11.0], 3.0), // d²=1 to centroid 1
        ];
        let cents = vec![vec![0.0], vec![10.0]];
        let a = assign_all(&pts, &cents);
        assert_eq!(a.owner, vec![0, 1]);
        assert!((a.weighted_ssq - (2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn assign_all_empty_points() {
        let a = assign_all(&[], &[vec![0.0]]);
        assert!(a.owner.is_empty());
        assert_eq!(a.weighted_ssq, 0.0);
    }
}
