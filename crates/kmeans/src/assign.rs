//! Point-to-centroid assignment and SSQ computation.
//!
//! The hot loop of Lloyd's algorithm is the nearest-centroid scan. For that
//! scan the centroids are packed once per iteration into a [`CentroidBlock`]
//! — a row-major `k × d` matrix plus cached squared norms — so the distance
//! `‖x − c‖² = ‖x‖² + ‖c‖² − 2⟨x, c⟩` reduces to one fused dot product per
//! centroid over contiguous memory, mirroring the SoA distance kernel the
//! `umicro` crate uses for its micro-cluster ranking.

use ustream_common::point::sq_euclidean;
use ustream_common::DeterministicPoint;

/// Dot product with four independent accumulators so the autovectorizer can
/// keep several FMA chains in flight.
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] * b[j];
        acc1 += a[j + 1] * b[j + 1];
        acc2 += a[j + 2] * b[j + 2];
        acc3 += a[j + 3] * b[j + 3];
    }
    let mut tail = 0.0;
    for j in (chunks * 4)..a.len() {
        tail += a[j] * b[j];
    }
    (acc0 + acc1) + (acc2 + acc3) + tail
}

/// Centroids packed for the nearest-centroid scan: row-major `k × d` values
/// with each row's squared norm cached, so scanning a point against all `k`
/// centroids is `k` dot products over contiguous memory.
#[derive(Debug, Clone)]
pub struct CentroidBlock {
    dims: usize,
    data: Vec<f64>,
    sq_norms: Vec<f64>,
}

impl CentroidBlock {
    /// Packs `centroids` (all of equal dimensionality) into a block.
    pub fn from_centroids(centroids: &[Vec<f64>]) -> Self {
        let dims = centroids.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(dims * centroids.len());
        let mut sq_norms = Vec::with_capacity(centroids.len());
        for c in centroids {
            debug_assert_eq!(c.len(), dims);
            data.extend_from_slice(c);
            sq_norms.push(dot(c, c));
        }
        Self {
            dims,
            data,
            sq_norms,
        }
    }

    /// Number of centroids in the block.
    pub fn len(&self) -> usize {
        self.sq_norms.len()
    }

    /// Whether the block holds no centroids.
    pub fn is_empty(&self) -> bool {
        self.sq_norms.is_empty()
    }

    /// Index of the nearest centroid and the squared distance to it, via
    /// `‖x‖² + ‖c_i‖² − 2⟨x, c_i⟩` (clamped at zero against rounding). Ties
    /// keep the lowest index, like the scalar scan. The block must be
    /// non-empty.
    #[inline]
    pub fn nearest(&self, point: &[f64]) -> (usize, f64) {
        debug_assert!(!self.is_empty());
        debug_assert_eq!(point.len(), self.dims);
        if self.dims == 0 {
            return (0, 0.0);
        }
        let point_norm = dot(point, point);
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, row) in self.data.chunks_exact(self.dims).enumerate() {
            let score = self.sq_norms[i] - 2.0 * dot(point, row);
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        (best, (point_norm + best_score).max(0.0))
    }
}

/// Result of assigning every point to its nearest centroid.
#[derive(Debug, Clone)]
pub struct Assignments {
    /// `owner[i]` = index of the centroid nearest to point `i`.
    pub owner: Vec<usize>,
    /// Weighted sum over points of squared distance to their owner.
    pub weighted_ssq: f64,
}

/// Squared distance from `point` to the nearest of `centroids`, together
/// with the winning index. Centroids must be non-empty.
#[inline]
pub fn sq_distance_to_nearest(point: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    debug_assert!(!centroids.is_empty());
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_euclidean(point, c);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

/// Assigns every weighted point to its nearest centroid. The centroids are
/// packed into a [`CentroidBlock`] once and every point is scanned against
/// the block.
pub fn assign_all(points: &[DeterministicPoint], centroids: &[Vec<f64>]) -> Assignments {
    let mut owner = Vec::with_capacity(points.len());
    let mut ssq = 0.0;
    if centroids.is_empty() {
        owner.resize(points.len(), 0);
        return Assignments {
            owner,
            weighted_ssq: ssq,
        };
    }
    let block = CentroidBlock::from_centroids(centroids);
    for p in points {
        let (idx, d) = block.nearest(&p.values);
        owner.push(idx);
        ssq += p.weight * d;
    }
    Assignments {
        owner,
        weighted_ssq: ssq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_picks_minimum() {
        let cents = vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![5.0, 5.0]];
        let (idx, d) = sq_distance_to_nearest(&[9.0, 1.0], &cents);
        assert_eq!(idx, 1);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_tie_goes_to_first() {
        let cents = vec![vec![-1.0], vec![1.0]];
        let (idx, _) = sq_distance_to_nearest(&[0.0], &cents);
        assert_eq!(idx, 0);
    }

    #[test]
    fn assign_all_computes_weighted_ssq() {
        let pts = vec![
            DeterministicPoint::weighted(vec![1.0], 2.0), // d²=1 to centroid 0
            DeterministicPoint::weighted(vec![11.0], 3.0), // d²=1 to centroid 1
        ];
        let cents = vec![vec![0.0], vec![10.0]];
        let a = assign_all(&pts, &cents);
        assert_eq!(a.owner, vec![0, 1]);
        assert!((a.weighted_ssq - (2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn assign_all_empty_points() {
        let a = assign_all(&[], &[vec![0.0]]);
        assert!(a.owner.is_empty());
        assert_eq!(a.weighted_ssq, 0.0);
    }

    #[test]
    fn block_nearest_matches_scalar_scan() {
        let cents: Vec<Vec<f64>> = (0..7)
            .map(|i| {
                (0..5)
                    .map(|j| ((i * 5 + j) as f64 * 0.37).sin() * 3.0)
                    .collect()
            })
            .collect();
        let block = CentroidBlock::from_centroids(&cents);
        assert_eq!(block.len(), 7);
        for s in 0..40 {
            let p: Vec<f64> = (0..5)
                .map(|j| ((s * 5 + j) as f64 * 0.71).cos() * 4.0)
                .collect();
            let (scalar_idx, scalar_d) = sq_distance_to_nearest(&p, &cents);
            let (block_idx, block_d) = block.nearest(&p);
            assert_eq!(block_idx, scalar_idx);
            assert!(
                (block_d - scalar_d).abs() <= 1e-9 * scalar_d.max(1.0),
                "d mismatch: block {block_d} scalar {scalar_d}"
            );
        }
    }

    #[test]
    fn block_tie_goes_to_first_and_clamps() {
        let block = CentroidBlock::from_centroids(&[vec![-1.0], vec![1.0]]);
        let (idx, _) = block.nearest(&[0.0]);
        assert_eq!(idx, 0);
        let (_, d) = block.nearest(&[-1.0]);
        assert!((0.0..1e-12).contains(&d));
    }
}
