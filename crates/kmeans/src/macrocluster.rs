//! Generic macro-clustering result shared by the micro-clustering
//! frameworks: weighted k-means over micro-cluster centroids, keeping the
//! micro→macro assignment keyed by stable micro-cluster id.

use crate::{kmeans, sq_distance_to_nearest, KMeansConfig};
use ustream_common::DeterministicPoint;

/// Result of clustering weighted micro-cluster representatives into `k`
/// user-facing macro-clusters.
#[derive(Debug, Clone)]
pub struct MacroClustering {
    /// Macro-cluster centroids (`k × d`).
    pub centroids: Vec<Vec<f64>>,
    /// Total micro-cluster weight under each macro centroid.
    pub weights: Vec<f64>,
    /// `(micro_cluster_id, macro_index)` for every input micro-cluster.
    pub micro_assignments: Vec<(u64, usize)>,
    /// Weighted SSQ of micro-centroids about their macro centroids.
    pub ssq: f64,
}

impl MacroClustering {
    /// Number of macro clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Index of the macro cluster nearest to `values`.
    pub fn assign(&self, values: &[f64]) -> usize {
        sq_distance_to_nearest(values, &self.centroids).0
    }

    /// The macro index a given micro-cluster id was assigned, if present.
    pub fn macro_of_micro(&self, micro_id: u64) -> Option<usize> {
        self.micro_assignments
            .iter()
            .find(|(id, _)| *id == micro_id)
            .map(|(_, m)| *m)
    }
}

/// Clusters `(id, centroid, weight)` triples into `k` macro clusters.
/// Zero-weight entries are skipped.
pub fn macro_cluster_weighted(
    reps: impl Iterator<Item = (u64, Vec<f64>, f64)>,
    k: usize,
    seed: u64,
) -> MacroClustering {
    let mut ids = Vec::new();
    let mut points = Vec::new();
    for (id, centroid, weight) in reps {
        if weight <= 0.0 {
            continue;
        }
        ids.push(id);
        points.push(DeterministicPoint::weighted(centroid, weight));
    }
    let res = kmeans(&points, &KMeansConfig::new(k, seed));
    let mut weights = vec![0.0; res.centroids.len()];
    for (p, &a) in points.iter().zip(&res.assignments) {
        weights[a] += p.weight;
    }
    MacroClustering {
        centroids: res.centroids,
        weights,
        micro_assignments: ids.into_iter().zip(res.assignments).collect(),
        ssq: res.ssq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_weighted_representatives() {
        let reps = vec![
            (1u64, vec![0.0, 0.0], 5.0),
            (2, vec![0.2, 0.1], 5.0),
            (3, vec![10.0, 10.0], 5.0),
            (4, vec![10.1, 9.9], 5.0),
        ];
        let mac = macro_cluster_weighted(reps.into_iter(), 2, 7);
        assert_eq!(mac.k(), 2);
        assert_eq!(mac.macro_of_micro(1), mac.macro_of_micro(2));
        assert_eq!(mac.macro_of_micro(3), mac.macro_of_micro(4));
        assert_ne!(mac.macro_of_micro(1), mac.macro_of_micro(3));
        assert!((mac.weights.iter().sum::<f64>() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_weight_skipped_and_unknown_none() {
        let reps = vec![(1u64, vec![0.0], 0.0), (2, vec![1.0], 3.0)];
        let mac = macro_cluster_weighted(reps.into_iter(), 2, 0);
        assert_eq!(mac.micro_assignments.len(), 1);
        assert_eq!(mac.macro_of_micro(1), None);
        assert_eq!(mac.macro_of_micro(2), Some(0));
    }

    #[test]
    fn assign_routes_to_nearest() {
        let reps = vec![(1u64, vec![0.0], 1.0), (2, vec![10.0], 1.0)];
        let mac = macro_cluster_weighted(reps.into_iter(), 2, 1);
        assert_ne!(mac.assign(&[-1.0]), mac.assign(&[11.0]));
    }

    #[test]
    fn empty_input() {
        let mac = macro_cluster_weighted(std::iter::empty(), 3, 0);
        assert_eq!(mac.k(), 0);
        assert!(mac.micro_assignments.is_empty());
    }
}
