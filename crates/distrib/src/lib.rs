//! Fault-tolerant distributed tier: exact multi-node ECF delta shipping.
//!
//! The ECF summaries this workspace clusters with are additive (Property
//! 2.1 of the source paper), so a multi-node deployment can be *exact*:
//! each [`Site`] runs the full sharded [`ustream_engine::StreamEngine`]
//! over its sub-stream and periodically ships the micro-clusters that
//! changed since its last acknowledged epoch; the [`Coordinator`] holds a
//! per-site replica of those maps and merges them — bit-for-bit equal to
//! what a single engine over the interleaved stream would hold, because
//! deltas carry whole ECFs (replace semantics) rather than increments.
//!
//! The tier is built to survive a hostile network and crashing sites:
//!
//! * every frame is length-prefixed and checksummed (the serving tier's
//!   USRV codec); corrupt bytes are rejected, counted, and retried;
//! * epochs are sequence-numbered per site; duplicates are dropped and
//!   re-acked (never re-merged), gaps are nacked and answered with a
//!   `full` resync frame;
//! * shipping uses bounded retry with exponential backoff and jitter
//!   ([`ustream_common::Backoff`]); a partition exhausts the budget and
//!   the site keeps clustering — dirty state rides the next epoch;
//! * sites rotate engine checkpoints between records; a respawned site
//!   restores the newest readable generation, re-feeds its sub-stream
//!   tail, learns the coordinator's `last_applied` in the hello
//!   handshake, and resyncs with a full frame — no double-count, no gap;
//! * the coordinator tracks per-site liveness and flags sites silent
//!   longer than a configurable suspicion timeout;
//! * the coordinator itself is durable when given a
//!   [`DurabilityPolicy`]: every applied epoch is fsynced to an
//!   epoch-commit WAL *before* the ack (so every acked epoch survives a
//!   coordinator crash), the full merged state rotates through snapshot
//!   generations periodically (truncating the WAL), and
//!   [`Coordinator::resume`] rebuilds from newest-intact-snapshot + WAL
//!   tail — reconnecting sites ship a bounded delta tail instead of a
//!   full resync, and [`Site::repoint`] fails them over to the resumed
//!   coordinator's address.
//!
//! Under `--features failpoints` the transport routes every send through
//! the engine's failpoint registry (`net-drop`, `net-dup`, `net-reorder`,
//! `net-corrupt`, `net-delay`, `net-partition-site-N`), and the
//! coordinator arms crash points around the WAL commit (`coord-crash-
//! pre-wal`, `coord-crash-post-wal`, `coord-wal-torn`,
//! `coord-snapshot-torn`), which is how the chaos tests drive
//! deterministic fault schedules.

pub mod coordinator;
pub mod io;
pub mod protocol;
pub mod site;
pub mod wal;

pub use coordinator::{Coordinator, CoordinatorConfig, DurabilityPolicy};
pub use io::{Transport, TransportStats};
pub use protocol::{
    global_cluster_id, site_of_global, CoordRecovery, CoordResponse, CoordStats, DeltaFrame,
    SiteHealth, SiteRequest, MAX_SITES, SITE_ID_SHIFT,
};
pub use site::{CheckpointPolicy, RetryPolicy, Site, SiteConfig, SiteStats};
pub use wal::{Wal, WalReplay};
