//! Epoch-commit write-ahead log for the coordinator.
//!
//! This module is the *only* place in `crates/distrib` that touches WAL
//! files (the `wal-funnel` lint rule enforces that): every durability
//! decision — record framing, checksumming, fsync, truncation — lives in
//! one audited funnel, the same way all socket I/O is confined to
//! [`crate::io`].
//!
//! One record per applied `(site, epoch)` delta frame, appended and
//! fsynced *before* the ack goes back to the site. The record format
//! reuses the engine checkpoint header codec
//! ([`ustream_engine::checkpoint::encode_payload`]):
//!
//! ```text
//! UWALREC 1 <payload-bytes> <fnv1a64-hex>\n<json DeltaFrame>
//! ```
//!
//! Because the ack is sent only after the record is durable, every acked
//! epoch is recoverable from snapshot ∪ WAL; a torn tail record can only
//! belong to an epoch that was never acked, which the site retries
//! anyway. [`replay`] therefore truncates at the first bad checksum and
//! loses nothing that was promised.

use crate::protocol::DeltaFrame;
use std::fs::{File, OpenOptions};
use std::io::{Seek, Write};
use ustream_common::{Result, UStreamError};
use ustream_engine::checkpoint::{decode_framed, encode_payload};

/// Magic tag of one WAL record header.
pub const WAL_MAGIC: &str = "UWALREC";
/// Record format version this build writes and reads.
pub const WAL_VERSION: u32 = 1;

/// Append-only WAL handle owned by a live coordinator.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: String,
    records: u64,
    bytes: u64,
}

fn io_err(path: &str, op: &str, e: std::io::Error) -> UStreamError {
    UStreamError::Io(std::io::Error::new(e.kind(), format!("{op} {path}: {e}")))
}

fn encode_record(frame: &DeltaFrame) -> Result<Vec<u8>> {
    let json = serde_json::to_string(frame)
        .map_err(|e| UStreamError::Checkpoint(format!("WAL record encode: {e}")))?;
    Ok(encode_payload(WAL_MAGIC, WAL_VERSION, json.as_bytes()))
}

impl Wal {
    /// Creates (or truncates) the WAL at `path`. Used on a fresh,
    /// non-resumed start: nothing durable exists yet, so nothing to keep.
    pub fn create(path: &str) -> Result<Self> {
        let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
        Ok(Self {
            file,
            path: path.to_string(),
            records: 0,
            bytes: 0,
        })
    }

    /// Opens the WAL at `path` for appending, after [`replay`] has
    /// already truncated any torn tail. `records` is the replay's record
    /// count, so the handle's counters continue from the survivors.
    pub fn open_appending(path: &str, records: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        let bytes = file.metadata().map_err(|e| io_err(path, "stat", e))?.len();
        Ok(Self {
            file,
            path: path.to_string(),
            records,
            bytes,
        })
    }

    /// Appends one applied epoch and fsyncs it. The caller must not ack
    /// the epoch until this returns `Ok` — that ordering is the whole
    /// durability argument.
    ///
    /// # Errors
    ///
    /// [`UStreamError::Io`] when the write or fsync fails; the caller
    /// treats that as a crash (no ack), because the record may be torn.
    pub fn append(&mut self, frame: &DeltaFrame) -> Result<()> {
        let record = encode_record(frame)?;
        #[cfg(feature = "failpoints")]
        if ustream_engine::failpoints::should_fire(ustream_engine::failpoints::COORD_WAL_TORN) {
            // Tear the record: half the bytes land, then the "process
            // dies". Replay must cut the WAL back to the previous record.
            let half = &record[..record.len() / 2];
            let _ = self.file.write_all(half);
            let _ = self.file.sync_data();
            self.bytes += half.len() as u64;
            return Err(UStreamError::Io(std::io::Error::other(format!(
                "{}: torn WAL write (failpoint)",
                self.path
            ))));
        }
        self.file
            .write_all(&record)
            .map_err(|e| io_err(&self.path, "append", e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.path, "fsync", e))?;
        self.records += 1;
        self.bytes += record.len() as u64;
        Ok(())
    }

    /// Empties the WAL after a successful snapshot: everything the log
    /// held is now covered by the snapshot generation.
    pub fn truncate(&mut self) -> Result<()> {
        self.file
            .set_len(0)
            .map_err(|e| io_err(&self.path, "truncate", e))?;
        // set_len does not move the write cursor: without the rewind the
        // next append would land at the old offset, leaving a hole of
        // zero bytes that poisons the whole log at replay.
        self.file
            .seek(std::io::SeekFrom::Start(0))
            .map_err(|e| io_err(&self.path, "rewind", e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.path, "fsync", e))?;
        self.records = 0;
        self.bytes = 0;
        Ok(())
    }

    /// Records appended since the last truncation (or replay count).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Bytes currently in the log.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// What [`replay`] recovered from a WAL file.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// The decoded records, oldest first, ending at the last intact one.
    pub frames: Vec<DeltaFrame>,
    /// Count of intact records (`frames.len()` as u64).
    pub records: u64,
    /// Bytes of the intact prefix — the file's length after replay.
    pub bytes: u64,
    /// Whether a torn/corrupt tail was found and cut off.
    pub truncated: bool,
    /// Bytes the truncation discarded.
    pub dropped_bytes: u64,
}

/// Replays the WAL at `path`: decodes records until the first bad
/// checksum / torn header, truncates the file back to the intact prefix,
/// and returns the surviving frames oldest-first. A missing file is an
/// empty (fully successful) replay.
///
/// # Errors
///
/// [`UStreamError::Io`] when the file exists but cannot be read or the
/// truncation write-back fails.
pub fn replay(path: &str) -> Result<WalReplay> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(io_err(path, "read", e)),
    };
    let mut out = WalReplay::default();
    let mut offset = 0usize;
    while offset < bytes.len() {
        let tail = &bytes[offset..];
        let parsed = decode_framed(WAL_MAGIC, WAL_VERSION, tail).and_then(|(payload, len)| {
            let text = std::str::from_utf8(payload)
                .map_err(|_| UStreamError::Checkpoint("WAL payload is not UTF-8".into()))?;
            let frame = serde_json::from_str::<DeltaFrame>(text)
                .map_err(|e| UStreamError::Checkpoint(format!("WAL record decode: {e}")))?;
            Ok((frame, len))
        });
        let Ok((frame, len)) = parsed else {
            out.truncated = true;
            break;
        };
        out.frames.push(frame);
        offset += len;
    }
    out.records = out.frames.len() as u64;
    out.bytes = offset as u64;
    out.dropped_bytes = (bytes.len() - offset) as u64;
    if out.dropped_bytes > 0 {
        out.truncated = true;
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        file.set_len(out.bytes)
            .map_err(|e| io_err(path, "truncate", e))?;
        file.sync_data().map_err(|e| io_err(path, "fsync", e))?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::DeltaFrame;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> String {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed); // relaxed-ok: unique-name counter
        std::env::temp_dir()
            .join(format!("uwal-{tag}-{}-{n}.wal", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn frame(site: u64, seq: u64) -> DeltaFrame {
        DeltaFrame {
            site,
            seq,
            full: false,
            updates: std::collections::BTreeMap::new(),
            removes: vec![seq + 100],
            points: seq * 3,
            last_tick: seq * 10,
        }
    }

    #[test]
    fn append_replay_round_trip() {
        let path = temp_path("rt");
        let mut wal = Wal::create(&path).unwrap();
        for seq in 1..=5 {
            wal.append(&frame(2, seq)).unwrap();
        }
        assert_eq!(wal.records(), 5);
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records, 5);
        assert!(!replayed.truncated);
        assert_eq!(replayed.bytes, wal.bytes());
        for (i, f) in replayed.frames.iter().enumerate() {
            assert_eq!(*f, frame(2, i as u64 + 1));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_wal_is_empty_replay() {
        let path = temp_path("missing");
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records, 0);
        assert!(!replayed.truncated);
    }

    #[test]
    fn torn_tail_truncated_and_survivors_kept() {
        let path = temp_path("torn");
        let mut wal = Wal::create(&path).unwrap();
        for seq in 1..=3 {
            wal.append(&frame(1, seq)).unwrap();
        }
        let good_bytes = wal.bytes();
        drop(wal);
        // Simulate a torn fourth record: append half of a valid record.
        let rec = encode_record(&frame(1, 4)).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&rec[..rec.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records, 3);
        assert!(replayed.truncated);
        assert_eq!(replayed.bytes, good_bytes);
        assert_eq!(replayed.dropped_bytes, (rec.len() / 2) as u64);
        // The file really shrank: a second replay is clean.
        let again = replay(&path).unwrap();
        assert_eq!(again.records, 3);
        assert!(!again.truncated);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncate_then_append_leaves_no_hole() {
        let path = temp_path("trunc");
        let mut wal = Wal::create(&path).unwrap();
        for seq in 1..=3 {
            wal.append(&frame(1, seq)).unwrap();
        }
        wal.truncate().unwrap();
        assert_eq!(wal.bytes(), 0);
        wal.append(&frame(1, 4)).unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records, 1, "no zero-byte hole before the record");
        assert!(!replayed.truncated);
        assert_eq!(replayed.frames[0], frame(1, 4));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flipped_byte_mid_log_cuts_everything_after() {
        let path = temp_path("flip");
        let mut wal = Wal::create(&path).unwrap();
        let mut first_len = 0;
        for seq in 1..=4 {
            wal.append(&frame(3, seq)).unwrap();
            if seq == 1 {
                first_len = wal.bytes();
            }
        }
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = first_len as usize + 20; // inside record 2's payload
        bytes[idx] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();

        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.records, 1, "only the record before the flip");
        assert!(replayed.truncated);
        assert_eq!(replayed.bytes, first_len);
        let _ = std::fs::remove_file(&path);
    }
}
