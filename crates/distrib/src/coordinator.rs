//! The merging coordinator: accepts delta frames from sites, applies them
//! idempotently, and maintains the merged global micro-cluster view plus a
//! pyramidal horizon store over it.
//!
//! ## Idempotent application
//!
//! Per site the coordinator tracks `last_applied`, the highest contiguous
//! epoch it has merged. A frame with `seq <= last_applied` is a duplicate
//! — a retransmit race, a [`reordered`](ustream_engine::failpoints)
//! delivery, or a replay after a lost ack — and is *dropped, never
//! re-merged*; the coordinator re-acks so the sender unblocks. A frame
//! with `seq > last_applied + 1` means the coordinator is missing state
//! (typically its own restart) and is nacked with the expected sequence;
//! the site answers with a `full` resync frame. Only `seq ==
//! last_applied + 1` mutates state, and because deltas carry replace
//! semantics, even a hypothetical double-apply would be harmless.
//!
//! ## Durability (epoch-commit WAL + rotated snapshots)
//!
//! With a [`DurabilityPolicy`], every applied epoch is appended to a
//! checksummed WAL ([`crate::wal`]) and fsynced *before* the ack is
//! written back — so every acked epoch survives a coordinator crash.
//! Periodically the full coordinator state (per-site epoch maps + cluster
//! views, the horizon store, the epoch counter) rotates through snapshot
//! generations via the engine's checkpoint machinery, after which the WAL
//! is truncated. [`Coordinator::resume`] rebuilds from the newest intact
//! snapshot plus the WAL tail; a torn tail record can only carry a
//! never-acked epoch, so truncating it loses nothing that was promised.
//! Because recovery restores exactly the acked prefix per site, a
//! reconnecting site's next epoch is `last_applied + 1` and applies
//! cleanly — the bounded-delta-tail path; full resync stays as the
//! fallback for anything the WAL + snapshot genuinely did not cover.
//!
//! ## Liveness
//!
//! Each applied-or-acked frame stamps the site's `last_heard` instant; a
//! site silent longer than the configured suspicion timeout is reported
//! `suspect` in [`CoordStats`] — detection is the coordinator's job,
//! recovery (respawn + checkpoint replay) is the site runner's.

use crate::io::{read_frame, write_frame};
use crate::protocol::{
    decode_site_request, encode_coord_response, global_cluster_id, CoordRecovery, CoordResponse,
    CoordStats, DeltaFrame, SiteHealth, SiteRequest, MAX_SITES,
};
use crate::wal::{self, Wal};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use umicro::Ecf;
use ustream_common::ordered::{ranks, OrderedMutex};
use ustream_common::{Result, UStreamError};
use ustream_engine::checkpoint;
use ustream_snapshot::{ClusterSetSnapshot, HorizonTracker, PyramidConfig};

/// Magic tag of a coordinator snapshot generation.
pub const SNAP_MAGIC: &str = "UCOORDSNAP";
/// Snapshot format version this build writes and reads.
pub const SNAP_VERSION: u32 = 1;

/// Where and how often the coordinator persists itself.
#[derive(Debug, Clone)]
pub struct DurabilityPolicy {
    /// Snapshot base path: generations land at `<base>.N` with a
    /// `<base>.manifest`, the WAL at `<base>.wal`.
    pub base: String,
    /// Snapshot generations to retain.
    pub generations: u64,
    /// Write a durable snapshot (and truncate the WAL) every this many
    /// applied epochs — the recovery-cost ceiling in WAL records.
    pub snapshot_every_epochs: u64,
}

impl DurabilityPolicy {
    /// A policy with the default rotation depth (3) and snapshot cadence
    /// (every 32 epochs).
    pub fn new(base: impl Into<String>) -> Self {
        Self {
            base: base.into(),
            generations: 3,
            snapshot_every_epochs: 32,
        }
    }

    /// The WAL file path derived from `base`.
    #[must_use]
    pub fn wal_path(&self) -> String {
        format!("{}.wal", self.base)
    }
}

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Per-operation socket deadline.
    pub io_deadline: Duration,
    /// Largest accepted/emitted frame.
    pub max_frame_bytes: usize,
    /// A site silent for longer than this is reported `suspect`.
    pub suspicion_timeout: Duration,
    /// Pyramidal geometry of the horizon store over the merged view.
    pub pyramid: PyramidConfig,
    /// Record a merged snapshot into the horizon store every this many
    /// applied epochs (0 disables recording).
    pub snapshot_every_epochs: u64,
    /// When set, the coordinator WALs every applied epoch before acking
    /// and rotates durable snapshots; `None` keeps the in-memory-only
    /// behaviour (a crash forces every site into full resync).
    pub durability: Option<DurabilityPolicy>,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            io_deadline: Duration::from_secs(30),
            max_frame_bytes: crate::protocol::DEFAULT_MAX_FRAME_BYTES,
            suspicion_timeout: Duration::from_secs(10),
            pyramid: PyramidConfig::default(),
            snapshot_every_epochs: 4,
            durability: None,
        }
    }
}

/// What the coordinator holds for one site.
#[derive(Debug)]
struct SiteView {
    last_applied: u64,
    clusters: BTreeMap<u64, Ecf>,
    points: u64,
    last_tick: u64,
    last_heard: Instant,
}

impl SiteView {
    fn new() -> Self {
        Self {
            last_applied: 0,
            clusters: BTreeMap::new(),
            points: 0,
            last_tick: 0,
            last_heard: Instant::now(),
        }
    }
}

/// One site's slice of a [`CoordSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SiteSnap {
    site: u64,
    last_applied: u64,
    points: u64,
    last_tick: u64,
    clusters: BTreeMap<u64, Ecf>,
}

/// One recorded horizon-store entry of a [`CoordSnapshot`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HorizonEntry {
    time: u64,
    clusters: ClusterSetSnapshot<Ecf>,
}

/// The full durable coordinator state: everything [`Coordinator::resume`]
/// needs to continue as if the process had never died (modulo the WAL
/// tail, which replays on top).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct CoordSnapshot {
    /// Applied-epoch counter at snapshot time — the rotation ordinal.
    epochs_applied: u64,
    /// Per-site epoch/ack shadow maps and cluster views.
    sites: Vec<SiteSnap>,
    /// The horizon store's recorded snapshots, oldest first.
    horizon: Vec<HorizonEntry>,
}

fn decode_snapshot(bytes: &[u8]) -> Result<CoordSnapshot> {
    let payload = checkpoint::decode_payload(SNAP_MAGIC, SNAP_VERSION, bytes)?;
    let text = std::str::from_utf8(payload)
        .map_err(|_| UStreamError::Checkpoint("coordinator snapshot is not UTF-8".into()))?;
    serde_json::from_str(text)
        .map_err(|e| UStreamError::Checkpoint(format!("coordinator snapshot parse: {e}")))
}

fn encode_snapshot(snap: &CoordSnapshot) -> Result<Vec<u8>> {
    let json = serde_json::to_string(snap)
        .map_err(|e| UStreamError::Checkpoint(format!("coordinator snapshot encode: {e}")))?;
    Ok(checkpoint::encode_payload(
        SNAP_MAGIC,
        SNAP_VERSION,
        json.as_bytes(),
    ))
}

#[derive(Default)]
struct Counters {
    epochs_applied: AtomicU64,
    duplicates_dropped: AtomicU64,
    gaps_nacked: AtomicU64,
    frames_rejected: AtomicU64,
    frames_received: AtomicU64,
    bytes_received: AtomicU64,
}

struct Inner {
    cfg: CoordinatorConfig,
    sites: OrderedMutex<BTreeMap<u64, SiteView>>,
    horizons: OrderedMutex<HorizonTracker<Ecf>>,
    counters: Counters,
    stopping: AtomicBool,
    /// The epoch-commit WAL (`None` without a durability policy).
    /// Lock order: `sites` → `horizons` → `wal` — appends happen under
    /// the `sites` guard so a snapshot that exports state and truncates
    /// the log under that same guard can never lose an acked epoch.
    ///
    /// The cost is deliberate: every site's apply serializes behind one
    /// fsync, so durable-coordinator throughput is O(fsync) across all
    /// sites. Correctness only needs ack-after-fsync, not
    /// one-fsync-per-ack — group commit (batch appends under the guard,
    /// one fsync outside it with a sequence check, then ack the batch) is
    /// the known escape hatch if multi-site throughput ever outweighs the
    /// simplicity of this ordering.
    wal: OrderedMutex<Option<Wal>>,
    /// Next rotation ordinal for [`checkpoint::write_rotated_bytes`].
    snapshot_seq: AtomicU64,
    /// Durable snapshot generations written by this process.
    snapshots_written: AtomicU64,
    /// `epochs_applied` at the last durable snapshot.
    last_snapshot_epoch: AtomicU64,
    /// Set by [`Coordinator::resume`] before the acceptor starts.
    recovery: Option<CoordRecovery>,
}

/// A running coordinator: TCP acceptor plus merged state.
pub struct Coordinator {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds `addr` and starts accepting site sessions. With a
    /// durability policy, starts a fresh WAL (resuming the snapshot
    /// rotation ordinal past any surviving generations); use
    /// [`Self::resume`] to *recover* previous state instead.
    ///
    /// # Errors
    ///
    /// [`UStreamError::InvalidConfig`] when the durability base already
    /// holds a non-empty WAL: that tail is the only copy of acked epochs
    /// a predecessor never snapshotted, and truncating it while its stale
    /// snapshot generations survive would hand a later [`Self::resume`] a
    /// mixed-history recovery. The operator must resume or move the WAL
    /// aside explicitly.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: CoordinatorConfig) -> Result<Self> {
        let inner = Inner::new(cfg);
        if let Some(d) = inner.cfg.durability.clone() {
            let wal_path = d.wal_path();
            if let Ok(meta) = std::fs::metadata(&wal_path) {
                if meta.len() > 0 {
                    return Err(UStreamError::InvalidConfig(format!(
                        "{wal_path} holds {} bytes of acked epochs a previous coordinator \
                         never snapshotted; start with --resume to recover them, or move \
                         the WAL aside to deliberately start fresh",
                        meta.len()
                    )));
                }
            }
            *inner.wal.lock() = Some(Wal::create(&wal_path)?);
            let next = checkpoint::latest_manifest_seq(&d.base).map_or(0, |s| s + 1);
            self::store_relaxed(&inner.snapshot_seq, next);
        }
        Self::launch(addr, Arc::new(inner))
    }

    /// Recovers a durable coordinator: loads the newest intact snapshot
    /// generation (counting any corrupt ones it had to skip), replays the
    /// WAL tail (truncating at the first torn/corrupt record), and starts
    /// accepting on `addr` — typically a *new* address, since the dead
    /// process's port may linger in TIME_WAIT; sites follow via
    /// [`crate::Site::repoint`]. Every epoch that was ever acked is
    /// restored, so reconnecting sites continue with their next delta
    /// instead of a full resync.
    ///
    /// # Errors
    ///
    /// [`UStreamError::InvalidConfig`] when `cfg.durability` is `None`;
    /// I/O or checkpoint errors when the WAL exists but cannot be read or
    /// re-opened. Missing snapshot + missing WAL is *not* an error — the
    /// coordinator comes up empty and sites resync, same as a cold start.
    pub fn resume<A: ToSocketAddrs>(addr: A, cfg: CoordinatorConfig) -> Result<Self> {
        let Some(d) = cfg.durability.clone() else {
            return Err(UStreamError::InvalidConfig(
                "Coordinator::resume requires CoordinatorConfig::durability".into(),
            ));
        };
        let (snap, rec) =
            checkpoint::read_latest_with(&d.base, &decode_snapshot, &|s: &CoordSnapshot| {
                s.epochs_applied
            });
        let snap = snap.unwrap_or_default();
        let replayed = wal::replay(&d.wal_path())?;

        let mut inner = Inner::new(cfg);
        inner.import_snapshot(&snap);
        for frame in &replayed.frames {
            inner.apply_replay(frame);
        }
        inner.recovery = Some(CoordRecovery {
            snapshot_epochs: snap.epochs_applied,
            corrupt_generations_skipped: rec.corrupt_skipped,
            wal_records_replayed: replayed.records,
            wal_truncated: replayed.truncated,
            wal_bytes_dropped: replayed.dropped_bytes,
        });
        let next = checkpoint::latest_manifest_seq(&d.base).map_or(0, |s| s + 1);
        self::store_relaxed(&inner.snapshot_seq, next);
        *inner.wal.lock() = Some(Wal::open_appending(&d.wal_path(), replayed.records)?);
        Self::launch(addr, Arc::new(inner))
    }

    fn launch<A: ToSocketAddrs>(addr: A, inner: Arc<Inner>) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(UStreamError::Io)?;
        let local = listener.local_addr().map_err(UStreamError::Io)?;
        listener.set_nonblocking(true).map_err(UStreamError::Io)?;
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("udistrib-coord".into())
                .spawn(move || run_acceptor(&listener, &inner))
                .map_err(|e| UStreamError::Io(std::io::Error::other(e.to_string())))?
        };
        Ok(Self {
            inner,
            addr: local,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters and per-site health.
    pub fn stats(&self) -> CoordStats {
        self.inner.stats()
    }

    /// The merged global micro-cluster map (site-namespaced ids).
    pub fn global_clusters(&self) -> BTreeMap<u64, Ecf> {
        self.inner.global_clusters()
    }

    /// One site's micro-clusters as last applied (site-local ids).
    pub fn site_clusters(&self, site: u64) -> BTreeMap<u64, Ecf> {
        self.inner
            .sites
            .lock()
            .get(&site)
            .map(|v| v.clusters.clone())
            .unwrap_or_default()
    }

    /// `last_applied` for `site` (0 when unknown).
    pub fn last_applied(&self, site: u64) -> u64 {
        self.inner
            .sites
            .lock()
            .get(&site)
            .map_or(0, |v| v.last_applied)
    }

    /// Merged clusters over the trailing window `(now − h, now]`, served
    /// from the pyramidal store.
    pub fn horizon_clusters(&self, h: u64) -> Result<ClusterSetSnapshot<Ecf>> {
        let now = self
            .inner
            .sites
            .lock()
            .values()
            .map(|v| v.last_tick)
            .max()
            .unwrap_or(0);
        self.inner.horizons.lock().horizon_clusters(now, h)
    }

    /// Stops accepting, joins the acceptor, writes a final durable
    /// snapshot (when durable — so a clean shutdown leaves a fresh
    /// generation and an empty WAL), and returns final stats.
    pub fn shutdown(mut self) -> CoordStats {
        self.stop();
        if self.inner.cfg.durability.is_some() {
            let _ = self.inner.write_snapshot();
        }
        self.inner.stats()
    }

    /// Stops *without* the final snapshot — the programmatic equivalent
    /// of `kill -9` for crash-recovery tests: whatever reached the WAL
    /// and the last snapshot generation is all [`Self::resume`] gets.
    pub fn kill(mut self) -> CoordStats {
        self.stop();
        self.inner.stats()
    }

    fn stop(&mut self) {
        self.inner.stopping.store(true, Ordering::Relaxed); // relaxed-ok: stop flag; acceptor re-polls within ms
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Relaxed atomic store helper (all uses are pre-acceptor or stats-grade).
fn store_relaxed(cell: &AtomicU64, value: u64) {
    cell.store(value, Ordering::Relaxed); // relaxed-ok: set before the acceptor thread exists, or stats-grade
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Inner {
    fn new(cfg: CoordinatorConfig) -> Self {
        Self {
            horizons: OrderedMutex::new(
                "distrib::horizons",
                ranks::DISTRIB_HORIZONS,
                HorizonTracker::new(cfg.pyramid),
            ),
            cfg,
            sites: OrderedMutex::new("distrib::sites", ranks::DISTRIB_SITES, BTreeMap::new()),
            counters: Counters::default(),
            stopping: AtomicBool::new(false),
            wal: OrderedMutex::new("distrib::wal", ranks::DISTRIB_WAL, None),
            snapshot_seq: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            last_snapshot_epoch: AtomicU64::new(0),
            recovery: None,
        }
    }

    /// Applies one frame's content to a site view. Shared by the live
    /// path and WAL replay so both produce bit-identical state.
    fn merge_into(view: &mut SiteView, frame: &DeltaFrame) {
        if frame.full {
            view.clusters.clear();
        }
        for (id, ecf) in &frame.updates {
            view.clusters.insert(*id, ecf.clone());
        }
        for id in &frame.removes {
            view.clusters.remove(id);
        }
        view.points = frame.points;
        view.last_tick = view.last_tick.max(frame.last_tick);
        view.last_applied = frame.seq;
    }

    /// Simulated crash: stop everything, reply to no one. The failpoint
    /// arm points and WAL/snapshot write failures funnel here — from the
    /// sites' perspective the coordinator simply died mid-request.
    fn crash(&self) {
        self.stopping.store(true, Ordering::Relaxed); // relaxed-ok: stop flag; conn loops re-poll per frame
    }

    /// The epoch/ack state machine (see module docs). Pure state
    /// transition — transport-free, so unit tests drive it directly.
    /// `None` means the coordinator "crashed" while handling the frame
    /// (failpoint or durability-write failure): the connection closes
    /// without a reply and the site must retry against [`Coordinator::resume`].
    fn apply_delta(&self, frame: DeltaFrame) -> Option<CoordResponse> {
        if frame.site >= MAX_SITES {
            return Some(CoordResponse::Error {
                message: format!("site id {} out of range (max {MAX_SITES})", frame.site),
            });
        }
        #[cfg(feature = "failpoints")]
        if ustream_engine::failpoints::should_fire(ustream_engine::failpoints::COORD_CRASH_PRE_WAL)
        {
            self.crash();
            return None;
        }
        let mut sites = self.sites.lock();
        let view = sites.entry(frame.site).or_insert_with(SiteView::new);
        view.last_heard = Instant::now();
        if frame.seq <= view.last_applied {
            // Duplicate or reordered epoch: drop, never re-merge, re-ack
            // so the sender can make progress.
            self.counters
                .duplicates_dropped
                .fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
            return Some(CoordResponse::DeltaAck {
                site: frame.site,
                applied: view.last_applied,
            });
        }
        if frame.seq > view.last_applied + 1 && !frame.full {
            // Gap: the coordinator is missing epochs (it restarted without
            // durable state, or an earlier ack was fabricated). Ask for a
            // full resync.
            self.counters.gaps_nacked.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
            return Some(CoordResponse::DeltaNack {
                site: frame.site,
                expected: view.last_applied + 1,
            });
        }
        // Commit point: the epoch is durable before any state mutates and
        // before the ack exists. A failure here is a crash, not an error
        // reply — the record may be torn, so nothing may be promised.
        if let Some(w) = self.wal.lock().as_mut() {
            // lint:allow(blocking-under-lock): commit point — the fsync must complete under `wal` (and the caller's `sites`) so no ack can precede durability; the stall is the protocol's documented cost
            if w.append(&frame).is_err() {
                self.crash();
                return None;
            }
        }
        #[cfg(feature = "failpoints")]
        if ustream_engine::failpoints::should_fire(ustream_engine::failpoints::COORD_CRASH_POST_WAL)
        {
            // The epoch is durable but the site never hears the ack: on
            // resume its retry must dedup, not double-apply.
            self.crash();
            return None;
        }
        Self::merge_into(view, &frame);
        let site = frame.site;
        let applied = frame.seq;
        let epochs = self.counters.epochs_applied.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: incremented under the sites lock; snapshot export reads it there too
        drop(sites);

        let every = self.cfg.snapshot_every_epochs;
        if every > 0 && epochs.is_multiple_of(every) {
            self.record_snapshot();
        }
        if let Some(d) = self.cfg.durability.as_ref() {
            if d.snapshot_every_epochs > 0 {
                let since = epochs.saturating_sub(self.last_snapshot_epoch.load(Ordering::Relaxed)); // relaxed-ok: cadence heuristic; a lagging read snapshots one epoch late
                if since >= d.snapshot_every_epochs && self.write_snapshot().is_err() {
                    // Mid-snapshot crash (torn generation): no ack — the
                    // epoch is in the WAL, so the site's retry dedups
                    // after resume.
                    return None;
                }
            }
        }
        Some(CoordResponse::DeltaAck { site, applied })
    }

    /// Applies one replayed WAL record during [`Coordinator::resume`].
    /// Records the snapshot already covers dedup silently (no counters:
    /// the original application already counted); the horizon-store
    /// cadence re-runs so recordings the crash wiped are reconstructed
    /// from identical state.
    fn apply_replay(&self, frame: &DeltaFrame) -> bool {
        let mut sites = self.sites.lock();
        let view = sites.entry(frame.site).or_insert_with(SiteView::new);
        if frame.seq <= view.last_applied {
            return false;
        }
        if frame.seq > view.last_applied + 1 && !frame.full {
            // A WAL gap cannot happen by construction (appends are
            // ordered); skip defensively rather than corrupt the view.
            return false;
        }
        Self::merge_into(view, frame);
        let epochs = self.counters.epochs_applied.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: resume is single-threaded
        drop(sites);
        let every = self.cfg.snapshot_every_epochs;
        if every > 0 && epochs.is_multiple_of(every) {
            self.record_snapshot();
        }
        true
    }

    /// Loads a decoded snapshot into a freshly built `Inner`.
    fn import_snapshot(&self, snap: &CoordSnapshot) {
        let mut sites = self.sites.lock();
        for s in &snap.sites {
            sites.insert(
                s.site,
                SiteView {
                    last_applied: s.last_applied,
                    clusters: s.clusters.clone(),
                    points: s.points,
                    last_tick: s.last_tick,
                    last_heard: Instant::now(),
                },
            );
        }
        drop(sites);
        let mut horizons = self.horizons.lock();
        for h in &snap.horizon {
            horizons.record_snapshot(h.time, h.clusters.clone());
        }
        drop(horizons);
        store_relaxed(&self.counters.epochs_applied, snap.epochs_applied);
        store_relaxed(&self.last_snapshot_epoch, snap.epochs_applied);
    }

    /// Exports the full state under the `sites` guard. Kept separate from
    /// [`Self::write_snapshot`] so tests can round-trip the codec.
    fn export_snapshot(&self, sites: &BTreeMap<u64, SiteView>) -> CoordSnapshot {
        let horizon = {
            let horizons = self.horizons.lock();
            horizons
                .store()
                .iter_chronological()
                .map(|s| HorizonEntry {
                    time: s.time,
                    clusters: s.data.clone(),
                })
                .collect()
        };
        CoordSnapshot {
            epochs_applied: self.counters.epochs_applied.load(Ordering::Relaxed), // relaxed-ok: caller holds the sites lock appliers increment under
            sites: sites
                .iter()
                .map(|(site, v)| SiteSnap {
                    site: *site,
                    last_applied: v.last_applied,
                    points: v.points,
                    last_tick: v.last_tick,
                    clusters: v.clusters.clone(),
                })
                .collect(),
            horizon,
        }
    }

    /// Writes one durable snapshot generation and truncates the WAL. The
    /// `sites` guard is held across export *and* truncation: appends also
    /// happen under that guard, so no acked epoch can slip into the WAL
    /// between the export and the truncate and be lost.
    fn write_snapshot(&self) -> Result<()> {
        let Some(d) = self.cfg.durability.as_ref() else {
            return Ok(());
        };
        let sites = self.sites.lock();
        let snap = self.export_snapshot(&sites);
        let bytes = encode_snapshot(&snap)?;
        let seq = self.snapshot_seq.fetch_add(1, Ordering::Relaxed); // relaxed-ok: serialized by the sites lock
        #[cfg(feature = "failpoints")]
        if ustream_engine::failpoints::should_fire(ustream_engine::failpoints::COORD_SNAPSHOT_TORN)
        {
            // Mid-snapshot crash: half a generation lands (a corrupt file
            // the recovery scan must skip and count) and the WAL is NOT
            // truncated — replay over the previous generation recovers.
            let torn = &bytes[..bytes.len() / 2];
            let _ = checkpoint::write_rotated_bytes(&d.base, d.generations, seq, torn);
            self.crash();
            return Err(UStreamError::Checkpoint(
                "torn snapshot write (failpoint)".into(),
            ));
        }
        // lint:allow(blocking-under-lock): snapshot fsync stays under `sites` deliberately — appends also run under `sites`, so no acked epoch can land between this export and the truncate below
        checkpoint::write_rotated_bytes(&d.base, d.generations, seq, &bytes)?;
        if let Some(w) = self.wal.lock().as_mut() {
            // lint:allow(blocking-under-lock): WAL truncation is fenced by the same `sites` guard as the snapshot write; releasing first would let an acked epoch vanish
            w.truncate()?;
        }
        self.snapshots_written.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
        store_relaxed(&self.last_snapshot_epoch, snap.epochs_applied);
        drop(sites);
        Ok(())
    }

    fn global_clusters(&self) -> BTreeMap<u64, Ecf> {
        let sites = self.sites.lock();
        let mut merged = BTreeMap::new();
        for (site, view) in sites.iter() {
            for (local, ecf) in &view.clusters {
                merged.insert(global_cluster_id(*site, *local), ecf.clone());
            }
        }
        merged
    }

    fn record_snapshot(&self) {
        let (now, merged) = {
            let sites = self.sites.lock();
            let now = sites.values().map(|v| v.last_tick).max().unwrap_or(0);
            let mut merged = BTreeMap::new();
            for (site, view) in sites.iter() {
                for (local, ecf) in &view.clusters {
                    merged.insert(global_cluster_id(*site, *local), ecf.clone());
                }
            }
            (now, merged)
        };
        if now == 0 {
            return;
        }
        let snap = ClusterSetSnapshot { clusters: merged };
        self.horizons.lock().record_snapshot(now, snap);
    }

    fn stats(&self) -> CoordStats {
        let sites = self.sites.lock();
        let mut health = Vec::with_capacity(sites.len());
        let mut total_points = 0u64;
        let mut global_clusters = 0u64;
        for (site, view) in sites.iter() {
            let silent = view.last_heard.elapsed();
            health.push(SiteHealth {
                site: *site,
                last_applied: view.last_applied,
                points: view.points,
                last_tick: view.last_tick,
                last_heard_ms: silent.as_millis() as u64,
                suspect: silent > self.cfg.suspicion_timeout,
            });
            total_points += view.points;
            global_clusters += view.clusters.len() as u64;
        }
        let (wal_records, wal_bytes) = self
            .wal
            .lock()
            .as_ref()
            .map_or((0, 0), |w| (w.records(), w.bytes()));
        let epochs_applied = self.counters.epochs_applied.load(Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
        let last_snapshot_age_epochs = if self.cfg.durability.is_some() {
            // relaxed-ok: stats counter; readers tolerate lag
            epochs_applied.saturating_sub(self.last_snapshot_epoch.load(Ordering::Relaxed))
        } else {
            0
        };
        CoordStats {
            sites: health,
            epochs_applied,
            duplicates_dropped: self.counters.duplicates_dropped.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            gaps_nacked: self.counters.gaps_nacked.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            frames_rejected: self.counters.frames_rejected.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            frames_received: self.counters.frames_received.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            bytes_received: self.counters.bytes_received.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            global_clusters,
            total_points,
            wal_records,
            wal_bytes,
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            last_snapshot_age_epochs,
            recovery: self.recovery.clone(),
        }
    }

    /// `None` means the coordinator "crashed" handling the request: close
    /// the connection without replying.
    fn handle(&self, req: SiteRequest) -> Option<CoordResponse> {
        // A crashed coordinator answers nothing, even on connections that
        // were already blocked in a read when the crash fired — otherwise
        // a "dead" process keeps serving (and acking!) like a zombie.
        // relaxed-ok: stop flag; the residual race is one in-flight frame
        if self.stopping.load(Ordering::Relaxed) {
            return None;
        }
        match req {
            SiteRequest::Hello { site } => {
                let mut sites = self.sites.lock();
                let view = sites.entry(site).or_insert_with(SiteView::new);
                view.last_heard = Instant::now();
                Some(CoordResponse::HelloAck {
                    last_applied: view.last_applied,
                })
            }
            SiteRequest::Delta { frame } => self.apply_delta(frame),
            SiteRequest::Stats => Some(CoordResponse::Stats {
                stats: self.stats(),
            }),
            SiteRequest::GlobalClusters => Some(CoordResponse::Clusters {
                clusters: self.global_clusters(),
            }),
            SiteRequest::SiteClusters { site } => Some(CoordResponse::Clusters {
                clusters: self
                    .sites
                    .lock()
                    .get(&site)
                    .map(|v| v.clusters.clone())
                    .unwrap_or_default(),
            }),
        }
    }
}

/// Non-blocking accept with a short poll so the stop flag is honoured
/// within milliseconds (same pattern as the serving front-end).
fn run_acceptor(listener: &TcpListener, inner: &Arc<Inner>) {
    // relaxed-ok: stop flag; re-polled every few ms
    while !inner.stopping.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let inner = Arc::clone(inner);
                let _ = std::thread::Builder::new()
                    .name("udistrib-conn".into())
                    .spawn(move || run_conn(stream, &inner));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // lint:allow(no-sleep): non-blocking accept poll, keeps shutdown latency ~5 ms
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // lint:allow(no-sleep): accept-error backoff
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Per-connection loop: strictly sequential request/response. A frame the
/// codec rejects (bad checksum, oversized, malformed payload) poisons the
/// stream's framing, so the connection answers with an error and closes;
/// the site's retry redials cleanly. A `None` from the handler is a
/// simulated crash: close without a reply, exactly like a killed process.
fn run_conn(mut stream: TcpStream, inner: &Arc<Inner>) {
    let deadline = inner.cfg.io_deadline;
    let max = inner.cfg.max_frame_bytes;
    // relaxed-ok: stop flag; checked between frames
    while !inner.stopping.load(Ordering::Relaxed) {
        let payload = match read_frame(&mut stream, max, deadline) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean close
            Err(_) => {
                inner
                    .counters
                    .frames_rejected
                    .fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
                let resp = CoordResponse::Error {
                    message: "unreadable frame (checksum, size, or deadline); reconnect".into(),
                };
                if let Ok(frame) = encode_coord_response(&resp, max) {
                    let _ = write_frame(&mut stream, &frame, deadline);
                }
                return;
            }
        };
        inner
            .counters
            .frames_received
            .fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
        inner.counters.bytes_received.fetch_add(
            (payload.len() + ustream_serve::protocol::HEADER_LEN) as u64,
            Ordering::Relaxed, // relaxed-ok: stats counter; readers tolerate lag
        );
        let resp = match decode_site_request(&payload) {
            Ok(req) => match inner.handle(req) {
                Some(resp) => resp,
                None => return, // simulated crash: no reply, drop the conn
            },
            Err(e) => {
                inner
                    .counters
                    .frames_rejected
                    .fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
                CoordResponse::Error {
                    message: format!("malformed request: {e}"),
                }
            }
        };
        let frame = match encode_coord_response(&resp, max) {
            Ok(f) => f,
            Err(_) => return,
        };
        if write_frame(&mut stream, &frame, deadline).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use ustream_common::UncertainPoint;

    fn inner() -> Inner {
        Inner::new(CoordinatorConfig {
            snapshot_every_epochs: 1,
            ..CoordinatorConfig::default()
        })
    }

    fn ecf(x: f64, t: u64) -> Ecf {
        Ecf::from_point(&UncertainPoint::new(vec![x, 0.0], vec![0.1, 0.1], t, None))
    }

    fn delta(site: u64, seq: u64, full: bool, ids: &[(u64, f64)], removes: &[u64]) -> DeltaFrame {
        DeltaFrame {
            site,
            seq,
            full,
            updates: ids.iter().map(|(id, x)| (*id, ecf(*x, seq))).collect(),
            removes: removes.to_vec(),
            points: seq * 10,
            last_tick: seq,
        }
    }

    #[test]
    fn in_order_epochs_apply_and_ack() {
        let c = inner();
        let r1 = c.apply_delta(delta(1, 1, false, &[(5, 1.0)], &[])).unwrap();
        assert!(matches!(r1, CoordResponse::DeltaAck { applied: 1, .. }));
        let r2 = c
            .apply_delta(delta(1, 2, false, &[(6, 2.0)], &[5]))
            .unwrap();
        assert!(matches!(r2, CoordResponse::DeltaAck { applied: 2, .. }));
        let sites = c.sites.lock();
        let view = sites.get(&1).unwrap();
        assert_eq!(view.last_applied, 2);
        assert!(view.clusters.contains_key(&6) && !view.clusters.contains_key(&5));
    }

    #[test]
    fn duplicates_are_dropped_never_remerged() {
        let c = inner();
        let first = delta(1, 1, false, &[(5, 1.0)], &[]);
        c.apply_delta(first.clone());
        // The duplicate carries *different* content for the same epoch; if
        // the coordinator re-merged it, cluster 9 would appear.
        let forged = delta(1, 1, false, &[(9, 9.0)], &[5]);
        let r = c.apply_delta(forged).unwrap();
        assert!(matches!(r, CoordResponse::DeltaAck { applied: 1, .. }));
        let sites = c.sites.lock();
        let view = sites.get(&1).unwrap();
        assert!(view.clusters.contains_key(&5), "original epoch must stand");
        assert!(!view.clusters.contains_key(&9), "duplicate must not merge");
        drop(sites);
        assert_eq!(c.stats().duplicates_dropped, 1);
    }

    #[test]
    fn gaps_are_nacked_with_the_expected_seq() {
        let c = inner();
        c.apply_delta(delta(1, 1, false, &[(5, 1.0)], &[]));
        let r = c.apply_delta(delta(1, 5, false, &[(6, 2.0)], &[])).unwrap();
        assert!(
            matches!(r, CoordResponse::DeltaNack { expected: 2, .. }),
            "{r:?}"
        );
        assert_eq!(c.stats().gaps_nacked, 1);
        // A full frame at the gap seq resyncs and is accepted.
        let r = c.apply_delta(delta(1, 5, true, &[(6, 2.0)], &[])).unwrap();
        assert!(matches!(r, CoordResponse::DeltaAck { applied: 5, .. }));
        let sites = c.sites.lock();
        let view = sites.get(&1).unwrap();
        assert_eq!(view.clusters.len(), 1);
        assert!(view.clusters.contains_key(&6), "full frame replaces map");
    }

    #[test]
    fn full_frames_replace_the_whole_site_view() {
        let c = inner();
        c.apply_delta(delta(2, 1, false, &[(1, 1.0), (2, 2.0)], &[]));
        c.apply_delta(delta(2, 2, true, &[(3, 3.0)], &[]));
        let sites = c.sites.lock();
        let view = sites.get(&2).unwrap();
        assert_eq!(view.clusters.len(), 1);
        assert!(view.clusters.contains_key(&3));
    }

    #[test]
    fn global_view_namespaces_sites_disjointly() {
        let c = inner();
        c.apply_delta(delta(0, 1, false, &[(7, 1.0)], &[]));
        c.apply_delta(delta(1, 1, false, &[(7, 2.0)], &[]));
        let merged = c.global_clusters();
        assert_eq!(
            merged.len(),
            2,
            "same local id on two sites must not collide"
        );
    }

    #[test]
    fn hello_reports_last_applied() {
        let c = inner();
        c.apply_delta(delta(3, 1, false, &[(1, 1.0)], &[]));
        match c.handle(SiteRequest::Hello { site: 3 }).unwrap() {
            CoordResponse::HelloAck { last_applied } => assert_eq!(last_applied, 1),
            other => panic!("wrong response: {other:?}"),
        }
        match c.handle(SiteRequest::Hello { site: 99 }).unwrap() {
            CoordResponse::HelloAck { last_applied } => assert_eq!(last_applied, 0),
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn suspicion_flags_silent_sites() {
        let c = Inner::new(CoordinatorConfig {
            suspicion_timeout: Duration::from_millis(0),
            ..CoordinatorConfig::default()
        });
        c.apply_delta(delta(1, 1, false, &[(1, 1.0)], &[]));
        std::thread::sleep(Duration::from_millis(5));
        let stats = c.stats();
        assert!(stats.sites[0].suspect, "silent site must turn suspect");
    }

    #[test]
    fn out_of_range_site_is_an_error() {
        let c = inner();
        let r = c
            .apply_delta(delta(MAX_SITES, 1, false, &[(1, 1.0)], &[]))
            .unwrap();
        assert!(matches!(r, CoordResponse::Error { .. }));
    }

    #[test]
    fn wal_replay_rebuilds_exact_state() {
        let path = std::env::temp_dir()
            .join(format!("ucoord-replay-{}.wal", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&path);
        let live = inner();
        *live.wal.lock() = Some(Wal::create(&path).unwrap());
        live.apply_delta(delta(1, 1, false, &[(5, 1.0)], &[]));
        live.apply_delta(delta(2, 1, false, &[(7, 3.0)], &[]));
        live.apply_delta(delta(1, 2, false, &[(6, 2.0)], &[5]));

        let rebuilt = inner();
        for frame in wal::replay(&path).unwrap().frames {
            rebuilt.apply_replay(&frame);
        }
        assert_eq!(live.global_clusters(), rebuilt.global_clusters());
        assert_eq!(
            // relaxed-ok: single-threaded test assertion
            rebuilt.counters.epochs_applied.load(Ordering::Relaxed),
            3,
            "every WAL record applied exactly once"
        );
        let _ = std::fs::remove_file(&path);
    }

    fn arb_ecf() -> impl Strategy<Value = Ecf> {
        (-100.0f64..100.0, -100.0f64..100.0, 0.01f64..5.0, 1u64..1000).prop_map(|(x, y, e, t)| {
            Ecf::from_point(&UncertainPoint::new(vec![x, y], vec![e, e * 0.5], t, None))
        })
    }

    fn arb_snapshot() -> impl Strategy<Value = CoordSnapshot> {
        let site = (
            0u64..8,
            1u64..500,
            0u64..10_000,
            0u64..5_000,
            proptest::collection::vec((0u64..1u64 << 50, arb_ecf()), 0..12),
        )
            .prop_map(|(site, last_applied, points, last_tick, kv)| SiteSnap {
                site,
                last_applied,
                points,
                last_tick,
                clusters: kv.into_iter().collect(),
            });
        let entry =
            (1u64..10_000, proptest::collection::vec(arb_ecf(), 0..6)).prop_map(|(time, ecfs)| {
                HorizonEntry {
                    time,
                    clusters: ClusterSetSnapshot {
                        clusters: ecfs
                            .into_iter()
                            .enumerate()
                            .map(|(i, e)| (i as u64, e))
                            .collect(),
                    },
                }
            });
        (
            0u64..100_000,
            proptest::collection::vec(site, 0..6),
            proptest::collection::vec(entry, 0..8),
        )
            .prop_map(|(epochs_applied, sites, horizon)| CoordSnapshot {
                epochs_applied,
                sites,
                horizon,
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The snapshot codec is bit-exact across arbitrary site counts,
        /// cluster-map sizes, and horizon bucket counts: epoch/ack maps,
        /// merged views, and the horizon store all survive the round trip.
        #[test]
        fn snapshot_codec_round_trips(snap in arb_snapshot()) {
            let bytes = encode_snapshot(&snap).unwrap();
            let back = decode_snapshot(&bytes).unwrap();
            prop_assert_eq!(back.epochs_applied, snap.epochs_applied);
            prop_assert_eq!(back.sites.len(), snap.sites.len());
            for (a, b) in back.sites.iter().zip(snap.sites.iter()) {
                prop_assert_eq!(a.site, b.site);
                prop_assert_eq!(a.last_applied, b.last_applied);
                prop_assert_eq!(a.points, b.points);
                prop_assert_eq!(a.last_tick, b.last_tick);
                prop_assert_eq!(&a.clusters, &b.clusters);
            }
            prop_assert_eq!(back.horizon.len(), snap.horizon.len());
            for (a, b) in back.horizon.iter().zip(snap.horizon.iter()) {
                prop_assert_eq!(a.time, b.time);
                prop_assert_eq!(&a.clusters.clusters, &b.clusters.clusters);
            }
        }

        /// A flipped byte anywhere in an encoded snapshot is detected —
        /// the recovery scan can trust a generation that decodes.
        #[test]
        fn snapshot_codec_rejects_any_flipped_byte(
            snap in arb_snapshot(),
            pos_seed in 0usize..usize::MAX,
            bit in 0u8..8,
        ) {
            let mut bytes = encode_snapshot(&snap).unwrap();
            let pos = pos_seed % bytes.len();
            bytes[pos] ^= 1 << bit;
            prop_assert!(decode_snapshot(&bytes).is_err());
        }
    }
}
