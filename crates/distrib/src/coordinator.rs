//! The merging coordinator: accepts delta frames from sites, applies them
//! idempotently, and maintains the merged global micro-cluster view plus a
//! pyramidal horizon store over it.
//!
//! ## Idempotent application
//!
//! Per site the coordinator tracks `last_applied`, the highest contiguous
//! epoch it has merged. A frame with `seq <= last_applied` is a duplicate
//! — a retransmit race, a [`reordered`](ustream_engine::failpoints)
//! delivery, or a replay after a lost ack — and is *dropped, never
//! re-merged*; the coordinator re-acks so the sender unblocks. A frame
//! with `seq > last_applied + 1` means the coordinator is missing state
//! (typically its own restart) and is nacked with the expected sequence;
//! the site answers with a `full` resync frame. Only `seq ==
//! last_applied + 1` mutates state, and because deltas carry replace
//! semantics, even a hypothetical double-apply would be harmless.
//!
//! ## Liveness
//!
//! Each applied-or-acked frame stamps the site's `last_heard` instant; a
//! site silent longer than the configured suspicion timeout is reported
//! `suspect` in [`CoordStats`] — detection is the coordinator's job,
//! recovery (respawn + checkpoint replay) is the site runner's.

use crate::io::{read_frame, write_frame};
use crate::protocol::{
    decode_site_request, encode_coord_response, global_cluster_id, CoordResponse, CoordStats,
    DeltaFrame, SiteHealth, SiteRequest, MAX_SITES,
};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use umicro::Ecf;
use ustream_common::{Result, UStreamError};
use ustream_snapshot::{ClusterSetSnapshot, HorizonTracker, PyramidConfig};

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Per-operation socket deadline.
    pub io_deadline: Duration,
    /// Largest accepted/emitted frame.
    pub max_frame_bytes: usize,
    /// A site silent for longer than this is reported `suspect`.
    pub suspicion_timeout: Duration,
    /// Pyramidal geometry of the horizon store over the merged view.
    pub pyramid: PyramidConfig,
    /// Record a merged snapshot into the horizon store every this many
    /// applied epochs (0 disables recording).
    pub snapshot_every_epochs: u64,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        Self {
            io_deadline: Duration::from_secs(30),
            max_frame_bytes: crate::protocol::DEFAULT_MAX_FRAME_BYTES,
            suspicion_timeout: Duration::from_secs(10),
            pyramid: PyramidConfig::default(),
            snapshot_every_epochs: 4,
        }
    }
}

/// What the coordinator holds for one site.
#[derive(Debug)]
struct SiteView {
    last_applied: u64,
    clusters: BTreeMap<u64, Ecf>,
    points: u64,
    last_tick: u64,
    last_heard: Instant,
}

impl SiteView {
    fn new() -> Self {
        Self {
            last_applied: 0,
            clusters: BTreeMap::new(),
            points: 0,
            last_tick: 0,
            last_heard: Instant::now(),
        }
    }
}

#[derive(Default)]
struct Counters {
    epochs_applied: AtomicU64,
    duplicates_dropped: AtomicU64,
    gaps_nacked: AtomicU64,
    frames_rejected: AtomicU64,
    frames_received: AtomicU64,
    bytes_received: AtomicU64,
}

struct Inner {
    cfg: CoordinatorConfig,
    sites: Mutex<BTreeMap<u64, SiteView>>,
    horizons: Mutex<HorizonTracker<Ecf>>,
    counters: Counters,
    stopping: AtomicBool,
}

/// A running coordinator: TCP acceptor plus merged state.
pub struct Coordinator {
    inner: Arc<Inner>,
    addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
}

impl Coordinator {
    /// Binds `addr` and starts accepting site sessions.
    pub fn bind<A: ToSocketAddrs>(addr: A, cfg: CoordinatorConfig) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(UStreamError::Io)?;
        let local = listener.local_addr().map_err(UStreamError::Io)?;
        listener.set_nonblocking(true).map_err(UStreamError::Io)?;
        let inner = Arc::new(Inner {
            horizons: Mutex::new(HorizonTracker::new(cfg.pyramid)),
            cfg,
            sites: Mutex::new(BTreeMap::new()),
            counters: Counters::default(),
            stopping: AtomicBool::new(false),
        });
        let acceptor = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("udistrib-coord".into())
                .spawn(move || run_acceptor(&listener, &inner))
                .map_err(|e| UStreamError::Io(std::io::Error::other(e.to_string())))?
        };
        Ok(Self {
            inner,
            addr: local,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters and per-site health.
    pub fn stats(&self) -> CoordStats {
        self.inner.stats()
    }

    /// The merged global micro-cluster map (site-namespaced ids).
    pub fn global_clusters(&self) -> BTreeMap<u64, Ecf> {
        self.inner.global_clusters()
    }

    /// One site's micro-clusters as last applied (site-local ids).
    pub fn site_clusters(&self, site: u64) -> BTreeMap<u64, Ecf> {
        self.inner
            .sites
            .lock()
            .get(&site)
            .map(|v| v.clusters.clone())
            .unwrap_or_default()
    }

    /// `last_applied` for `site` (0 when unknown).
    pub fn last_applied(&self, site: u64) -> u64 {
        self.inner
            .sites
            .lock()
            .get(&site)
            .map_or(0, |v| v.last_applied)
    }

    /// Merged clusters over the trailing window `(now − h, now]`, served
    /// from the pyramidal store.
    pub fn horizon_clusters(&self, h: u64) -> Result<ClusterSetSnapshot<Ecf>> {
        let now = self
            .inner
            .sites
            .lock()
            .values()
            .map(|v| v.last_tick)
            .max()
            .unwrap_or(0);
        self.inner.horizons.lock().horizon_clusters(now, h)
    }

    /// Stops accepting, joins the acceptor, and returns final stats.
    pub fn shutdown(mut self) -> CoordStats {
        self.stop();
        self.inner.stats()
    }

    fn stop(&mut self) {
        self.inner.stopping.store(true, Ordering::Relaxed); // relaxed-ok: stop flag; acceptor re-polls within ms
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Coordinator {
    fn drop(&mut self) {
        self.stop();
    }
}

impl Inner {
    /// The epoch/ack state machine (see module docs). Pure state
    /// transition — transport-free, so unit tests drive it directly.
    fn apply_delta(&self, frame: DeltaFrame) -> CoordResponse {
        if frame.site >= MAX_SITES {
            return CoordResponse::Error {
                message: format!("site id {} out of range (max {MAX_SITES})", frame.site),
            };
        }
        let mut sites = self.sites.lock();
        let view = sites.entry(frame.site).or_insert_with(SiteView::new);
        view.last_heard = Instant::now();
        if frame.seq <= view.last_applied {
            // Duplicate or reordered epoch: drop, never re-merge, re-ack
            // so the sender can make progress.
            self.counters
                .duplicates_dropped
                .fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
            return CoordResponse::DeltaAck {
                site: frame.site,
                applied: view.last_applied,
            };
        }
        if frame.seq > view.last_applied + 1 && !frame.full {
            // Gap: the coordinator is missing epochs (it restarted, or an
            // earlier ack was fabricated). Ask for a full resync.
            self.counters.gaps_nacked.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
            return CoordResponse::DeltaNack {
                site: frame.site,
                expected: view.last_applied + 1,
            };
        }
        if frame.full {
            view.clusters.clear();
        }
        for (id, ecf) in frame.updates {
            view.clusters.insert(id, ecf);
        }
        for id in &frame.removes {
            view.clusters.remove(id);
        }
        view.points = frame.points;
        view.last_tick = view.last_tick.max(frame.last_tick);
        view.last_applied = frame.seq;
        let site = frame.site;
        let applied = frame.seq;
        drop(sites);

        let epochs = self.counters.epochs_applied.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: stats counter; readers tolerate lag
        let every = self.cfg.snapshot_every_epochs;
        if every > 0 && epochs.is_multiple_of(every) {
            self.record_snapshot();
        }
        CoordResponse::DeltaAck { site, applied }
    }

    fn global_clusters(&self) -> BTreeMap<u64, Ecf> {
        let sites = self.sites.lock();
        let mut merged = BTreeMap::new();
        for (site, view) in sites.iter() {
            for (local, ecf) in &view.clusters {
                merged.insert(global_cluster_id(*site, *local), ecf.clone());
            }
        }
        merged
    }

    fn record_snapshot(&self) {
        let (now, merged) = {
            let sites = self.sites.lock();
            let now = sites.values().map(|v| v.last_tick).max().unwrap_or(0);
            let mut merged = BTreeMap::new();
            for (site, view) in sites.iter() {
                for (local, ecf) in &view.clusters {
                    merged.insert(global_cluster_id(*site, *local), ecf.clone());
                }
            }
            (now, merged)
        };
        if now == 0 {
            return;
        }
        let snap = ClusterSetSnapshot { clusters: merged };
        self.horizons.lock().record_snapshot(now, snap);
    }

    fn stats(&self) -> CoordStats {
        let sites = self.sites.lock();
        let mut health = Vec::with_capacity(sites.len());
        let mut total_points = 0u64;
        let mut global_clusters = 0u64;
        for (site, view) in sites.iter() {
            let silent = view.last_heard.elapsed();
            health.push(SiteHealth {
                site: *site,
                last_applied: view.last_applied,
                points: view.points,
                last_tick: view.last_tick,
                last_heard_ms: silent.as_millis() as u64,
                suspect: silent > self.cfg.suspicion_timeout,
            });
            total_points += view.points;
            global_clusters += view.clusters.len() as u64;
        }
        CoordStats {
            sites: health,
            epochs_applied: self.counters.epochs_applied.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            duplicates_dropped: self.counters.duplicates_dropped.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            gaps_nacked: self.counters.gaps_nacked.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            frames_rejected: self.counters.frames_rejected.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            frames_received: self.counters.frames_received.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            bytes_received: self.counters.bytes_received.load(Ordering::Relaxed), // relaxed-ok: stats counter; readers tolerate lag
            global_clusters,
            total_points,
        }
    }

    fn handle(&self, req: SiteRequest) -> CoordResponse {
        match req {
            SiteRequest::Hello { site } => {
                let mut sites = self.sites.lock();
                let view = sites.entry(site).or_insert_with(SiteView::new);
                view.last_heard = Instant::now();
                CoordResponse::HelloAck {
                    last_applied: view.last_applied,
                }
            }
            SiteRequest::Delta { frame } => self.apply_delta(frame),
            SiteRequest::Stats => CoordResponse::Stats {
                stats: self.stats(),
            },
            SiteRequest::GlobalClusters => CoordResponse::Clusters {
                clusters: self.global_clusters(),
            },
            SiteRequest::SiteClusters { site } => CoordResponse::Clusters {
                clusters: self
                    .sites
                    .lock()
                    .get(&site)
                    .map(|v| v.clusters.clone())
                    .unwrap_or_default(),
            },
        }
    }
}

/// Non-blocking accept with a short poll so the stop flag is honoured
/// within milliseconds (same pattern as the serving front-end).
fn run_acceptor(listener: &TcpListener, inner: &Arc<Inner>) {
    // relaxed-ok: stop flag; re-polled every few ms
    while !inner.stopping.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let inner = Arc::clone(inner);
                let _ = std::thread::Builder::new()
                    .name("udistrib-conn".into())
                    .spawn(move || run_conn(stream, &inner));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // lint:allow(no-sleep): non-blocking accept poll, keeps shutdown latency ~5 ms
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // lint:allow(no-sleep): accept-error backoff
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Per-connection loop: strictly sequential request/response. A frame the
/// codec rejects (bad checksum, oversized, malformed payload) poisons the
/// stream's framing, so the connection answers with an error and closes;
/// the site's retry redials cleanly.
fn run_conn(mut stream: TcpStream, inner: &Arc<Inner>) {
    let deadline = inner.cfg.io_deadline;
    let max = inner.cfg.max_frame_bytes;
    // relaxed-ok: stop flag; checked between frames
    while !inner.stopping.load(Ordering::Relaxed) {
        let payload = match read_frame(&mut stream, max, deadline) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean close
            Err(_) => {
                inner
                    .counters
                    .frames_rejected
                    .fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
                let resp = CoordResponse::Error {
                    message: "unreadable frame (checksum, size, or deadline); reconnect".into(),
                };
                if let Ok(frame) = encode_coord_response(&resp, max) {
                    let _ = write_frame(&mut stream, &frame, deadline);
                }
                return;
            }
        };
        inner
            .counters
            .frames_received
            .fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
        inner.counters.bytes_received.fetch_add(
            (payload.len() + ustream_serve::protocol::HEADER_LEN) as u64,
            Ordering::Relaxed, // relaxed-ok: stats counter; readers tolerate lag
        );
        let resp = match decode_site_request(&payload) {
            Ok(req) => inner.handle(req),
            Err(e) => {
                inner
                    .counters
                    .frames_rejected
                    .fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats counter; readers tolerate lag
                CoordResponse::Error {
                    message: format!("malformed request: {e}"),
                }
            }
        };
        let frame = match encode_coord_response(&resp, max) {
            Ok(f) => f,
            Err(_) => return,
        };
        if write_frame(&mut stream, &frame, deadline).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::UncertainPoint;

    fn inner() -> Inner {
        Inner {
            cfg: CoordinatorConfig {
                snapshot_every_epochs: 1,
                ..CoordinatorConfig::default()
            },
            sites: Mutex::new(BTreeMap::new()),
            horizons: Mutex::new(HorizonTracker::with_defaults()),
            counters: Counters::default(),
            stopping: AtomicBool::new(false),
        }
    }

    fn ecf(x: f64, t: u64) -> Ecf {
        Ecf::from_point(&UncertainPoint::new(vec![x, 0.0], vec![0.1, 0.1], t, None))
    }

    fn delta(site: u64, seq: u64, full: bool, ids: &[(u64, f64)], removes: &[u64]) -> DeltaFrame {
        DeltaFrame {
            site,
            seq,
            full,
            updates: ids.iter().map(|(id, x)| (*id, ecf(*x, seq))).collect(),
            removes: removes.to_vec(),
            points: seq * 10,
            last_tick: seq,
        }
    }

    #[test]
    fn in_order_epochs_apply_and_ack() {
        let c = inner();
        let r1 = c.apply_delta(delta(1, 1, false, &[(5, 1.0)], &[]));
        assert!(matches!(r1, CoordResponse::DeltaAck { applied: 1, .. }));
        let r2 = c.apply_delta(delta(1, 2, false, &[(6, 2.0)], &[5]));
        assert!(matches!(r2, CoordResponse::DeltaAck { applied: 2, .. }));
        let sites = c.sites.lock();
        let view = sites.get(&1).unwrap();
        assert_eq!(view.last_applied, 2);
        assert!(view.clusters.contains_key(&6) && !view.clusters.contains_key(&5));
    }

    #[test]
    fn duplicates_are_dropped_never_remerged() {
        let c = inner();
        let first = delta(1, 1, false, &[(5, 1.0)], &[]);
        c.apply_delta(first.clone());
        // The duplicate carries *different* content for the same epoch; if
        // the coordinator re-merged it, cluster 9 would appear.
        let forged = delta(1, 1, false, &[(9, 9.0)], &[5]);
        let r = c.apply_delta(forged);
        assert!(matches!(r, CoordResponse::DeltaAck { applied: 1, .. }));
        let sites = c.sites.lock();
        let view = sites.get(&1).unwrap();
        assert!(view.clusters.contains_key(&5), "original epoch must stand");
        assert!(!view.clusters.contains_key(&9), "duplicate must not merge");
        drop(sites);
        assert_eq!(c.stats().duplicates_dropped, 1);
    }

    #[test]
    fn gaps_are_nacked_with_the_expected_seq() {
        let c = inner();
        c.apply_delta(delta(1, 1, false, &[(5, 1.0)], &[]));
        let r = c.apply_delta(delta(1, 5, false, &[(6, 2.0)], &[]));
        assert!(
            matches!(r, CoordResponse::DeltaNack { expected: 2, .. }),
            "{r:?}"
        );
        assert_eq!(c.stats().gaps_nacked, 1);
        // A full frame at the gap seq resyncs and is accepted.
        let r = c.apply_delta(delta(1, 5, true, &[(6, 2.0)], &[]));
        assert!(matches!(r, CoordResponse::DeltaAck { applied: 5, .. }));
        let sites = c.sites.lock();
        let view = sites.get(&1).unwrap();
        assert_eq!(view.clusters.len(), 1);
        assert!(view.clusters.contains_key(&6), "full frame replaces map");
    }

    #[test]
    fn full_frames_replace_the_whole_site_view() {
        let c = inner();
        c.apply_delta(delta(2, 1, false, &[(1, 1.0), (2, 2.0)], &[]));
        c.apply_delta(delta(2, 2, true, &[(3, 3.0)], &[]));
        let sites = c.sites.lock();
        let view = sites.get(&2).unwrap();
        assert_eq!(view.clusters.len(), 1);
        assert!(view.clusters.contains_key(&3));
    }

    #[test]
    fn global_view_namespaces_sites_disjointly() {
        let c = inner();
        c.apply_delta(delta(0, 1, false, &[(7, 1.0)], &[]));
        c.apply_delta(delta(1, 1, false, &[(7, 2.0)], &[]));
        let merged = c.global_clusters();
        assert_eq!(
            merged.len(),
            2,
            "same local id on two sites must not collide"
        );
    }

    #[test]
    fn hello_reports_last_applied() {
        let c = inner();
        c.apply_delta(delta(3, 1, false, &[(1, 1.0)], &[]));
        match c.handle(SiteRequest::Hello { site: 3 }) {
            CoordResponse::HelloAck { last_applied } => assert_eq!(last_applied, 1),
            other => panic!("wrong response: {other:?}"),
        }
        match c.handle(SiteRequest::Hello { site: 99 }) {
            CoordResponse::HelloAck { last_applied } => assert_eq!(last_applied, 0),
            other => panic!("wrong response: {other:?}"),
        }
    }

    #[test]
    fn suspicion_flags_silent_sites() {
        let c = Inner {
            cfg: CoordinatorConfig {
                suspicion_timeout: Duration::from_millis(0),
                ..CoordinatorConfig::default()
            },
            sites: Mutex::new(BTreeMap::new()),
            horizons: Mutex::new(HorizonTracker::with_defaults()),
            counters: Counters::default(),
            stopping: AtomicBool::new(false),
        };
        c.apply_delta(delta(1, 1, false, &[(1, 1.0)], &[]));
        // lint:allow(no-sleep): let the 0 ms suspicion timeout elapse
        std::thread::sleep(Duration::from_millis(5));
        let stats = c.stats();
        assert!(stats.sites[0].suspect, "silent site must turn suspect");
    }

    #[test]
    fn out_of_range_site_is_an_error() {
        let c = inner();
        let r = c.apply_delta(delta(MAX_SITES, 1, false, &[(1, 1.0)], &[]));
        assert!(matches!(r, CoordResponse::Error { .. }));
    }
}
