//! Deadline-armed transport funnel of the distributed tier — the *only*
//! distrib module allowed to touch socket read/write primitives (the
//! `net-funnel` lint rule enforces this, same discipline as
//! `serve/src/io.rs`).
//!
//! All raw frame I/O delegates to the serving front-end's deadline-wrapped
//! [`ustream_serve::io::read_frame`] / [`ustream_serve::io::write_frame`],
//! so a stalled peer costs at most the configured deadline. What this
//! module adds is the *hostile-network seam*: under the `failpoints`
//! feature every outbound frame passes the injection ladder
//! (partition → delay → corrupt → drop → duplicate → reorder) before any
//! byte reaches the socket, which is how the chaos suite drives the
//! transport through every failure the protocol claims to survive.

use std::net::TcpStream;
use std::time::Duration;
use ustream_common::{Result, UStreamError};

// Re-exported so the coordinator's connection loop reads and writes
// through the distrib funnel by name.
pub use ustream_serve::io::{read_frame, write_frame};

#[cfg(feature = "failpoints")]
use ustream_engine::failpoints;

/// Wire counters of one [`Transport`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportStats {
    /// Frames actually written to the socket (duplicates included,
    /// dropped frames excluded).
    pub frames_sent: u64,
    /// Bytes actually written to the socket.
    pub bytes_sent: u64,
    /// Frames received and verified.
    pub frames_received: u64,
    /// Bytes received (header + payload of verified frames).
    pub bytes_received: u64,
    /// Send attempts that failed (including injected partitions).
    pub send_failures: u64,
    /// Dial attempts that failed.
    pub connect_failures: u64,
}

/// One site's connection to the coordinator: lazy dial, deadline-armed
/// frame I/O, fault-injection seam, and byte accounting.
#[derive(Debug)]
pub struct Transport {
    addr: String,
    /// Only the failpoint partition check reads this today; it stays in
    /// the struct so per-site faults have an identity to key on.
    #[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
    site: u64,
    deadline: Duration,
    max_frame_bytes: usize,
    stream: Option<TcpStream>,
    /// Frame held back by an armed [`failpoints::NET_REORDER`]; emitted
    /// after the next frame so the two cross on the wire.
    #[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
    held: Option<Vec<u8>>,
    stats: TransportStats,
}

impl Transport {
    /// A disconnected transport for `site` dialing `addr`; the first
    /// [`Self::send`] or [`Self::recv`] dials.
    pub fn new(addr: &str, site: u64, deadline: Duration, max_frame_bytes: usize) -> Self {
        Self {
            addr: addr.to_string(),
            site,
            deadline,
            max_frame_bytes,
            stream: None,
            held: None,
            stats: TransportStats::default(),
        }
    }

    /// Wire counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Whether a connection is currently open (it may still be dead —
    /// only the next I/O finds out).
    pub fn is_connected(&self) -> bool {
        self.stream.is_some()
    }

    /// Drops the connection (and any reorder-held frame, which died with
    /// the link it was bound for).
    pub fn disconnect(&mut self) {
        self.stream = None;
        self.held = None;
    }

    /// Points the transport at a new coordinator address, dropping any
    /// open connection — the failover half of coordinator recovery: a
    /// resumed coordinator typically binds a fresh port (the dead one may
    /// linger in TIME_WAIT), and the next I/O dials the new address.
    pub fn set_addr(&mut self, addr: &str) {
        if addr != self.addr {
            self.addr = addr.to_string();
        }
        self.disconnect();
    }

    /// Dials the coordinator if not already connected.
    pub fn connect(&mut self) -> Result<()> {
        if self.stream.is_some() {
            return Ok(());
        }
        match TcpStream::connect(&self.addr) {
            Ok(stream) => {
                stream.set_nodelay(true).map_err(UStreamError::Io)?;
                self.stream = Some(stream);
                Ok(())
            }
            Err(e) => {
                self.stats.connect_failures += 1;
                Err(UStreamError::Io(e))
            }
        }
    }

    /// Sends one pre-encoded frame through the fault-injection ladder.
    ///
    /// On any failure the connection is dropped so the caller's retry
    /// starts from a clean dial.
    pub fn send(&mut self, frame: &[u8]) -> Result<()> {
        match self.send_inner(frame) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stats.send_failures += 1;
                self.disconnect();
                Err(e)
            }
        }
    }

    fn send_inner(&mut self, frame: &[u8]) -> Result<()> {
        #[cfg(feature = "failpoints")]
        {
            if failpoints::should_fire(&failpoints::net_partition(self.site)) {
                return Err(UStreamError::Io(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "injected network partition",
                )));
            }
            if failpoints::should_fire(failpoints::NET_DELAY) {
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        self.connect()?;

        let mut outgoing: Vec<Vec<u8>> = Vec::with_capacity(2);
        #[allow(unused_mut)]
        let mut current = frame.to_vec();
        #[cfg(feature = "failpoints")]
        {
            if failpoints::should_fire(failpoints::NET_CORRUPT) {
                if let Some(last) = current.last_mut() {
                    *last ^= 0x40;
                }
            }
            if failpoints::should_fire(failpoints::NET_DROP) {
                // The frame vanishes; a reorder-held predecessor stays
                // held for the next send that actually goes out.
            } else if failpoints::should_fire(failpoints::NET_REORDER) {
                // Hold this frame until the next send; an already-held
                // frame cannot wait behind two successors, so it goes out
                // now (still reordered relative to `current`).
                if let Some(prev) = self.held.take() {
                    outgoing.push(prev);
                }
                self.held = Some(current);
            } else {
                outgoing.push(current.clone());
                if let Some(prev) = self.held.take() {
                    outgoing.push(prev);
                }
                if failpoints::should_fire(failpoints::NET_DUP) {
                    outgoing.push(current);
                }
            }
        }
        #[cfg(not(feature = "failpoints"))]
        outgoing.push(current);

        let Some(stream) = self.stream.as_mut() else {
            return Err(disconnected());
        };
        for f in &outgoing {
            write_frame(stream, f, self.deadline)?;
            self.stats.frames_sent += 1;
            self.stats.bytes_sent += f.len() as u64;
        }
        Ok(())
    }

    /// Receives one verified frame payload; `Ok(None)` on a clean peer
    /// close at a frame boundary. Failures drop the connection.
    pub fn recv(&mut self) -> Result<Option<Vec<u8>>> {
        self.connect()?;
        let Some(stream) = self.stream.as_mut() else {
            return Err(disconnected());
        };
        match read_frame(stream, self.max_frame_bytes, self.deadline) {
            Ok(Some(payload)) => {
                self.stats.frames_received += 1;
                self.stats.bytes_received +=
                    (payload.len() + ustream_serve::protocol::HEADER_LEN) as u64;
                Ok(Some(payload))
            }
            Ok(None) => {
                self.disconnect();
                Ok(None)
            }
            Err(e) => {
                self.disconnect();
                Err(e)
            }
        }
    }
}

/// `connect()` succeeded but the slot is empty — unreachable in practice,
/// reported as a plain I/O error rather than a panic.
fn disconnected() -> UStreamError {
    UStreamError::Io(std::io::Error::new(
        std::io::ErrorKind::NotConnected,
        "transport is not connected",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;
    use ustream_serve::protocol::encode_frame;

    fn listener() -> (TcpListener, String) {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap().to_string();
        (l, addr)
    }

    #[test]
    fn frames_flow_and_are_counted() {
        let (l, addr) = listener();
        let mut t = Transport::new(&addr, 0, Duration::from_secs(5), 1024);
        let frame = encode_frame(b"hello", 1024).unwrap();
        t.send(&frame).unwrap();
        let (mut server, _) = l.accept().unwrap();
        let got = read_frame(&mut server, 1024, Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(got, b"hello");
        assert_eq!(t.stats().frames_sent, 1);
        assert_eq!(t.stats().bytes_sent, frame.len() as u64);
    }

    #[test]
    fn failed_dial_is_counted_and_typed() {
        // Bind-then-drop guarantees a dead port.
        let (l, addr) = listener();
        drop(l);
        let mut t = Transport::new(&addr, 0, Duration::from_millis(200), 1024);
        let frame = encode_frame(b"x", 1024).unwrap();
        assert!(matches!(t.send(&frame), Err(UStreamError::Io(_))));
        assert_eq!(t.stats().connect_failures, 1);
        assert_eq!(t.stats().send_failures, 1);
        assert!(!t.is_connected());
    }

    #[cfg(feature = "failpoints")]
    mod faulted {
        use super::*;
        use ustream_engine::failpoints;

        /// The failpoint registry is process-global; serialise the tests
        /// that touch it.
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

        fn recv_all(l: &TcpListener, n: usize) -> Vec<Vec<u8>> {
            let (mut server, _) = l.accept().unwrap();
            (0..n)
                .map(|_| {
                    read_frame(&mut server, 1024, Duration::from_secs(5))
                        .unwrap()
                        .unwrap()
                })
                .collect()
        }

        #[test]
        fn drop_fault_pretends_success_without_bytes() {
            let _g = LOCK.lock().unwrap();
            failpoints::reset_all();
            let (l, addr) = listener();
            let mut t = Transport::new(&addr, 0, Duration::from_secs(5), 1024);
            failpoints::arm(failpoints::NET_DROP, 1);
            t.send(&encode_frame(b"lost", 1024).unwrap()).unwrap();
            assert_eq!(t.stats().frames_sent, 0);
            t.send(&encode_frame(b"kept", 1024).unwrap()).unwrap();
            let got = recv_all(&l, 1);
            assert_eq!(got[0], b"kept");
            failpoints::reset_all();
        }

        #[test]
        fn dup_fault_writes_the_frame_twice() {
            let _g = LOCK.lock().unwrap();
            failpoints::reset_all();
            let (l, addr) = listener();
            let mut t = Transport::new(&addr, 0, Duration::from_secs(5), 1024);
            failpoints::arm(failpoints::NET_DUP, 1);
            t.send(&encode_frame(b"twin", 1024).unwrap()).unwrap();
            let got = recv_all(&l, 2);
            assert_eq!(got[0], b"twin");
            assert_eq!(got[1], b"twin");
            assert_eq!(t.stats().frames_sent, 2);
            failpoints::reset_all();
        }

        #[test]
        fn reorder_fault_swaps_adjacent_frames() {
            let _g = LOCK.lock().unwrap();
            failpoints::reset_all();
            let (l, addr) = listener();
            let mut t = Transport::new(&addr, 0, Duration::from_secs(5), 1024);
            failpoints::arm(failpoints::NET_REORDER, 1);
            t.send(&encode_frame(b"first", 1024).unwrap()).unwrap();
            t.send(&encode_frame(b"second", 1024).unwrap()).unwrap();
            let got = recv_all(&l, 2);
            assert_eq!(got[0], b"second");
            assert_eq!(got[1], b"first");
            failpoints::reset_all();
        }

        #[test]
        fn corrupt_fault_breaks_the_checksum() {
            let _g = LOCK.lock().unwrap();
            failpoints::reset_all();
            let (l, addr) = listener();
            let mut t = Transport::new(&addr, 0, Duration::from_secs(5), 1024);
            failpoints::arm(failpoints::NET_CORRUPT, 1);
            t.send(&encode_frame(b"mangled", 1024).unwrap()).unwrap();
            let (mut server, _) = l.accept().unwrap();
            let err = read_frame(&mut server, 1024, Duration::from_secs(5)).unwrap_err();
            assert!(err.to_string().contains("checksum"), "{err}");
            failpoints::reset_all();
        }

        #[test]
        fn partition_fails_only_the_armed_site() {
            let _g = LOCK.lock().unwrap();
            failpoints::reset_all();
            let (l, addr) = listener();
            let mut site0 = Transport::new(&addr, 0, Duration::from_secs(5), 1024);
            let mut site1 = Transport::new(&addr, 1, Duration::from_secs(5), 1024);
            failpoints::arm(&failpoints::net_partition(0), 1);
            let frame = encode_frame(b"p", 1024).unwrap();
            assert!(site0.send(&frame).is_err(), "partitioned site must fail");
            site1.send(&frame).unwrap();
            // The partition healed (count consumed): site 0 gets through.
            site0.send(&frame).unwrap();
            let _ = l;
            failpoints::reset_all();
        }
    }
}
