//! Wire messages of the distributed tier.
//!
//! Every message crosses the wire inside a USRV frame (length prefix +
//! fnv1a64 checksum), reusing the serving front-end's codec via
//! [`ustream_serve::protocol::encode_message`] — the distrib tier adds no
//! second framing discipline. Payloads are JSON for the same reasons the
//! serving protocol chose it: self-describing, debuggable with standard
//! tools, and the frame layer already guards integrity and size.
//!
//! ## Delta semantics: replace, not add
//!
//! A [`DeltaFrame`] carries the *full current ECF* of every micro-cluster
//! that changed since the site's last acknowledged epoch (`updates`), plus
//! the ids that disappeared (`removes`). Applying a delta means
//! `map[id] = ecf` / `map.remove(id)` — never arithmetic. Replace
//! semantics make application idempotent by construction: applying the
//! same frame twice yields the same map, so a duplicated or replayed
//! epoch can corrupt nothing even before the sequence-number dedup
//! rejects it. They also sidestep f64 non-associativity — the coordinator
//! holds bit-for-bit the site's own summaries, which is what the
//! exactness proptest pins down.
//!
//! ## Epoch/ack state machine
//!
//! Each site numbers its delta frames with a contiguous sequence starting
//! at 1. The coordinator tracks `last_applied` per site and:
//!
//! * `seq == last_applied + 1` → apply, ack with the new `last_applied`;
//! * `seq <= last_applied` → duplicate (retransmit race, replayed frame):
//!   drop without re-merging, re-ack so the sender can make progress;
//! * `seq > last_applied + 1` → gap (the coordinator lost state, e.g. it
//!   restarted): nack with the expected sequence; the site responds with
//!   a `full` frame that replaces its whole per-site map.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use umicro::Ecf;
use ustream_serve::protocol::{decode_message, encode_message, FrameError};

/// Default frame ceiling — same as the serving protocol's.
pub use ustream_serve::protocol::DEFAULT_MAX_FRAME_BYTES;

/// One epoch's worth of micro-cluster changes from one site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeltaFrame {
    /// Originating site id.
    pub site: u64,
    /// Contiguous per-site epoch number, starting at 1.
    pub seq: u64,
    /// When set, `updates` is the site's *complete* cluster map and the
    /// coordinator must drop everything it previously held for this site
    /// (resync after a crash, restart, or nacked gap).
    pub full: bool,
    /// Micro-clusters changed since the last acked epoch, keyed by the
    /// site's shard-namespaced local id, each carrying its full current
    /// ECF (replace semantics).
    pub updates: BTreeMap<u64, Ecf>,
    /// Local ids that existed at the last acked epoch but no longer do.
    pub removes: Vec<u64>,
    /// Records the site has processed up to this epoch.
    pub points: u64,
    /// The site's stream clock (latest tick observed).
    pub last_tick: u64,
}

/// Messages a site (or an observer) sends to the coordinator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SiteRequest {
    /// Session open: tells the coordinator who is calling and asks for its
    /// `last_applied` so a respawned site can resume from its last acked
    /// epoch.
    Hello {
        /// Calling site id.
        site: u64,
    },
    /// One delta epoch.
    Delta {
        /// The epoch's changes.
        frame: DeltaFrame,
    },
    /// Coordinator statistics (liveness, counters).
    Stats,
    /// The merged global micro-cluster map, keyed by global cluster id.
    GlobalClusters,
    /// The micro-clusters of one site as the coordinator holds them.
    SiteClusters {
        /// Site to inspect.
        site: u64,
    },
}

/// Coordinator replies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum CoordResponse {
    /// Reply to [`SiteRequest::Hello`].
    HelloAck {
        /// Highest epoch the coordinator has applied for the caller.
        last_applied: u64,
    },
    /// The delta was applied, or was a duplicate of an already-applied
    /// epoch; either way `applied` is the coordinator's current
    /// `last_applied` for the site.
    DeltaAck {
        /// Site the ack is for.
        site: u64,
        /// Coordinator's `last_applied` after handling the frame.
        applied: u64,
    },
    /// The delta skipped ahead of the coordinator's state: the site must
    /// resync with a `full` frame carrying the expected sequence number.
    DeltaNack {
        /// Site the nack is for.
        site: u64,
        /// The sequence number the coordinator expects next.
        expected: u64,
    },
    /// Reply to [`SiteRequest::Stats`].
    Stats {
        /// Counters and per-site health.
        stats: CoordStats,
    },
    /// Reply to the cluster queries.
    Clusters {
        /// Cluster map; globally namespaced ids for `GlobalClusters`,
        /// site-local ids for `SiteClusters`.
        clusters: BTreeMap<u64, Ecf>,
    },
    /// The request could not be served.
    Error {
        /// Human-readable detail.
        message: String,
    },
}

/// Liveness and progress of one site as the coordinator sees it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteHealth {
    /// Site id.
    pub site: u64,
    /// Highest applied epoch.
    pub last_applied: u64,
    /// Records the site reported processing.
    pub points: u64,
    /// The site's stream clock at its last applied epoch.
    pub last_tick: u64,
    /// Milliseconds since the coordinator last heard from the site.
    pub last_heard_ms: u64,
    /// Whether `last_heard_ms` exceeds the configured suspicion timeout.
    pub suspect: bool,
}

/// What [`crate::Coordinator::resume`] recovered, carried in
/// [`CoordStats`] so operators can audit a restart after the fact.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordRecovery {
    /// Epochs the loaded snapshot generation covered.
    pub snapshot_epochs: u64,
    /// Corrupt/unreadable snapshot generations skipped on the way to the
    /// one that loaded (non-zero means the snapshot directory is rotting).
    pub corrupt_generations_skipped: u64,
    /// Intact WAL records replayed on top of the snapshot.
    pub wal_records_replayed: u64,
    /// Whether a torn/corrupt WAL tail was found and cut off. A torn tail
    /// is benign by construction — the record was written before any ack,
    /// so the epoch it carried was never promised durable.
    pub wal_truncated: bool,
    /// Bytes the WAL truncation discarded.
    pub wal_bytes_dropped: u64,
}

/// Coordinator counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CoordStats {
    /// Per-site health, ordered by site id.
    pub sites: Vec<SiteHealth>,
    /// Delta epochs applied (duplicates excluded).
    pub epochs_applied: u64,
    /// Duplicate epochs dropped (re-acked, never re-merged).
    pub duplicates_dropped: u64,
    /// Gap frames nacked.
    pub gaps_nacked: u64,
    /// Frames rejected at the codec layer (bad checksum, oversized,
    /// malformed payload).
    pub frames_rejected: u64,
    /// Frames accepted by the codec layer.
    pub frames_received: u64,
    /// Wire bytes received across all sessions.
    pub bytes_received: u64,
    /// Micro-clusters in the merged global view.
    pub global_clusters: u64,
    /// Total records processed across all sites.
    pub total_points: u64,
    /// Records currently in the epoch-commit WAL (0 when not durable).
    pub wal_records: u64,
    /// Bytes currently in the epoch-commit WAL (0 when not durable).
    pub wal_bytes: u64,
    /// Durable snapshot generations written since this process started.
    pub snapshots_written: u64,
    /// Epochs applied since the last durable snapshot — the recovery
    /// cost ceiling, in WAL records, if the coordinator died right now.
    pub last_snapshot_age_epochs: u64,
    /// Set when this coordinator came up via `--resume`: what the
    /// recovery found. `None` for fresh starts and non-durable runs.
    pub recovery: Option<CoordRecovery>,
}

/// Serialises a site request into a complete USRV frame.
pub fn encode_site_request(req: &SiteRequest, max: usize) -> Result<Vec<u8>, FrameError> {
    encode_message(req, max)
}

/// Parses a verified frame payload as a site request.
pub fn decode_site_request(payload: &[u8]) -> Result<SiteRequest, FrameError> {
    decode_message(payload)
}

/// Serialises a coordinator response into a complete USRV frame.
pub fn encode_coord_response(resp: &CoordResponse, max: usize) -> Result<Vec<u8>, FrameError> {
    encode_message(resp, max)
}

/// Parses a verified frame payload as a coordinator response.
pub fn decode_coord_response(payload: &[u8]) -> Result<CoordResponse, FrameError> {
    decode_message(payload)
}

/// Bits of the global cluster id that carry the site index. The low 56
/// bits hold the site's shard-namespaced local id (16 shard bits over 48
/// local-id bits, see `ustream_snapshot::SHARD_ID_BITS`), so site count
/// and per-site shard count are both bounded by [`MAX_SITES`].
pub const SITE_ID_SHIFT: u32 = 56;
/// Maximum sites (and maximum shards per site) the global id space holds.
pub const MAX_SITES: u64 = 1 << (64 - SITE_ID_SHIFT);

/// Composes the coordinator's global cluster id from a site id and that
/// site's (shard-namespaced) local cluster id.
///
/// Debug builds assert both components fit their fields; release builds
/// mask, matching the engine's own namespacing helper.
#[must_use]
pub fn global_cluster_id(site: u64, local: u64) -> u64 {
    debug_assert!(site < MAX_SITES, "site id {site} overflows its field");
    debug_assert!(
        local < (1 << SITE_ID_SHIFT),
        "local id {local:#x} overflows its field (shard index too large?)"
    );
    (site << SITE_ID_SHIFT) | (local & ((1 << SITE_ID_SHIFT) - 1))
}

/// The site component of a global cluster id.
#[must_use]
pub fn site_of_global(id: u64) -> u64 {
    id >> SITE_ID_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ecf() -> Ecf {
        let p = ustream_common::UncertainPoint::new(vec![1.5, -2.0], vec![0.25, 0.5], 7, None);
        Ecf::from_point(&p)
    }

    #[test]
    fn delta_frame_round_trips_bit_for_bit() {
        let mut updates = BTreeMap::new();
        updates.insert(3u64, tiny_ecf());
        updates.insert((1u64 << 48) | 9, tiny_ecf());
        let frame = DeltaFrame {
            site: 2,
            seq: 41,
            full: false,
            updates,
            removes: vec![5, 6],
            points: 1234,
            last_tick: 999,
        };
        let req = SiteRequest::Delta {
            frame: frame.clone(),
        };
        let bytes = encode_site_request(&req, DEFAULT_MAX_FRAME_BYTES).unwrap();
        let payload =
            ustream_serve::protocol::decode_frame(&bytes, DEFAULT_MAX_FRAME_BYTES).unwrap();
        match decode_site_request(payload).unwrap() {
            SiteRequest::Delta { frame: back } => assert_eq!(back, frame),
            other => panic!("wrong variant: {other:?}"),
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in [
            CoordResponse::HelloAck { last_applied: 7 },
            CoordResponse::DeltaAck {
                site: 1,
                applied: 3,
            },
            CoordResponse::DeltaNack {
                site: 1,
                expected: 4,
            },
            CoordResponse::Error {
                message: "nope".into(),
            },
        ] {
            let bytes = encode_coord_response(&resp, DEFAULT_MAX_FRAME_BYTES).unwrap();
            let payload =
                ustream_serve::protocol::decode_frame(&bytes, DEFAULT_MAX_FRAME_BYTES).unwrap();
            let back = decode_coord_response(payload).unwrap();
            assert_eq!(format!("{back:?}"), format!("{resp:?}"));
        }
    }

    #[test]
    fn corrupt_frame_is_rejected_by_the_codec() {
        let req = SiteRequest::Hello { site: 1 };
        let mut bytes = encode_site_request(&req, DEFAULT_MAX_FRAME_BYTES).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(ustream_serve::protocol::decode_frame(&bytes, DEFAULT_MAX_FRAME_BYTES).is_err());
    }

    #[test]
    fn global_id_composition() {
        let local = (3u64 << 48) | 17; // shard 3, local cluster 17
        let id = global_cluster_id(5, local);
        assert_eq!(site_of_global(id), 5);
        assert_eq!(id & ((1 << SITE_ID_SHIFT) - 1), local);
    }
}
