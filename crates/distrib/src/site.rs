//! A local clustering site: wraps a sharded [`StreamEngine`], extracts
//! ECF deltas since the last acknowledged epoch, and ships them to the
//! coordinator over the fault-injected transport with bounded retry.
//!
//! ## Delta extraction
//!
//! The site retains `acked`: the exact cluster map the coordinator held
//! after the last acknowledged epoch. Extraction flushes the engine,
//! snapshots the live map, and diffs — every cluster whose ECF differs
//! bit-for-bit from `acked` ships its *full current state* (replace
//! semantics, see the protocol module), every id that vanished ships as a
//! remove. Because the diff is against the acked map (not "since last
//! attempt"), a failed or dropped epoch is never lost: its changes simply
//! stay dirty and ride the next epoch.
//!
//! ## Crash recovery
//!
//! With a [`CheckpointPolicy`] the site rotates generations of its engine
//! checkpoint between records, so each generation is an exact prefix cut
//! of its sub-stream. [`Site::resume`] restores the newest readable
//! generation ([`StreamEngine::restore_latest`]), reports how many records
//! that state covers, and the runner re-feeds the tail. The first
//! handshake after a resume learns the coordinator's `last_applied` and
//! forces a `full` resync frame — the coordinator's map is replaced
//! wholesale, so nothing double-counts and nothing gaps regardless of
//! which epochs the crash swallowed.

use crate::io::Transport;
use crate::protocol::{
    decode_coord_response, encode_site_request, CoordResponse, DeltaFrame, SiteRequest, MAX_SITES,
};
use std::collections::BTreeMap;
use std::time::Duration;
use umicro::Ecf;
use ustream_common::{Backoff, Result, UStreamError, UncertainPoint};
use ustream_engine::{EngineBuilder, EngineConfig, StreamEngine};

/// Bounded retry policy of the delta shipper (and the handshake).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Attempts per ship before giving up with
    /// [`UStreamError::RetriesExhausted`].
    pub max_attempts: u32,
    /// First backoff delay, in milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff cap, in milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter seed (mixed with the site id so sites never sync up).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_backoff_ms: 20,
            max_backoff_ms: 1_000,
            seed: 0xd15c,
        }
    }
}

/// Rotated checkpointing of the site's engine between records.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Base path; generations land in `<base>.N` plus `<base>.manifest`.
    pub base: String,
    /// Generations to rotate through.
    pub generations: u64,
    /// Records between checkpoints.
    pub every_points: u64,
}

/// Site tuning knobs.
#[derive(Debug, Clone)]
pub struct SiteConfig {
    /// This site's id (must be unique per coordinator and `< MAX_SITES`).
    pub site_id: u64,
    /// Coordinator address, e.g. `127.0.0.1:7171`.
    pub coordinator_addr: String,
    /// Records between delta shipments.
    pub delta_every: u64,
    /// Per-operation socket deadline.
    pub io_deadline: Duration,
    /// Largest emitted/accepted frame.
    pub max_frame_bytes: usize,
    /// Retry policy for shipping and handshakes.
    pub retry: RetryPolicy,
    /// Optional rotated checkpointing (required for [`Site::resume`]).
    pub checkpoint: Option<CheckpointPolicy>,
}

impl SiteConfig {
    /// Defaults: ship every 256 records, 5 s deadline, default retry, no
    /// checkpointing.
    pub fn new(site_id: u64, coordinator_addr: &str) -> Self {
        Self {
            site_id,
            coordinator_addr: coordinator_addr.to_string(),
            delta_every: 256,
            io_deadline: Duration::from_secs(5),
            max_frame_bytes: crate::protocol::DEFAULT_MAX_FRAME_BYTES,
            retry: RetryPolicy::default(),
            checkpoint: None,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.site_id >= MAX_SITES {
            return Err(UStreamError::InvalidConfig(format!(
                "site_id {} out of range (max {MAX_SITES})",
                self.site_id
            )));
        }
        if self.delta_every == 0 {
            return Err(UStreamError::InvalidConfig(
                "delta_every must be positive".into(),
            ));
        }
        if let Some(ck) = &self.checkpoint {
            if ck.generations == 0 || ck.every_points == 0 {
                return Err(UStreamError::InvalidConfig(
                    "checkpoint generations and every_points must be positive".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Progress counters of one site.
#[derive(Debug, Clone, Copy, Default)]
pub struct SiteStats {
    /// Records pushed into the local engine.
    pub points: u64,
    /// Delta epochs acknowledged by the coordinator.
    pub epochs_acked: u64,
    /// Epochs that degenerated into full resyncs (nack, behind-ack, or
    /// post-recovery handshake).
    pub full_resyncs: u64,
    /// Ship attempts beyond the first (retries).
    pub send_retries: u64,
    /// Periodic syncs that exhausted their retries (state stays dirty and
    /// rides the next epoch).
    pub sync_failures: u64,
    /// Rotated checkpoints written.
    pub checkpoints_written: u64,
    /// Frames actually written to the wire.
    pub frames_sent: u64,
    /// Bytes actually written to the wire.
    pub bytes_sent: u64,
}

/// A running site.
pub struct Site {
    engine: StreamEngine,
    transport: Transport,
    cfg: SiteConfig,
    /// The exact map the coordinator acknowledged last.
    acked: BTreeMap<u64, Ecf>,
    acked_seq: u64,
    /// Next frame must carry the complete map (post-handshake resync).
    pending_full: bool,
    since_delta: u64,
    since_ckpt: u64,
    ckpt_seq: u64,
    stats: SiteStats,
}

impl Site {
    /// Builds a fresh engine from `engine_cfg` and performs the handshake.
    pub fn start(engine_cfg: EngineConfig, cfg: SiteConfig) -> Result<Self> {
        cfg.validate()?;
        let engine = EngineBuilder::from_config(engine_cfg).build()?;
        Self::attach(engine, cfg)
    }

    /// Restores the engine from the newest readable checkpoint generation
    /// and performs the handshake. Returns the site plus the number of
    /// records the restored state already covers — the runner re-feeds its
    /// sub-stream from that ordinal (no double-count, no gap).
    pub fn resume(cfg: SiteConfig) -> Result<(Self, u64)> {
        cfg.validate()?;
        let base = cfg
            .checkpoint
            .as_ref()
            .map(|c| c.base.clone())
            .ok_or_else(|| {
                UStreamError::InvalidConfig("resume requires a checkpoint policy".into())
            })?;
        let engine = StreamEngine::restore_latest(&base)?;
        let covered = engine.points_processed();
        let mut site = Self::attach(engine, cfg)?;
        site.stats.points = covered;
        Ok((site, covered))
    }

    /// Wraps an already-running engine: handshake, then delta shipping.
    pub fn attach(engine: StreamEngine, cfg: SiteConfig) -> Result<Self> {
        cfg.validate()?;
        let transport = Transport::new(
            &cfg.coordinator_addr,
            cfg.site_id,
            cfg.io_deadline,
            cfg.max_frame_bytes,
        );
        let mut site = Self {
            engine,
            transport,
            cfg,
            acked: BTreeMap::new(),
            acked_seq: 0,
            pending_full: false,
            since_delta: 0,
            since_ckpt: 0,
            ckpt_seq: 0,
            stats: SiteStats::default(),
        };
        site.handshake()?;
        Ok(site)
    }

    /// Hello round-trip with bounded retry: learns the coordinator's
    /// `last_applied` for this site. A non-zero answer means the
    /// coordinator holds state this session did not ship (we crashed or
    /// restarted), so the next frame must be a full resync.
    fn handshake(&mut self) -> Result<()> {
        let req = SiteRequest::Hello {
            site: self.cfg.site_id,
        };
        let frame = encode_site_request(&req, self.cfg.max_frame_bytes)?;
        let mut backoff = self.backoff();
        let mut last_err: Option<UStreamError> = None;
        for attempt in 0..=self.cfg.retry.max_attempts {
            if attempt > 0 {
                self.stats.send_retries += 1;
                // lint:allow(no-sleep): bounded, jittered retry backoff
                std::thread::sleep(backoff.next_delay());
            }
            match self.hello_roundtrip(&frame) {
                Ok(last_applied) => {
                    self.acked_seq = last_applied;
                    self.acked.clear();
                    self.pending_full = last_applied > 0;
                    return Ok(());
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(self.exhausted(last_err))
    }

    fn hello_roundtrip(&mut self, frame: &[u8]) -> Result<u64> {
        self.transport.send(frame)?;
        let payload = self.transport.recv()?.ok_or_else(eof)?;
        match decode_coord_response(&payload).map_err(UStreamError::from)? {
            CoordResponse::HelloAck { last_applied } => Ok(last_applied),
            CoordResponse::Error { message } => Err(UStreamError::Serde(format!(
                "coordinator rejected hello: {message}"
            ))),
            // A stale ack from a previous session's duplicated frame can
            // linger in the socket buffer; skip one and re-read.
            _ => {
                let payload = self.transport.recv()?.ok_or_else(eof)?;
                match decode_coord_response(&payload).map_err(UStreamError::from)? {
                    CoordResponse::HelloAck { last_applied } => Ok(last_applied),
                    other => Err(UStreamError::Serde(format!(
                        "unexpected hello response: {other:?}"
                    ))),
                }
            }
        }
    }

    /// Fails the site over to a (typically resumed) coordinator at
    /// `coordinator_addr`: drops the old connection, re-points the
    /// transport, and re-handshakes. When the coordinator recovered from
    /// its WAL + snapshot, the handshake's `last_applied` equals
    /// `acked_seq` and shipping continues with the next delta — no full
    /// resync; a coordinator that lost state answers behind and the
    /// normal nack/resync fallback engages.
    pub fn repoint(&mut self, coordinator_addr: &str) -> Result<()> {
        self.cfg.coordinator_addr = coordinator_addr.to_string();
        self.transport.set_addr(coordinator_addr);
        let before_seq = self.acked_seq;
        let before_map = std::mem::take(&mut self.acked);
        if let Err(e) = self.handshake() {
            // The handshake exhausted its retries without mutating any
            // session state, so put the shadow map back — losing it here
            // would make a *later* successful repoint diff against an
            // empty map and never ship removals of clusters the
            // coordinator still holds. `pending_full` is a safety net for
            // callers that ignore this error and keep syncing: a full
            // frame is always exact, whatever the far end recovered.
            self.acked = before_map;
            self.pending_full = true;
            return Err(e);
        }
        if self.acked_seq == before_seq && before_seq > 0 {
            // The coordinator confirmed the exact epoch this session
            // already had acked — it recovered our state bit-for-bit, so
            // keep the acked map and skip the full resync the handshake
            // pessimistically schedules for any non-zero answer.
            self.acked = before_map;
            self.pending_full = false;
        }
        Ok(())
    }

    /// Pushes one record into the local engine, shipping a delta and/or
    /// writing a checkpoint when their cadences come due.
    ///
    /// A shipping failure after all retries does **not** fail the push:
    /// the site keeps clustering through a partition and the dirty state
    /// rides the next epoch (`stats().sync_failures` counts these).
    /// Checkpoint failures do fail the push — losing durability is not
    /// survivable silently.
    pub fn push(&mut self, point: UncertainPoint) -> Result<()> {
        self.engine.push(point)?;
        self.stats.points += 1;
        self.since_delta += 1;
        self.since_ckpt += 1;
        if let Some(ck) = self.cfg.checkpoint.clone() {
            if self.since_ckpt >= ck.every_points {
                self.checkpoint_now(&ck)?;
            }
        }
        if self.since_delta >= self.cfg.delta_every {
            self.since_delta = 0;
            if let Err(e) = self.sync() {
                if matches!(e, UStreamError::RetriesExhausted { .. }) {
                    self.stats.sync_failures += 1;
                } else {
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// Writes a rotated checkpoint now (an exact prefix cut — the engine
    /// is flushed first and the caller is between records).
    fn checkpoint_now(&mut self, ck: &CheckpointPolicy) -> Result<()> {
        self.engine
            .checkpoint_rotated(&ck.base, ck.generations, self.ckpt_seq)?;
        self.ckpt_seq += 1;
        self.since_ckpt = 0;
        self.stats.checkpoints_written += 1;
        Ok(())
    }

    /// Extracts and ships one delta epoch, retrying under the policy until
    /// acked. Returns the acked epoch, or `Ok(acked_seq)` unchanged when
    /// nothing is dirty.
    ///
    /// # Errors
    ///
    /// [`UStreamError::RetriesExhausted`] when every attempt failed; the
    /// dirty state is retained and ships with the next epoch.
    pub fn sync(&mut self) -> Result<u64> {
        let Some(frame) = self.extract_delta() else {
            return Ok(self.acked_seq);
        };
        self.ship(frame)
    }

    /// Flushes the engine and diffs the live cluster map against the
    /// acked map. `None` when nothing changed and no resync is pending.
    fn extract_delta(&mut self) -> Option<DeltaFrame> {
        self.engine.flush();
        let current: BTreeMap<u64, Ecf> = self
            .engine
            .micro_clusters()
            .into_iter()
            .map(|mc| (mc.id, mc.ecf))
            .collect();
        let (updates, removes, full) = if self.pending_full {
            self.stats.full_resyncs += 1;
            (current, Vec::new(), true)
        } else {
            let updates: BTreeMap<u64, Ecf> = current
                .iter()
                .filter(|(id, ecf)| self.acked.get(*id) != Some(*ecf))
                .map(|(id, ecf)| (*id, ecf.clone()))
                .collect();
            let removes: Vec<u64> = self
                .acked
                .keys()
                .filter(|id| !current.contains_key(id))
                .copied()
                .collect();
            if updates.is_empty() && removes.is_empty() {
                return None;
            }
            (updates, removes, false)
        };
        Some(DeltaFrame {
            site: self.cfg.site_id,
            seq: self.acked_seq + 1,
            full,
            updates,
            removes,
            points: self.engine.points_processed(),
            last_tick: self.engine.stats().last_tick,
        })
    }

    /// Rebuilds the pending epoch as a full-resync frame at `seq`.
    fn rebuild_full(&mut self, seq: u64) -> DeltaFrame {
        self.stats.full_resyncs += 1;
        self.pending_full = true;
        self.acked_seq = seq.saturating_sub(1);
        let current: BTreeMap<u64, Ecf> = self
            .engine
            .micro_clusters()
            .into_iter()
            .map(|mc| (mc.id, mc.ecf))
            .collect();
        DeltaFrame {
            site: self.cfg.site_id,
            seq,
            full: true,
            updates: current,
            removes: Vec::new(),
            points: self.engine.points_processed(),
            last_tick: self.engine.stats().last_tick,
        }
    }

    /// Ships `frame` until acked, following nacks into full resyncs.
    fn ship(&mut self, mut frame: DeltaFrame) -> Result<u64> {
        let mut backoff = self.backoff();
        let mut last_err: Option<UStreamError> = None;
        for attempt in 0..=self.cfg.retry.max_attempts {
            if attempt > 0 {
                self.stats.send_retries += 1;
                // lint:allow(no-sleep): bounded, jittered retry backoff
                std::thread::sleep(backoff.next_delay());
            }
            match self.delta_roundtrip(&frame) {
                Ok(Verdict::Acked) => {
                    if frame.full {
                        self.acked = frame.updates.clone();
                    } else {
                        for (id, ecf) in &frame.updates {
                            self.acked.insert(*id, ecf.clone());
                        }
                        for id in &frame.removes {
                            self.acked.remove(id);
                        }
                    }
                    self.acked_seq = frame.seq;
                    self.pending_full = false;
                    self.stats.epochs_acked += 1;
                    self.fold_transport_stats();
                    return Ok(frame.seq);
                }
                Ok(Verdict::Resync { expected }) => {
                    // Not a transport fault: rebuild and retry immediately
                    // on the live connection (no backoff advance).
                    frame = self.rebuild_full(expected);
                }
                Err(e) => last_err = Some(e),
            }
        }
        self.fold_transport_stats();
        Err(self.exhausted(last_err))
    }

    /// One send + read-until-relevant-response round. Stale responses —
    /// acks below our sequence left over from duplicated or reordered
    /// earlier frames — are skipped, bounded by a small budget so a
    /// babbling peer cannot pin us past the deadline.
    fn delta_roundtrip(&mut self, frame: &DeltaFrame) -> Result<Verdict> {
        let req = SiteRequest::Delta {
            frame: frame.clone(),
        };
        let bytes = encode_site_request(&req, self.cfg.max_frame_bytes)?;
        self.transport.send(&bytes)?;
        for _ in 0..16 {
            let payload = self.transport.recv()?.ok_or_else(eof)?;
            match decode_coord_response(&payload).map_err(UStreamError::from)? {
                CoordResponse::DeltaAck { site, applied }
                    if site == self.cfg.site_id && applied >= frame.seq =>
                {
                    return Ok(Verdict::Acked);
                }
                CoordResponse::DeltaAck { site, .. } if site == self.cfg.site_id => {
                    // Stale ack from an earlier epoch's duplicate; read on.
                }
                CoordResponse::DeltaNack { site, expected } if site == self.cfg.site_id => {
                    if frame.full && expected == frame.seq {
                        // Stale nack for the epoch we are already
                        // resyncing; read on.
                        continue;
                    }
                    return Ok(Verdict::Resync { expected });
                }
                CoordResponse::Error { message } => {
                    return Err(UStreamError::Io(std::io::Error::other(format!(
                        "coordinator error: {message}"
                    ))));
                }
                _ => {
                    // HelloAck or query responses cannot answer a delta;
                    // treat as stale and read on.
                }
            }
        }
        Err(UStreamError::Io(std::io::Error::other(
            "no relevant response within the stale-skip budget",
        )))
    }

    fn backoff(&self) -> Backoff {
        Backoff::new(
            self.cfg.retry.base_backoff_ms,
            self.cfg.retry.max_backoff_ms,
            self.cfg.retry.seed ^ self.cfg.site_id,
        )
    }

    fn exhausted(&self, last: Option<UStreamError>) -> UStreamError {
        UStreamError::RetriesExhausted {
            attempts: self.cfg.retry.max_attempts + 1,
            last_error: last
                .map(|e| e.to_string())
                .unwrap_or_else(|| "no attempt recorded".into()),
        }
    }

    fn fold_transport_stats(&mut self) {
        let t = self.transport.stats();
        self.stats.frames_sent = t.frames_sent;
        self.stats.bytes_sent = t.bytes_sent;
    }

    /// Progress counters (transport bytes included).
    pub fn stats(&self) -> SiteStats {
        let mut s = self.stats;
        let t = self.transport.stats();
        s.frames_sent = t.frames_sent;
        s.bytes_sent = t.bytes_sent;
        s
    }

    /// The wrapped engine (queries, flush).
    pub fn engine(&self) -> &StreamEngine {
        &self.engine
    }

    /// Final sync (retried), engine shutdown, and the closing stats.
    ///
    /// # Errors
    ///
    /// [`UStreamError::RetriesExhausted`] when the final sync could not be
    /// acked; the engine is still shut down cleanly.
    pub fn finish(mut self) -> Result<SiteStats> {
        let sync_result = self.sync();
        self.engine.shutdown();
        let stats = self.stats();
        sync_result.map(|_| stats)
    }
}

/// Outcome of one delta round-trip.
enum Verdict {
    Acked,
    Resync { expected: u64 },
}

fn eof() -> UStreamError {
    UStreamError::Io(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "coordinator closed the connection before replying",
    ))
}
