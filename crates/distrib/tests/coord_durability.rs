//! Coordinator durability without fault injection: WAL + snapshot
//! recovery over real sockets, clean-shutdown round trips, the
//! corrupt-generation fallback, and a torn-WAL property test — all on the
//! tier-1 path (no `failpoints` feature), because recovery must be exact
//! even when nothing hostile is happening.

use std::collections::BTreeMap;
use std::time::Duration;
use umicro::{Ecf, UMicroConfig};
use ustream_common::backoff::splitmix64;
use ustream_common::{UStreamError, UncertainPoint};
use ustream_distrib::{
    wal, Coordinator, CoordinatorConfig, DeltaFrame, DurabilityPolicy, RetryPolicy, Site,
    SiteConfig, Wal,
};
use ustream_engine::{EngineBuilder, StreamEngine};
use ustream_snapshot::{shard_of_id, SHARD_ID_BITS};

const LOCAL_MASK: u64 = (1u64 << SHARD_ID_BITS) - 1;

fn point(t: u64, dims: usize, seed: u64) -> UncertainPoint {
    let values = (0..dims)
        .map(|d| {
            let r = splitmix64(seed ^ t.wrapping_mul(0x9e37_79b9) ^ ((d as u64) << 32));
            let centre = ((r >> 8) % 4) as f64 * 10.0;
            let noise = (r & 0xffff) as f64 / 65_536.0 - 0.5;
            centre + noise
        })
        .collect();
    UncertainPoint::new(values, vec![0.3; dims], t, None)
}

fn site_engine(n_micro: usize, dims: usize) -> StreamEngine {
    EngineBuilder::new(UMicroConfig::new(n_micro, dims).expect("valid site config"))
        .shards(1)
        .build()
        .expect("site engine boots")
}

fn reference_maps(
    points: &[UncertainPoint],
    n_sites: usize,
    n_micro: usize,
    dims: usize,
) -> Vec<BTreeMap<u64, Ecf>> {
    let engine = EngineBuilder::new(
        UMicroConfig::new(n_micro * n_sites, dims).expect("valid reference config"),
    )
    .shards(n_sites)
    .build()
    .expect("reference engine boots");
    for p in points {
        engine.push(p.clone()).expect("reference ingest");
    }
    engine.flush();
    let mut maps = vec![BTreeMap::new(); n_sites];
    for mc in engine.micro_clusters() {
        maps[shard_of_id(mc.id)].insert(mc.id & LOCAL_MASK, mc.ecf);
    }
    engine.shutdown();
    maps
}

fn fast_cfg(site: u64, addr: &str, delta_every: u64) -> SiteConfig {
    let mut cfg = SiteConfig::new(site, addr);
    cfg.delta_every = delta_every;
    cfg.io_deadline = Duration::from_millis(400);
    cfg.retry = RetryPolicy {
        max_attempts: 8,
        base_backoff_ms: 2,
        max_backoff_ms: 40,
        seed: 0xd0_1ab1e,
    };
    cfg
}

fn temp_base(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("ustream-coord-{tag}-{}.snap", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn cleanup_base(base: &str) {
    for suffix in ["manifest", "0", "1", "2", "3", "tmp", "wal"] {
        let _ = std::fs::remove_file(format!("{base}.{suffix}"));
    }
}

fn durable_cfg(base: &str, snapshot_every_epochs: u64) -> CoordinatorConfig {
    CoordinatorConfig {
        durability: Some(DurabilityPolicy {
            base: base.to_string(),
            generations: 3,
            snapshot_every_epochs,
        }),
        ..CoordinatorConfig::default()
    }
}

fn assert_exact(coord: &Coordinator, reference: &[BTreeMap<u64, Ecf>]) {
    for (i, expected) in reference.iter().enumerate() {
        let got = coord.site_clusters(i as u64);
        assert_eq!(&got, expected, "site {i} diverged from shard {i}");
    }
}

/// The headline recovery property: kill the coordinator mid-run, resume
/// on a fresh port, fail the sites over — the run finishes bit-for-bit
/// equal to the single-node reference, with zero nacked gaps and zero
/// full resyncs, because snapshot ∪ WAL covered every acked epoch.
#[test]
fn kill_and_resume_recovers_without_full_resyncs() {
    let (n_sites, n_micro, dims) = (2usize, 6usize, 2usize);
    let points: Vec<_> = (1..=300u64).map(|t| point(t, dims, 91)).collect();
    let reference = reference_maps(&points, n_sites, n_micro, dims);
    let base = temp_base("kill-resume");
    cleanup_base(&base);

    let coord = Coordinator::bind("127.0.0.1:0", durable_cfg(&base, 4)).unwrap();
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| Site::attach(site_engine(n_micro, dims), fast_cfg(i as u64, &addr, 20)).unwrap())
        .collect();

    let half = points.len() / 2;
    for (k, p) in points.iter().take(half).enumerate() {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    // Flush the dirty tails so every site is fully acked at the kill.
    for site in sites.iter_mut() {
        site.sync().unwrap();
    }

    let pre = coord.stats();
    assert!(pre.epochs_applied > 0, "epochs must land before the kill");
    assert!(
        pre.snapshots_written > 0,
        "the snapshot cadence must have fired"
    );
    coord.kill();

    // Resume on a NEW ephemeral port: the dead listener's port may sit in
    // TIME_WAIT, and failover is the supported path anyway.
    let coord = Coordinator::resume("127.0.0.1:0", durable_cfg(&base, 4)).unwrap();
    let addr2 = coord.addr().to_string();
    assert_ne!(addr, addr2, "ephemeral rebind must pick a fresh port");

    let stats = coord.stats();
    let rec = stats.recovery.clone().expect("resume must report recovery");
    assert_eq!(
        rec.snapshot_epochs + rec.wal_records_replayed,
        pre.epochs_applied,
        "snapshot ∪ WAL must cover exactly the epochs applied before the kill"
    );
    assert_eq!(rec.corrupt_generations_skipped, 0);
    assert!(!rec.wal_truncated, "clean kill leaves no torn tail");
    assert_eq!(
        stats.epochs_applied, pre.epochs_applied,
        "recovered epoch counter must match"
    );

    for site in sites.iter_mut() {
        site.repoint(&addr2).unwrap();
    }
    for (k, p) in points.iter().enumerate().skip(half) {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    let final_stats: Vec<_> = sites.into_iter().map(|s| s.finish().unwrap()).collect();

    assert_exact(&coord, &reference);
    let stats = coord.stats();
    assert_eq!(stats.total_points, points.len() as u64);
    assert_eq!(stats.gaps_nacked, 0, "recovery must leave no gaps to nack");
    for (i, st) in final_stats.iter().enumerate() {
        assert_eq!(
            st.full_resyncs, 0,
            "site {i} must ship a bounded delta tail, not a full resync"
        );
    }
    coord.shutdown();
    cleanup_base(&base);
}

/// A clean shutdown writes a final snapshot and truncates the WAL, so the
/// follow-up resume replays nothing and reproduces the merged view
/// bit-for-bit.
#[test]
fn clean_shutdown_then_resume_replays_nothing() {
    let (n_sites, n_micro, dims) = (2usize, 5usize, 2usize);
    let points: Vec<_> = (1..=160u64).map(|t| point(t, dims, 47)).collect();
    let base = temp_base("clean-shutdown");
    cleanup_base(&base);

    let coord = Coordinator::bind("127.0.0.1:0", durable_cfg(&base, 1000)).unwrap();
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| Site::attach(site_engine(n_micro, dims), fast_cfg(i as u64, &addr, 16)).unwrap())
        .collect();
    for (k, p) in points.iter().enumerate() {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    for site in sites {
        site.finish().unwrap();
    }

    let before = coord.global_clusters();
    let pre = coord.stats();
    assert!(
        pre.wal_records > 0,
        "with a lazy snapshot cadence the WAL must hold the epochs"
    );
    coord.shutdown(); // writes the final generation, truncates the WAL

    let coord = Coordinator::resume("127.0.0.1:0", durable_cfg(&base, 1000)).unwrap();
    let stats = coord.stats();
    let rec = stats.recovery.clone().unwrap();
    assert_eq!(
        rec.wal_records_replayed, 0,
        "a clean shutdown leaves an empty WAL"
    );
    assert_eq!(rec.snapshot_epochs, pre.epochs_applied);
    assert_eq!(coord.global_clusters(), before, "merged view must survive");
    assert_eq!(stats.total_points, pre.total_points);
    coord.shutdown();
    cleanup_base(&base);
}

/// When the newest snapshot generation is rotten, resume skips it,
/// *counts* it, recovers what the older generation + WAL still cover, and
/// the protocol's full-resync fallback converges the rest — degraded
/// cost, same exact answer.
#[test]
fn corrupt_newest_generation_falls_back_and_full_resync_converges() {
    let (n_sites, n_micro, dims) = (2usize, 5usize, 2usize);
    let points: Vec<_> = (1..=240u64).map(|t| point(t, dims, 63)).collect();
    let reference = reference_maps(&points, n_sites, n_micro, dims);
    let base = temp_base("rotten-gen");
    cleanup_base(&base);

    let coord = Coordinator::bind("127.0.0.1:0", durable_cfg(&base, 2)).unwrap();
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| Site::attach(site_engine(n_micro, dims), fast_cfg(i as u64, &addr, 16)).unwrap())
        .collect();
    let half = points.len() / 2;
    for (k, p) in points.iter().take(half).enumerate() {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    for site in sites.iter_mut() {
        site.sync().unwrap();
    }
    let pre = coord.stats();
    assert!(pre.snapshots_written >= 2, "need at least two generations");
    coord.kill();

    // Rot the newest generation (first manifest line is `slot seq`,
    // newest first) by flipping its final payload byte.
    let manifest = std::fs::read_to_string(format!("{base}.manifest")).unwrap();
    let newest_slot = manifest
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().next())
        .unwrap()
        .to_string();
    let gen_path = format!("{base}.{newest_slot}");
    let mut bytes = std::fs::read(&gen_path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&gen_path, bytes).unwrap();

    let coord = Coordinator::resume("127.0.0.1:0", durable_cfg(&base, 2)).unwrap();
    let addr2 = coord.addr().to_string();
    let rec = coord.stats().recovery.clone().unwrap();
    assert_eq!(
        rec.corrupt_generations_skipped, 1,
        "the rotten generation must be counted, not silently skipped"
    );

    for site in sites.iter_mut() {
        site.repoint(&addr2).unwrap();
    }
    for (k, p) in points.iter().enumerate().skip(half) {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    let final_stats: Vec<_> = sites.into_iter().map(|s| s.finish().unwrap()).collect();

    assert_exact(&coord, &reference);
    assert_eq!(coord.stats().total_points, points.len() as u64);
    assert!(
        final_stats.iter().any(|s| s.full_resyncs > 0),
        "losing the newest generation must engage the full-resync fallback"
    );
    coord.shutdown();
    cleanup_base(&base);
}

/// A failover attempt that dies mid-handshake must not eat the site's
/// delta state: the acked shadow map has to survive so a *later*
/// successful repoint still ships removals of clusters the coordinator
/// holds. The tiny `n_micro` forces constant eviction churn, so losing
/// the map would leave ghost clusters in the recovered view and break
/// the bit-for-bit assertion.
#[test]
fn failed_repoint_keeps_removals_flowing() {
    // Runaway geometric drift: every point lands far outside the
    // boundary of every retained cluster, so each insert mints a fresh
    // cluster id and LRU-evicts an old one — removals ship in every
    // epoch, which is exactly the traffic a lost shadow map can never
    // reproduce.
    fn churn_point(t: u64, dims: usize) -> UncertainPoint {
        let v = 1.5f64.powi(t as i32);
        UncertainPoint::new(vec![v; dims], vec![0.3; dims], t, None)
    }
    let (n_sites, n_micro, dims) = (2usize, 3usize, 2usize);
    let points: Vec<_> = (1..=300u64).map(|t| churn_point(t, dims)).collect();
    let reference = reference_maps(&points, n_sites, n_micro, dims);
    let base = temp_base("repoint-fail");
    cleanup_base(&base);

    let coord = Coordinator::bind("127.0.0.1:0", durable_cfg(&base, 4)).unwrap();
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| Site::attach(site_engine(n_micro, dims), fast_cfg(i as u64, &addr, 20)).unwrap())
        .collect();

    let half = points.len() / 2;
    for (k, p) in points.iter().take(half).enumerate() {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    for site in sites.iter_mut() {
        site.sync().unwrap();
    }
    coord.kill();

    // Keep clustering through the outage: the churny engines evict
    // clusters the dead coordinator still holds acked, so the eventual
    // recovery *must* ship removals for them — exactly what an eaten
    // shadow map can never do.
    let two_thirds = 2 * points.len() / 3;
    for (k, p) in points.iter().enumerate().take(two_thirds).skip(half) {
        sites[k % n_sites].push(p.clone()).unwrap();
    }

    let coord = Coordinator::resume("127.0.0.1:0", durable_cfg(&base, 4)).unwrap();
    let addr2 = coord.addr().to_string();
    for site in sites.iter_mut() {
        // First failover attempt targets a dead port and exhausts its
        // retries; the site must come through with its shadow map intact.
        let err = site.repoint("127.0.0.1:1").unwrap_err();
        assert!(
            matches!(err, UStreamError::RetriesExhausted { .. }),
            "unexpected repoint failure: {err:?}"
        );
        site.repoint(&addr2).unwrap();
    }
    for (k, p) in points.iter().enumerate().skip(two_thirds) {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    let final_stats: Vec<_> = sites.into_iter().map(|s| s.finish().unwrap()).collect();

    assert_exact(&coord, &reference);
    assert_eq!(coord.stats().total_points, points.len() as u64);
    for (i, st) in final_stats.iter().enumerate() {
        assert_eq!(
            st.full_resyncs, 0,
            "site {i}: a failed repoint followed by an exact recovery must \
             not degrade into a full resync"
        );
    }
    coord.shutdown();
    cleanup_base(&base);
}

/// A fresh (non-resume) durable start may not destroy a predecessor's
/// un-snapshotted WAL tail: bind refuses until the operator resumes (or
/// moves the WAL aside). After a clean shutdown truncates the WAL, a
/// fresh bind is allowed again.
#[test]
fn bind_refuses_non_empty_wal_until_resumed() {
    let base = temp_base("bind-refuse");
    cleanup_base(&base);
    let wal_path = format!("{base}.wal");
    let mut w = Wal::create(&wal_path).unwrap();
    w.append(&DeltaFrame {
        site: 0,
        seq: 1,
        full: true,
        updates: BTreeMap::new(),
        removes: Vec::new(),
        points: 0,
        last_tick: 1,
    })
    .unwrap();
    drop(w);

    let err = match Coordinator::bind("127.0.0.1:0", durable_cfg(&base, 4)) {
        Err(e) => e,
        Ok(_) => panic!("bind over a non-empty WAL must refuse"),
    };
    assert!(
        matches!(err, UStreamError::InvalidConfig(_)),
        "unexpected bind failure: {err:?}"
    );
    let replayed = wal::replay(&wal_path).unwrap();
    assert_eq!(replayed.records, 1, "the refusal must not touch the WAL");

    let coord = Coordinator::resume("127.0.0.1:0", durable_cfg(&base, 4)).unwrap();
    let rec = coord.stats().recovery.clone().unwrap();
    assert_eq!(rec.wal_records_replayed, 1);
    coord.shutdown(); // final snapshot + WAL truncation

    let coord = Coordinator::bind("127.0.0.1:0", durable_cfg(&base, 4)).unwrap();
    coord.shutdown();
    cleanup_base(&base);
}

mod torn_wal_prop {
    use super::*;
    use proptest::prelude::*;

    fn tiny_ecf(x: f64, t: u64) -> Ecf {
        Ecf::from_point(&UncertainPoint::new(
            vec![x, -x],
            vec![0.2, 0.4],
            t.max(1),
            None,
        ))
    }

    /// Per-site contiguous epochs 1..=k, interleaved across sites the way
    /// the coordinator would have appended them.
    fn arb_frames() -> impl Strategy<Value = Vec<DeltaFrame>> {
        (1usize..4, 2usize..14, 0u64..1_000_000).prop_map(|(n_sites, epochs, seed)| {
            let mut frames = Vec::new();
            for seq in 1..=epochs as u64 {
                for site in 0..n_sites as u64 {
                    let r = splitmix64(seed ^ (seq << 8) ^ site);
                    let updates: BTreeMap<u64, Ecf> = (0..1 + (r % 3))
                        .map(|i| (i, tiny_ecf((r % 97) as f64 + i as f64, seq)))
                        .collect();
                    frames.push(DeltaFrame {
                        site,
                        seq,
                        full: seq == 1,
                        updates,
                        removes: if seq > 2 { vec![0] } else { Vec::new() },
                        points: seq * 7 + site,
                        last_tick: seq,
                    });
                }
            }
            frames
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// For any WAL and any single corruption (truncation at a random
        /// byte, or one flipped bit), replay recovers exactly the records
        /// before the damage, physically truncates the file there, and a
        /// resume over that WAL applies each surviving epoch exactly once
        /// — never double-applied, never skipped.
        #[test]
        fn torn_wal_replays_the_exact_prefix_and_never_double_applies(
            frames in arb_frames(),
            cut_seed in 0usize..usize::MAX,
            flip in (0u8..2).prop_map(|b| b == 1),
        ) {
            let base = temp_base(&format!("torn-prop-{cut_seed}"));
            cleanup_base(&base);
            let wal_path = format!("{base}.wal");

            let mut w = Wal::create(&wal_path).unwrap();
            let mut ends = Vec::with_capacity(frames.len());
            for f in &frames {
                w.append(f).unwrap();
                ends.push(w.bytes() as usize);
            }
            let total = w.bytes() as usize;
            drop(w);

            // Corrupt at a random interior byte: everything at or past it
            // is unrecoverable, everything before it must survive.
            let cut = 1 + cut_seed % (total - 1);
            if flip {
                let mut bytes = std::fs::read(&wal_path).unwrap();
                bytes[cut] ^= 0x10;
                std::fs::write(&wal_path, bytes).unwrap();
            } else {
                let bytes = std::fs::read(&wal_path).unwrap();
                std::fs::write(&wal_path, &bytes[..cut]).unwrap();
            }
            let expect_survivors = ends.iter().filter(|e| **e <= cut).count();

            let replayed = wal::replay(&wal_path).unwrap();
            prop_assert_eq!(replayed.records as usize, expect_survivors);
            prop_assert_eq!(&replayed.frames[..], &frames[..expect_survivors]);
            prop_assert!(replayed.truncated || expect_survivors == frames.len());
            prop_assert_eq!(replayed.bytes as usize, ends.get(expect_survivors.wrapping_sub(1)).copied().unwrap_or(0));
            // The truncation is physical: a second replay is clean.
            let again = wal::replay(&wal_path).unwrap();
            prop_assert!(!again.truncated);
            prop_assert_eq!(again.records, replayed.records);

            // A resume over the truncated WAL (no snapshot) applies each
            // surviving epoch exactly once: per-site last_applied is the
            // max contiguous seq, and the epoch counter equals the record
            // count — a double-apply or a skip would break one of them.
            let coord = Coordinator::resume("127.0.0.1:0", durable_cfg(&base, 1_000_000)).unwrap();
            let stats = coord.stats();
            prop_assert_eq!(stats.epochs_applied, expect_survivors as u64);
            let mut per_site: BTreeMap<u64, u64> = BTreeMap::new();
            for f in &frames[..expect_survivors] {
                let e = per_site.entry(f.site).or_insert(0);
                prop_assert_eq!(f.seq, *e + 1, "test harness emitted a gap");
                *e = f.seq;
            }
            for h in &stats.sites {
                prop_assert_eq!(h.last_applied, per_site.get(&h.site).copied().unwrap_or(0));
            }
            coord.shutdown();
            cleanup_base(&base);
        }
    }
}
