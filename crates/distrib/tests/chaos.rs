//! Exactness under a hostile network: dropped, duplicated, reordered,
//! corrupted and delayed frames, per-site partitions, and a site that
//! crashes mid-stream and replays from its rotated checkpoint — after all
//! of it, the coordinator's per-site maps must still equal, bit for bit,
//! the per-shard maps of a single engine fed the interleaved stream.
//!
//! The failpoint registry is process-global, so every test here serialises
//! on one lock and resets the registry on entry and exit.

#![cfg(feature = "failpoints")]

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;
use umicro::{Ecf, UMicroConfig};
use ustream_common::backoff::splitmix64;
use ustream_common::UncertainPoint;
use ustream_distrib::{
    CheckpointPolicy, Coordinator, CoordinatorConfig, RetryPolicy, Site, SiteConfig,
};
use ustream_engine::{failpoints, EngineBuilder, StreamEngine};
use ustream_snapshot::{shard_of_id, SHARD_ID_BITS};

const LOCAL_MASK: u64 = (1u64 << SHARD_ID_BITS) - 1;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn point(t: u64, dims: usize, seed: u64) -> UncertainPoint {
    let values = (0..dims)
        .map(|d| {
            let r = splitmix64(seed ^ t.wrapping_mul(0x9e37_79b9) ^ ((d as u64) << 32));
            let centre = ((r >> 8) % 4) as f64 * 10.0;
            let noise = (r & 0xffff) as f64 / 65_536.0 - 0.5;
            centre + noise
        })
        .collect();
    UncertainPoint::new(values, vec![0.3; dims], t, None)
}

fn site_engine(n_micro: usize, dims: usize) -> StreamEngine {
    EngineBuilder::new(UMicroConfig::new(n_micro, dims).expect("valid site config"))
        .shards(1)
        .build()
        .expect("site engine boots")
}

fn reference_maps(
    points: &[UncertainPoint],
    n_sites: usize,
    n_micro: usize,
    dims: usize,
) -> Vec<BTreeMap<u64, Ecf>> {
    let engine = EngineBuilder::new(
        UMicroConfig::new(n_micro * n_sites, dims).expect("valid reference config"),
    )
    .shards(n_sites)
    .build()
    .expect("reference engine boots");
    for p in points {
        engine.push(p.clone()).expect("reference ingest");
    }
    engine.flush();
    let mut maps = vec![BTreeMap::new(); n_sites];
    for mc in engine.micro_clusters() {
        maps[shard_of_id(mc.id)].insert(mc.id & LOCAL_MASK, mc.ecf);
    }
    engine.shutdown();
    maps
}

/// Short deadlines and fast retries so dropped frames cost milliseconds,
/// not the default 5 s read deadline.
fn fast_cfg(site: u64, addr: &str, delta_every: u64) -> SiteConfig {
    let mut cfg = SiteConfig::new(site, addr);
    cfg.delta_every = delta_every;
    cfg.io_deadline = Duration::from_millis(400);
    cfg.retry = RetryPolicy {
        max_attempts: 8,
        base_backoff_ms: 2,
        max_backoff_ms: 40,
        seed: 0xc4a05,
    };
    cfg
}

fn temp_base(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("ustream-distrib-{tag}-{}.ckpt", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn cleanup_ckpt(base: &str) {
    for suffix in ["manifest", "0", "1", "2", "3", "tmp"] {
        let _ = std::fs::remove_file(format!("{base}.{suffix}"));
    }
}

fn assert_exact(coord: &Coordinator, reference: &[BTreeMap<u64, Ecf>]) {
    for (i, expected) in reference.iter().enumerate() {
        let got = coord.site_clusters(i as u64);
        assert_eq!(&got, expected, "site {i} diverged from shard {i}");
    }
}

#[test]
fn duplicated_frames_never_double_count() {
    let _g = FAULT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let (n_sites, n_micro, dims) = (2usize, 6usize, 2usize);
    let points: Vec<_> = (1..=240u64).map(|t| point(t, dims, 21)).collect();
    let reference = reference_maps(&points, n_sites, n_micro, dims);

    let coord = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).unwrap();
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| Site::attach(site_engine(n_micro, dims), fast_cfg(i as u64, &addr, 20)).unwrap())
        .collect();

    // Every epoch either side of this arming ships twice on the wire.
    failpoints::arm(failpoints::NET_DUP, 6);
    for (k, p) in points.iter().enumerate() {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    failpoints::reset_all();
    for site in sites {
        site.finish().unwrap();
    }

    let stats = coord.stats();
    assert!(
        stats.duplicates_dropped > 0,
        "the dup fault must actually reach the coordinator"
    );
    assert_exact(&coord, &reference);
    coord.shutdown();
}

#[test]
fn corrupt_and_dropped_frames_are_retried_to_exactness() {
    let _g = FAULT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let (n_sites, n_micro, dims) = (2usize, 6usize, 2usize);
    let points: Vec<_> = (1..=200u64).map(|t| point(t, dims, 33)).collect();
    let reference = reference_maps(&points, n_sites, n_micro, dims);

    let coord = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).unwrap();
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| Site::attach(site_engine(n_micro, dims), fast_cfg(i as u64, &addr, 25)).unwrap())
        .collect();

    // Staggered arming: an armed drop would swallow the corrupted frame
    // before it reached the wire (the injection ladder corrupts first,
    // then drops), so corruption runs alone in the first half.
    failpoints::arm(failpoints::NET_CORRUPT, 2);
    failpoints::arm(failpoints::NET_DELAY, 2);
    for (k, p) in points.iter().take(points.len() / 2).enumerate() {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    failpoints::arm(failpoints::NET_DROP, 2);
    failpoints::arm(failpoints::NET_REORDER, 1);
    for (k, p) in points.iter().enumerate().skip(points.len() / 2) {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    failpoints::reset_all();
    let site_stats: Vec<_> = sites.into_iter().map(|s| s.finish().unwrap()).collect();

    assert!(
        site_stats.iter().any(|s| s.send_retries > 0),
        "faults must force at least one retry"
    );
    let stats = coord.stats();
    assert!(
        stats.frames_rejected > 0,
        "the corrupt fault must be rejected at the codec"
    );
    assert_exact(&coord, &reference);
    coord.shutdown();
}

#[test]
fn a_partitioned_site_heals_and_converges() {
    let _g = FAULT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let (n_sites, n_micro, dims) = (2usize, 6usize, 2usize);
    let points: Vec<_> = (1..=240u64).map(|t| point(t, dims, 55)).collect();
    let reference = reference_maps(&points, n_sites, n_micro, dims);

    let coord = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).unwrap();
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| Site::attach(site_engine(n_micro, dims), fast_cfg(i as u64, &addr, 20)).unwrap())
        .collect();

    // More partition firings than one sync's retry budget: site 0's sync
    // exhausts its retries, keeps clustering, and ships later.
    failpoints::arm(&failpoints::net_partition(0), 12);
    for (k, p) in points.iter().enumerate() {
        sites[k % n_sites].push(p.clone()).unwrap();
    }
    failpoints::reset_all();
    let site_stats: Vec<_> = sites.into_iter().map(|s| s.finish().unwrap()).collect();

    assert!(
        site_stats[0].sync_failures > 0,
        "the partition must exhaust at least one sync's retries"
    );
    assert_eq!(site_stats[1].sync_failures, 0, "site 1 is unaffected");
    assert_exact(&coord, &reference);
    coord.shutdown();
}

#[test]
fn a_crashed_site_replays_from_its_checkpoint_without_double_counting() {
    let _g = FAULT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let (n_sites, n_micro, dims) = (2usize, 6usize, 2usize);
    let points: Vec<_> = (1..=300u64).map(|t| point(t, dims, 77)).collect();
    let reference = reference_maps(&points, n_sites, n_micro, dims);
    let base = temp_base("crash-replay");
    cleanup_ckpt(&base);

    let coord = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).unwrap();
    let addr = coord.addr().to_string();

    let ckpt = CheckpointPolicy {
        base: base.clone(),
        generations: 3,
        every_points: 40,
    };
    let mut cfg0 = fast_cfg(0, &addr, 30);
    cfg0.checkpoint = Some(ckpt.clone());
    let mut site0 = Site::attach(site_engine(n_micro, dims), cfg0.clone()).unwrap();
    let mut site1 = Site::attach(site_engine(n_micro, dims), fast_cfg(1, &addr, 30)).unwrap();

    let site0_points: Vec<_> = points.iter().step_by(n_sites).cloned().collect();
    let site1_points: Vec<_> = points.iter().skip(1).step_by(n_sites).cloned().collect();

    // Site 0 crashes after 110 of its 150 records — past two checkpoints
    // (40, 80) and past acked epochs the checkpoint does not cover.
    for p in &site0_points[..110] {
        site0.push(p.clone()).unwrap();
    }
    let applied_before_crash = coord.last_applied(0);
    assert!(
        applied_before_crash > 0,
        "epochs must land before the crash"
    );
    drop(site0);

    // Respawn: restore the newest readable generation, learn how much of
    // the sub-stream it covers, re-feed the tail. No double-count, no gap.
    let (mut site0, covered) = Site::resume(cfg0).unwrap();
    assert!(
        (80..=110).contains(&covered),
        "restored state must sit between the last checkpoint and the crash (got {covered})"
    );
    for p in &site0_points[covered as usize..] {
        site0.push(p.clone()).unwrap();
    }

    for p in &site1_points {
        site1.push(p.clone()).unwrap();
    }

    let s0 = site0.finish().unwrap();
    site1.finish().unwrap();
    assert!(
        s0.full_resyncs > 0 || applied_before_crash == 0,
        "the respawned site must have resynced with a full frame"
    );
    assert_exact(&coord, &reference);
    let stats = coord.stats();
    assert_eq!(stats.total_points, points.len() as u64);
    coord.shutdown();
    cleanup_ckpt(&base);
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    /// One randomised fault entry: arm `kind` with `count` firings after
    /// the `at`-th record of the interleaved stream.
    #[derive(Debug, Clone)]
    struct FaultArm {
        at: usize,
        kind: usize,
        count: u64,
    }

    fn fault_name(kind: usize, n_sites: usize) -> String {
        match kind {
            0 => failpoints::NET_DROP.to_string(),
            1 => failpoints::NET_DUP.to_string(),
            2 => failpoints::NET_REORDER.to_string(),
            3 => failpoints::NET_CORRUPT.to_string(),
            4 => failpoints::NET_DELAY.to_string(),
            k => failpoints::net_partition(((k - 5) % n_sites) as u64),
        }
    }

    fn arms() -> impl Strategy<Value = Vec<FaultArm>> {
        proptest::collection::vec(
            (0usize..400, 0usize..7, 1u64..4).prop_map(|(at, kind, count)| FaultArm {
                at,
                kind,
                count,
            }),
            0..6,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        /// The headline guarantee: for random streams, site counts, fault
        /// schedules and an optional site-0 crash-and-replay, the
        /// coordinator ends bit-for-bit equal to the single-node run.
        #[test]
        fn coordinator_is_exact_under_random_faults(
            seed in 0u64..1_000_000,
            n_sites in 1usize..4,
            n_points in 150usize..400,
            dims in 2usize..4,
            delta_every in (0usize..3).prop_map(|i| [16u64, 32, 64][i]),
            schedule in arms(),
            crash in (0u8..2).prop_map(|b| b == 1),
        ) {
            let _g = FAULT_LOCK.lock().unwrap();
            failpoints::reset_all();
            let n_micro = 6usize;
            let points: Vec<_> = (1..=n_points as u64).map(|t| point(t, dims, seed)).collect();
            let reference = reference_maps(&points, n_sites, n_micro, dims);
            let base = temp_base(&format!("prop-{seed}"));
            cleanup_ckpt(&base);

            let coord = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).unwrap();
            let addr = coord.addr().to_string();
            let every_points = 50u64;
            let mut sites: Vec<Option<Site>> = (0..n_sites)
                .map(|i| {
                    let mut cfg = fast_cfg(i as u64, &addr, delta_every);
                    if i == 0 {
                        cfg.checkpoint = Some(CheckpointPolicy {
                            base: base.clone(),
                            generations: 3,
                            every_points,
                        });
                    }
                    Some(Site::attach(site_engine(n_micro, dims), cfg).unwrap())
                })
                .collect();

            // Site 0 crashes a little past the midpoint, if it will have a
            // checkpoint to come back from.
            let site0_total = points.len().div_ceil(n_sites);
            let crash_at = (site0_total * 7 / 10).max(1);
            let do_crash = crash && (crash_at as u64) > every_points;

            let mut fed0 = 0usize;
            for (k, p) in points.iter().enumerate() {
                for f in &schedule {
                    if f.at == k {
                        failpoints::arm(&fault_name(f.kind, n_sites), f.count);
                    }
                }
                let i = k % n_sites;
                if let Some(site) = sites[i].as_mut() {
                    site.push(p.clone()).unwrap();
                }
                if i == 0 {
                    fed0 += 1;
                    if do_crash && fed0 == crash_at && sites[0].is_some() {
                        sites[0] = None; // crash: no finish, no final sync
                    }
                }
            }

            if do_crash {
                // Respawn site 0 with the network healed for its
                // handshake, then re-feed its tail.
                failpoints::reset_all();
                let mut cfg = fast_cfg(0, &addr, delta_every);
                cfg.checkpoint = Some(CheckpointPolicy {
                    base: base.clone(),
                    generations: 3,
                    every_points,
                });
                let (mut site0, covered) = Site::resume(cfg).unwrap();
                let site0_points: Vec<_> =
                    points.iter().step_by(n_sites).cloned().collect();
                prop_assert!((covered as usize) <= crash_at);
                for p in &site0_points[covered as usize..] {
                    site0.push(p.clone()).unwrap();
                }
                sites[0] = Some(site0);
            }

            // Heal the network and drain the final epochs.
            failpoints::reset_all();
            for site in sites.into_iter().flatten() {
                site.finish().unwrap();
            }

            for (i, expected) in reference.iter().enumerate() {
                let got = coord.site_clusters(i as u64);
                prop_assert_eq!(&got, expected, "site {} diverged", i);
            }
            let stats = coord.stats();
            prop_assert_eq!(stats.total_points, points.len() as u64);
            coord.shutdown();
            cleanup_ckpt(&base);
        }
    }
}
