//! Clean-network exactness: after a distributed run over TCP, the
//! coordinator's per-site maps equal — bit for bit — the per-shard maps of
//! a single sharded engine fed the same interleaved stream.
//!
//! Both deployments route records identically (site `i` receives the
//! records a single `n`-shard engine would round-robin to shard `i`, in
//! the same order), clustering is deterministic per shard, and deltas ship
//! whole ECFs (replace semantics), so equality is exact — no tolerance.

use std::collections::BTreeMap;
use std::time::Duration;
use umicro::{Ecf, UMicroConfig};
use ustream_common::backoff::splitmix64;
use ustream_common::UncertainPoint;
use ustream_distrib::{Coordinator, CoordinatorConfig, Site, SiteConfig};
use ustream_engine::{EngineBuilder, StreamEngine};
use ustream_snapshot::{shard_of_id, SHARD_ID_BITS};

const LOCAL_MASK: u64 = (1u64 << SHARD_ID_BITS) - 1;

/// Deterministic stream: a handful of well-separated centres plus noise.
fn point(t: u64, dims: usize, seed: u64) -> UncertainPoint {
    let values = (0..dims)
        .map(|d| {
            let r = splitmix64(seed ^ t.wrapping_mul(0x9e37_79b9) ^ ((d as u64) << 32));
            let centre = ((r >> 8) % 4) as f64 * 10.0;
            let noise = (r & 0xffff) as f64 / 65_536.0 - 0.5;
            centre + noise
        })
        .collect();
    UncertainPoint::new(values, vec![0.3; dims], t, None)
}

fn site_engine(n_micro: usize, dims: usize) -> StreamEngine {
    EngineBuilder::new(UMicroConfig::new(n_micro, dims).expect("valid site config"))
        .shards(1)
        .build()
        .expect("site engine boots")
}

/// The single-node ground truth: one engine with `n_sites` shards over the
/// interleaved stream; returns each shard's local-id cluster map.
fn reference_maps(
    points: &[UncertainPoint],
    n_sites: usize,
    n_micro: usize,
    dims: usize,
) -> Vec<BTreeMap<u64, Ecf>> {
    // The engine splits its budget across shards (`shard_n_micro`), so
    // matching an `n_micro`-per-site deployment takes `n_micro * n_sites`.
    let engine = EngineBuilder::new(
        UMicroConfig::new(n_micro * n_sites, dims).expect("valid reference config"),
    )
    .shards(n_sites)
    .build()
    .expect("reference engine boots");
    for p in points {
        engine.push(p.clone()).expect("reference ingest");
    }
    engine.flush();
    let mut maps = vec![BTreeMap::new(); n_sites];
    for mc in engine.micro_clusters() {
        maps[shard_of_id(mc.id)].insert(mc.id & LOCAL_MASK, mc.ecf);
    }
    engine.shutdown();
    maps
}

fn run_distributed(
    points: &[UncertainPoint],
    n_sites: usize,
    n_micro: usize,
    dims: usize,
    delta_every: u64,
) -> (Coordinator, Vec<ustream_distrib::SiteStats>) {
    let coord =
        Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).expect("coordinator binds");
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| {
            let mut cfg = SiteConfig::new(i as u64, &addr);
            cfg.delta_every = delta_every;
            cfg.io_deadline = Duration::from_secs(10);
            Site::attach(site_engine(n_micro, dims), cfg).expect("site attaches")
        })
        .collect();
    for (k, p) in points.iter().enumerate() {
        sites[k % n_sites].push(p.clone()).expect("site ingest");
    }
    let stats = sites
        .into_iter()
        .map(|s| s.finish().expect("final sync"))
        .collect::<Vec<_>>();
    (coord, stats)
}

#[test]
fn distributed_run_matches_single_node_bit_for_bit() {
    let (n_sites, n_micro, dims) = (4usize, 8usize, 3usize);
    let points: Vec<_> = (1..=800u64).map(|t| point(t, dims, 42)).collect();
    let reference = reference_maps(&points, n_sites, n_micro, dims);

    let (coord, site_stats) = run_distributed(&points, n_sites, n_micro, dims, 64);
    for (i, expected) in reference.iter().enumerate() {
        let got = coord.site_clusters(i as u64);
        assert_eq!(&got, expected, "site {i} diverged from shard {i}");
    }

    let stats = coord.stats();
    assert_eq!(stats.total_points, 800);
    assert_eq!(stats.duplicates_dropped, 0);
    assert_eq!(stats.gaps_nacked, 0);
    assert_eq!(stats.frames_rejected, 0);
    for s in &site_stats {
        assert_eq!(s.sync_failures, 0);
        assert_eq!(s.send_retries, 0);
    }

    // The merged global view is the disjoint union of the per-site maps.
    let global = coord.global_clusters();
    let expected_total: usize = reference.iter().map(BTreeMap::len).sum();
    assert_eq!(global.len(), expected_total);
    coord.shutdown();
}

#[test]
fn a_single_site_round_trips_every_cluster() {
    let (n_micro, dims) = (6usize, 2usize);
    let points: Vec<_> = (1..=300u64).map(|t| point(t, dims, 7)).collect();
    let reference = reference_maps(&points, 1, n_micro, dims);

    let (coord, _) = run_distributed(&points, 1, n_micro, dims, 50);
    assert_eq!(coord.site_clusters(0), reference[0]);
    coord.shutdown();
}

#[test]
fn deltas_ship_only_changed_clusters_after_the_first_epoch() {
    // A stream that settles: later epochs touch few clusters, so epochs
    // past the first must not re-ship the whole map.
    let dims = 2usize;
    let coord = Coordinator::bind("127.0.0.1:0", CoordinatorConfig::default()).unwrap();
    let addr = coord.addr().to_string();
    let mut cfg = SiteConfig::new(0, &addr);
    cfg.delta_every = u64::MAX; // manual syncs only
    let mut site = Site::attach(site_engine(8, dims), cfg).unwrap();

    for t in 1..=200u64 {
        site.push(point(t, dims, 11)).unwrap();
    }
    site.sync().unwrap();
    let after_first = site.stats().bytes_sent;

    // One more record lands in exactly one existing cluster.
    site.push(point(201, dims, 11)).unwrap();
    site.sync().unwrap();
    let second_epoch = site.stats().bytes_sent - after_first;
    assert!(
        second_epoch < after_first / 2,
        "incremental epoch shipped {second_epoch} bytes vs {after_first} for the full map"
    );

    // Nothing changed: no frame at all.
    let frames_before = site.stats().frames_sent;
    site.sync().unwrap();
    assert_eq!(site.stats().frames_sent, frames_before);
    coord.shutdown();
}

#[test]
fn coordinator_tracks_liveness_and_horizons() {
    let dims = 2usize;
    let ccfg = CoordinatorConfig {
        snapshot_every_epochs: 1,
        ..CoordinatorConfig::default()
    };
    let coord = Coordinator::bind("127.0.0.1:0", ccfg).unwrap();
    let addr = coord.addr().to_string();
    let mut cfg = SiteConfig::new(3, &addr);
    cfg.delta_every = 32;
    let mut site = Site::attach(site_engine(8, dims), cfg).unwrap();
    for t in 1..=128u64 {
        site.push(point(t, dims, 5)).unwrap();
    }
    site.finish().unwrap();

    let stats = coord.stats();
    assert_eq!(stats.sites.len(), 1);
    assert_eq!(stats.sites[0].site, 3);
    assert!(!stats.sites[0].suspect);
    assert_eq!(stats.sites[0].points, 128);

    // Pyramidal snapshots were recorded; a horizon inside the covered
    // span resolves (epochs landed at ticks 32, 64, 96, 128).
    let horizon = coord.horizon_clusters(64).unwrap();
    assert!(!horizon.clusters.is_empty());
    coord.shutdown();
}
