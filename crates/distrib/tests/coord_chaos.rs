//! Coordinator-kill chaos: the coordinator process "dies" at every armed
//! crash point — before the WAL append, after it but before the ack,
//! mid-WAL-write (torn record), and mid-snapshot (torn generation) — and
//! is resumed on a fresh port. After failover the run must still end
//! bit-for-bit equal to the single-node reference, including when the
//! kills are interleaved with the existing network fault arsenal.
//!
//! The failpoint registry is process-global, so every test here serialises
//! on one lock and resets the registry on entry and exit.

#![cfg(feature = "failpoints")]

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;
use umicro::{Ecf, UMicroConfig};
use ustream_common::backoff::splitmix64;
use ustream_common::UncertainPoint;
use ustream_distrib::{
    CoordRecovery, Coordinator, CoordinatorConfig, DurabilityPolicy, RetryPolicy, Site, SiteConfig,
};
use ustream_engine::{failpoints, EngineBuilder, StreamEngine};
use ustream_snapshot::{shard_of_id, SHARD_ID_BITS};

const LOCAL_MASK: u64 = (1u64 << SHARD_ID_BITS) - 1;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn point(t: u64, dims: usize, seed: u64) -> UncertainPoint {
    let values = (0..dims)
        .map(|d| {
            let r = splitmix64(seed ^ t.wrapping_mul(0x9e37_79b9) ^ ((d as u64) << 32));
            let centre = ((r >> 8) % 4) as f64 * 10.0;
            let noise = (r & 0xffff) as f64 / 65_536.0 - 0.5;
            centre + noise
        })
        .collect();
    UncertainPoint::new(values, vec![0.3; dims], t, None)
}

fn site_engine(n_micro: usize, dims: usize) -> StreamEngine {
    EngineBuilder::new(UMicroConfig::new(n_micro, dims).expect("valid site config"))
        .shards(1)
        .build()
        .expect("site engine boots")
}

fn reference_maps(
    points: &[UncertainPoint],
    n_sites: usize,
    n_micro: usize,
    dims: usize,
) -> Vec<BTreeMap<u64, Ecf>> {
    let engine = EngineBuilder::new(
        UMicroConfig::new(n_micro * n_sites, dims).expect("valid reference config"),
    )
    .shards(n_sites)
    .build()
    .expect("reference engine boots");
    for p in points {
        engine.push(p.clone()).expect("reference ingest");
    }
    engine.flush();
    let mut maps = vec![BTreeMap::new(); n_sites];
    for mc in engine.micro_clusters() {
        maps[shard_of_id(mc.id)].insert(mc.id & LOCAL_MASK, mc.ecf);
    }
    engine.shutdown();
    maps
}

fn fast_cfg(site: u64, addr: &str, delta_every: u64) -> SiteConfig {
    let mut cfg = SiteConfig::new(site, addr);
    cfg.delta_every = delta_every;
    cfg.io_deadline = Duration::from_millis(400);
    cfg.retry = RetryPolicy {
        max_attempts: 8,
        base_backoff_ms: 2,
        max_backoff_ms: 40,
        seed: 0xc0_0c4a5,
    };
    cfg
}

fn temp_base(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("ustream-cchaos-{tag}-{}.snap", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

fn cleanup_base(base: &str) {
    for suffix in ["manifest", "0", "1", "2", "3", "tmp", "wal"] {
        let _ = std::fs::remove_file(format!("{base}.{suffix}"));
    }
}

fn durable_cfg(base: &str, snapshot_every_epochs: u64) -> CoordinatorConfig {
    CoordinatorConfig {
        durability: Some(DurabilityPolicy {
            base: base.to_string(),
            generations: 3,
            snapshot_every_epochs,
        }),
        ..CoordinatorConfig::default()
    }
}

fn assert_exact(coord: &Coordinator, reference: &[BTreeMap<u64, Ecf>]) {
    for (i, expected) in reference.iter().enumerate() {
        let got = coord.site_clusters(i as u64);
        assert_eq!(&got, expected, "site {i} diverged from shard {i}");
    }
}

/// Drives one full stream through a crash at `arm_point`, resuming on a
/// fresh port halfway, and returns the recovery report plus the final
/// coordinator and site stats for the caller's extra assertions.
fn crash_and_resume_run(
    tag: &str,
    arm_point: &str,
    snapshot_every_epochs: u64,
) -> (CoordRecovery, Coordinator, Vec<ustream_distrib::SiteStats>) {
    let (n_sites, n_micro, dims) = (2usize, 6usize, 2usize);
    let points: Vec<_> = (1..=260u64)
        .map(|t| point(t, dims, 0x5eed ^ arm_point.len() as u64))
        .collect();
    let reference = reference_maps(&points, n_sites, n_micro, dims);
    let base = temp_base(tag);
    cleanup_base(&base);

    let coord = Coordinator::bind("127.0.0.1:0", durable_cfg(&base, snapshot_every_epochs))
        .expect("coordinator binds");
    let addr = coord.addr().to_string();
    let mut sites: Vec<Site> = (0..n_sites)
        .map(|i| {
            Site::attach(site_engine(n_micro, dims), fast_cfg(i as u64, &addr, 16))
                .expect("site attaches")
        })
        .collect();

    // Warm up: land a few clean epochs so the crash interrupts a stream
    // with durable history, not a cold start.
    let warm = points.len() / 3;
    for (k, p) in points.iter().take(warm).enumerate() {
        sites[k % n_sites].push(p.clone()).expect("site ingest");
    }
    for site in sites.iter_mut() {
        site.sync().expect("warm-up sync");
    }

    // Arm the crash, then force each site to ship: the first sync fires
    // the failpoint and the coordinator "dies" mid-request; the rest fail
    // fast against the dead listener. Sites swallow the failure and keep
    // their dirty state for the retry after failover.
    failpoints::arm(arm_point, 1);
    let two_thirds = 2 * points.len() / 3;
    for (k, p) in points.iter().enumerate().take(two_thirds).skip(warm) {
        sites[k % n_sites].push(p.clone()).expect("site ingest");
    }
    for site in sites.iter_mut() {
        let _ = site.sync(); // may fail: the coordinator is crashing
    }
    assert_eq!(
        failpoints::remaining(arm_point),
        0,
        "the armed crash point must actually fire"
    );
    coord.kill();

    let coord = Coordinator::resume("127.0.0.1:0", durable_cfg(&base, snapshot_every_epochs))
        .expect("coordinator resumes");
    let addr2 = coord.addr().to_string();
    let recovery = coord
        .stats()
        .recovery
        .clone()
        .expect("resume reports recovery");

    for site in sites.iter_mut() {
        site.repoint(&addr2).expect("site failover");
    }
    for (k, p) in points.iter().enumerate().skip(two_thirds) {
        sites[k % n_sites].push(p.clone()).expect("site ingest");
    }
    let site_stats: Vec<_> = sites
        .into_iter()
        .map(|s| s.finish().expect("final sync"))
        .collect();

    assert_exact(&coord, &reference);
    assert_eq!(coord.stats().total_points, points.len() as u64);
    cleanup_base(&base);
    (recovery, coord, site_stats)
}

/// Crash *before* the WAL append: the in-flight epoch was never durable
/// and never acked, so the site simply retries it after failover — no
/// full resync, no gap.
#[test]
fn crash_before_wal_append_is_retried_without_resync() {
    let _guard = FAULT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let (rec, coord, site_stats) =
        crash_and_resume_run("pre-wal", failpoints::COORD_CRASH_PRE_WAL, 8);
    assert!(!rec.wal_truncated, "nothing was mid-write at the crash");
    let stats = coord.shutdown();
    assert_eq!(stats.gaps_nacked, 0);
    for st in &site_stats {
        assert_eq!(st.full_resyncs, 0, "a never-acked epoch needs no resync");
    }
    failpoints::reset_all();
}

/// Crash *after* the WAL append but before the ack: the epoch is durable
/// on the coordinator while the site never saw the ack. Recovery replays
/// it from the WAL and the handshake moves the site past it — applied
/// exactly once, proven by the bit-for-bit final state.
#[test]
fn crash_after_wal_append_applies_the_epoch_exactly_once() {
    let _guard = FAULT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let (rec, coord, _) = crash_and_resume_run("post-wal", failpoints::COORD_CRASH_POST_WAL, 1000);
    assert!(
        rec.wal_records_replayed >= 1,
        "the durable-but-unacked epoch must come back from the WAL"
    );
    assert!(!rec.wal_truncated);
    let stats = coord.shutdown();
    assert!(
        stats.epochs_applied >= rec.snapshot_epochs + rec.wal_records_replayed,
        "recovered epochs stay applied"
    );
    failpoints::reset_all();
}

/// Crash mid-WAL-write: half a record lands. Replay must cut the torn
/// tail back to the last intact record, and the epoch it carried — never
/// acked, by the WAL-before-ack ordering — is retried by the site.
#[test]
fn torn_wal_write_is_cut_back_and_retried() {
    let _guard = FAULT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let (rec, coord, site_stats) =
        crash_and_resume_run("torn-wal", failpoints::COORD_WAL_TORN, 1000);
    assert!(rec.wal_truncated, "the torn tail must be detected");
    assert!(rec.wal_bytes_dropped > 0, "the half-record must be dropped");
    let stats = coord.shutdown();
    assert_eq!(stats.gaps_nacked, 0);
    for st in &site_stats {
        assert_eq!(
            st.full_resyncs, 0,
            "a torn epoch was never acked, so retry suffices"
        );
    }
    failpoints::reset_all();
}

/// Crash mid-snapshot: a half-written generation lands and the WAL is
/// *not* truncated. Recovery must skip (and count) the corrupt
/// generation and rebuild everything from the previous one plus the
/// intact WAL.
#[test]
fn torn_snapshot_is_skipped_and_wal_covers_the_gap() {
    let _guard = FAULT_LOCK.lock().unwrap();
    failpoints::reset_all();
    let (rec, coord, _) = crash_and_resume_run("torn-snap", failpoints::COORD_SNAPSHOT_TORN, 4);
    assert!(
        rec.corrupt_generations_skipped >= 1,
        "the half-written generation must be counted, not silently skipped"
    );
    assert!(
        rec.wal_records_replayed >= 1,
        "the untruncated WAL must carry the epochs past the last good snapshot"
    );
    coord.shutdown();
    failpoints::reset_all();
}

mod prop {
    use super::*;
    use proptest::prelude::*;

    /// One scheduled network fault: before record `at`, arm failpoint
    /// `kind` for `count` firings (same arsenal as `chaos.rs`).
    #[derive(Debug, Clone)]
    struct FaultArm {
        at: usize,
        kind: usize,
        count: u64,
    }

    fn fault_name(kind: usize, n_sites: usize) -> String {
        match kind {
            0 => failpoints::NET_DROP.to_string(),
            1 => failpoints::NET_DUP.to_string(),
            2 => failpoints::NET_REORDER.to_string(),
            3 => failpoints::NET_CORRUPT.to_string(),
            4 => failpoints::NET_DELAY.to_string(),
            k => failpoints::net_partition(((k - 5) % n_sites) as u64),
        }
    }

    fn arms() -> impl Strategy<Value = Vec<FaultArm>> {
        proptest::collection::vec(
            (0usize..260, 0usize..7, 1u64..4).prop_map(|(at, kind, count)| FaultArm {
                at,
                kind,
                count,
            }),
            0..5,
        )
    }

    /// Scheduled coordinator kills: before record `at`, crash via `mode`
    /// (0 = clean kill, 1-4 = one of the crash failpoints fired by a
    /// forced sync), then resume on a fresh port and fail the sites over.
    fn kills() -> impl Strategy<Value = Vec<(usize, u8)>> {
        proptest::collection::vec((20usize..240, 0u8..5), 1..3)
    }

    fn crash_point(mode: u8) -> &'static str {
        match mode {
            1 => failpoints::COORD_CRASH_PRE_WAL,
            2 => failpoints::COORD_CRASH_POST_WAL,
            3 => failpoints::COORD_WAL_TORN,
            _ => failpoints::COORD_SNAPSHOT_TORN,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Random coordinator kills at random stream positions — through
        /// any of the crash points — mixed with random network faults:
        /// after every failover the finished run equals the single-node
        /// reference bit for bit and no record is lost or double-counted.
        #[test]
        fn exact_under_random_coordinator_kills_and_network_faults(
            seed in 0u64..1_000_000,
            n_sites in 1usize..4,
            faults in arms(),
            kill_plan in kills(),
        ) {
            let _guard = FAULT_LOCK.lock().unwrap();
            failpoints::reset_all();
            let (n_micro, dims) = (5usize, 2usize);
            let points: Vec<_> = (1..=260u64).map(|t| point(t, dims, seed)).collect();
            let reference = reference_maps(&points, n_sites, n_micro, dims);
            let base = temp_base(&format!("prop-{seed}"));
            cleanup_base(&base);

            let mut kills: Vec<(usize, u8)> = kill_plan;
            kills.sort_unstable();
            kills.dedup_by_key(|k| k.0);

            let mut coord =
                Coordinator::bind("127.0.0.1:0", durable_cfg(&base, 8)).unwrap();
            let addr = coord.addr().to_string();
            let mut sites: Vec<Site> = (0..n_sites)
                .map(|i| {
                    Site::attach(site_engine(n_micro, dims), fast_cfg(i as u64, &addr, 12))
                        .unwrap()
                })
                .collect();

            for (k, p) in points.iter().enumerate() {
                for f in faults.iter().filter(|f| f.at == k) {
                    failpoints::arm(&fault_name(f.kind, n_sites), f.count);
                }
                if let Some(&(_, mode)) = kills.iter().find(|kill| kill.0 == k) {
                    if mode > 0 {
                        // Crash mid-request: arm the point and force a
                        // ship so it fires; if nothing was dirty the kill
                        // below covers it anyway.
                        failpoints::arm(crash_point(mode), 1);
                        for site in sites.iter_mut() {
                            let _ = site.sync();
                        }
                    }
                    coord.kill();
                    // Clear unfired crash arms (and any stale net faults)
                    // so the resumed coordinator starts clean.
                    failpoints::reset_all();
                    coord = Coordinator::resume("127.0.0.1:0", durable_cfg(&base, 8))
                        .unwrap();
                    prop_assert!(coord.stats().recovery.is_some());
                    let addr2 = coord.addr().to_string();
                    for site in sites.iter_mut() {
                        site.repoint(&addr2).expect("site failover");
                    }
                }
                sites[k % n_sites].push(p.clone()).expect("site ingest");
            }
            failpoints::reset_all(); // drop partitions so the tails flush
            for site in sites {
                site.finish().unwrap();
            }

            assert_exact(&coord, &reference);
            let stats = coord.shutdown();
            prop_assert_eq!(stats.total_points, points.len() as u64);
            cleanup_base(&base);
        }
    }
}
