//! The CluStream online micro-clustering phase (VLDB'03 §3).
//!
//! Maintenance per arriving point:
//!
//! 1. find the nearest micro-cluster centroid by Euclidean distance;
//! 2. absorb the point if it lies within the cluster's *maximal boundary* —
//!    a factor `t` of the RMS deviation of the cluster's points about the
//!    centroid (singletons use the distance to the nearest other cluster);
//! 3. otherwise create a singleton micro-cluster and restore the budget by
//!    **deleting** the cluster with the oldest relevance stamp if it is
//!    older than `δ` ticks, or else **merging** the two closest clusters.

use crate::feature::CfVector;
use crate::macrocluster::{macro_cluster_cfs, MacroClustering};
use serde::{Deserialize, Serialize};
use umicro::kernel::ClusterKernel;
use ustream_common::point::sq_euclidean;
use ustream_common::{AdditiveFeature, Result, Timestamp, UStreamError, UncertainPoint};
use ustream_snapshot::ClusterSetSnapshot;

/// CluStream configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CluStreamConfig {
    /// Micro-cluster budget.
    pub n_micro: usize,
    /// Stream dimensionality.
    pub dims: usize,
    /// Maximal-boundary factor `t` on the RMS deviation (VLDB'03 uses 2).
    pub boundary_factor: f64,
    /// Relevance-stamp sample size `m`.
    pub m: usize,
    /// Staleness threshold `δ` in ticks: a cluster may be deleted when its
    /// relevance stamp is older than `now − δ`.
    pub delta: u64,
}

impl CluStreamConfig {
    /// Validated constructor with the original paper's defaults
    /// (`t = 2`, `m = 100`, `δ = 512`).
    pub fn new(n_micro: usize, dims: usize) -> Result<Self> {
        let cfg = Self {
            n_micro,
            dims,
            boundary_factor: 2.0,
            m: 100,
            delta: 512,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks parameter domains.
    pub fn validate(&self) -> Result<()> {
        if self.n_micro == 0 {
            return Err(UStreamError::InvalidConfig("n_micro must be >= 1".into()));
        }
        if self.dims == 0 {
            return Err(UStreamError::InvalidConfig("dims must be >= 1".into()));
        }
        if !(self.boundary_factor.is_finite() && self.boundary_factor > 0.0) {
            return Err(UStreamError::InvalidConfig(format!(
                "boundary_factor must be positive, got {}",
                self.boundary_factor
            )));
        }
        if self.m == 0 {
            return Err(UStreamError::InvalidConfig("m must be >= 1".into()));
        }
        Ok(())
    }
}

/// A live deterministic micro-cluster.
#[derive(Debug, Clone)]
pub struct CluMicroCluster {
    /// Stable id; merged clusters keep the id of the larger participant and
    /// record the other in `merged_ids`.
    pub id: u64,
    /// Ids of clusters merged into this one (the VLDB'03 "idlist").
    pub merged_ids: Vec<u64>,
    /// The feature vector.
    pub cf: CfVector,
}

/// Outcome of a CluStream insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CluStreamInsert {
    /// Id of the micro-cluster that received the point.
    pub cluster_id: u64,
    /// Whether a new micro-cluster was created for the point.
    pub created: bool,
    /// Id of a deleted stale cluster, if deletion restored the budget.
    pub deleted: Option<u64>,
    /// Ids `(survivor, absorbed)` if a merge restored the budget.
    pub merged: Option<(u64, u64)>,
}

/// The CluStream online algorithm.
#[derive(Debug, Clone)]
pub struct CluStream {
    config: CluStreamConfig,
    clusters: Vec<CluMicroCluster>,
    next_id: u64,
    inserted: u64,
    /// SoA mirror of `clusters` (zero noise rows) serving nearest-centroid
    /// ranking, closest-pair merges and cached RMS radii.
    kernel: ClusterKernel,
    kernel_stale: bool,
    kernel_enabled: bool,
}

impl CluStream {
    /// Creates the algorithm with a validated configuration.
    pub fn new(config: CluStreamConfig) -> Self {
        config
            .validate()
            // lint:allow(hot-panic): constructor contract — fails fast at setup, never on the stream path
            .expect("CluStreamConfig must be validated before use");
        let dims = config.dims;
        Self {
            config,
            clusters: Vec::new(),
            next_id: 0,
            inserted: 0,
            kernel: ClusterKernel::new(dims),
            kernel_stale: false,
            kernel_enabled: true,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &CluStreamConfig {
        &self.config
    }

    /// Points processed so far.
    pub fn points_processed(&self) -> u64 {
        self.inserted
    }

    /// The live micro-clusters.
    pub fn micro_clusters(&self) -> &[CluMicroCluster] {
        &self.clusters
    }

    /// Toggles the SoA distance kernel at runtime (benches use this to
    /// isolate its contribution); re-enabling rebuilds at the next insert.
    pub fn set_kernel_enabled(&mut self, enabled: bool) {
        self.kernel_enabled = enabled;
        self.kernel_stale = true;
    }

    /// Opts the kernel's centroid ranking into the f32 pre-scan mode;
    /// the winner stays bit-identical to the pure-f64 scan.
    pub fn set_f32_rank(&mut self, enabled: bool) {
        self.kernel.set_f32_rank(enabled);
    }

    /// The kernel, synchronised with the live cluster set — rebuilds first
    /// when stale. Row `i` mirrors `micro_clusters()[i]`.
    pub fn kernel_synced(&mut self) -> &ClusterKernel {
        if self.kernel_stale {
            self.sync_kernel();
        }
        &self.kernel
    }

    /// Processes one stream point (error vector ignored).
    pub fn insert(&mut self, point: &UncertainPoint) -> CluStreamInsert {
        debug_assert_eq!(point.dims(), self.config.dims);
        self.inserted += 1;
        let now = point.timestamp();
        if self.kernel_enabled && self.kernel_stale {
            self.sync_kernel();
        }

        // Bootstrap: fill the budget with singleton seeds (the VLDB'03
        // paper seeds its micro-clusters with an offline k-means over the
        // first InitNumber points; spreading singletons achieves the same
        // tiling online and keeps the comparison with UMicro symmetric).
        if self.clusters.len() < self.config.n_micro {
            let id = self.create_cluster(point);
            return CluStreamInsert {
                cluster_id: id,
                created: true,
                deleted: None,
                merged: None,
            };
        }

        // Nearest centroid by plain Euclidean distance — cached kernel rows
        // when live, the per-CF scalar loop otherwise.
        let (best, d2) = if self.kernel_live() {
            self.kernel
                .nearest_deterministic(point.values())
                // lint:allow(hot-panic): insert() seeds a cluster before any nearest scan
                .expect("non-empty cluster list")
        } else {
            self.clusters
                .iter()
                .enumerate()
                .map(|(i, c)| (i, c.cf.sq_distance_to(point.values())))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                // lint:allow(hot-panic): insert() seeds a cluster before any nearest scan
                .expect("non-empty cluster list")
        };

        // Maximal boundary: t × RMS deviation; singletons borrow the
        // distance to the nearest other cluster.
        let radius = if self.kernel_live() {
            self.kernel.uncertain_radius(best)
        } else {
            self.clusters[best].cf.rms_radius()
        };
        let boundary = if self.clusters[best].cf.n() > 1.0 && radius > 1e-9 {
            self.config.boundary_factor * radius
        } else if self.clusters.len() > 1 {
            self.nearest_other_centroid_sq(best).sqrt()
        } else {
            // Lone degenerate cluster: no radius and no neighbour to borrow
            // a boundary from — split so the stream can bootstrap structure.
            0.0
        };

        if d2.sqrt() <= boundary {
            self.clusters[best].cf.insert(point);
            let cluster_id = self.clusters[best].id;
            if self.kernel_live() {
                self.kernel.refresh(best, &self.clusters[best].cf);
            } else {
                self.kernel_stale = true;
            }
            return CluStreamInsert {
                cluster_id,
                created: false,
                deleted: None,
                merged: None,
            };
        }

        let id = self.create_cluster(point);
        let (deleted, merged) = self.restore_budget(now, id);
        CluStreamInsert {
            cluster_id: id,
            created: true,
            deleted,
            merged,
        }
    }

    /// Processes a mini-batch of stream points, appending one outcome per
    /// point to `out`; any pending kernel rebuild is paid once per block.
    pub fn insert_batch(&mut self, points: &[UncertainPoint], out: &mut Vec<CluStreamInsert>) {
        out.reserve(points.len());
        if self.kernel_enabled && self.kernel_stale {
            self.sync_kernel();
        }
        for p in points {
            out.push(self.insert(p));
        }
    }

    /// Offline initialisation, as in VLDB'03: "the initial micro-clusters
    /// are created using an offline process … a standard k-means algorithm
    /// on the first `InitNumber` points". Runs weighted k-means with
    /// `k = n_micro` over the buffered points and seeds one micro-cluster
    /// per non-empty k-means cluster.
    ///
    /// # Panics
    /// Panics if called after streaming has begun (micro-clusters exist).
    pub fn seed_with_kmeans(&mut self, init_points: &[UncertainPoint], seed: u64) {
        assert!(
            self.clusters.is_empty(),
            "seed_with_kmeans must run before any insertions"
        );
        if init_points.is_empty() {
            return;
        }
        let dpoints: Vec<ustream_common::DeterministicPoint> =
            init_points.iter().map(Into::into).collect();
        let res = ustream_kmeans::kmeans(
            &dpoints,
            &ustream_kmeans::KMeansConfig::new(self.config.n_micro, seed),
        );
        let mut features: Vec<Option<CfVector>> = vec![None; res.centroids.len()];
        for (p, &a) in init_points.iter().zip(&res.assignments) {
            features[a]
                .get_or_insert_with(|| CfVector::empty(self.config.dims))
                .insert(p);
        }
        for cf in features.into_iter().flatten() {
            let id = self.next_id;
            self.next_id += 1;
            self.clusters.push(CluMicroCluster {
                id,
                merged_ids: Vec::new(),
                cf,
            });
        }
        self.inserted += init_points.len() as u64;
        // Seeding bypassed the incremental kernel updates.
        self.kernel_stale = true;
    }

    /// Snapshot keyed by stable id, for pyramidal storage.
    pub fn snapshot(&self) -> ClusterSetSnapshot<CfVector> {
        ClusterSetSnapshot::from_pairs(self.clusters.iter().map(|c| (c.id, c.cf.clone())))
    }

    /// Offline macro-clustering over the live micro-clusters.
    pub fn macro_cluster(&self, k: usize, seed: u64) -> MacroClustering {
        macro_cluster_cfs(self.clusters.iter().map(|c| (c.id, &c.cf)), k, seed)
    }

    // --- internals -------------------------------------------------------

    /// Whether kernel rows may be consulted and incrementally maintained.
    #[inline]
    fn kernel_live(&self) -> bool {
        self.kernel_enabled && !self.kernel_stale
    }

    /// Rebuilds the kernel mirror from the live cluster set.
    fn sync_kernel(&mut self) {
        self.kernel.rebuild(self.clusters.iter().map(|c| &c.cf));
        self.kernel_stale = false;
    }

    fn create_cluster(&mut self, point: &UncertainPoint) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let cf = CfVector::from_point(point);
        if self.kernel_live() {
            self.kernel.push(&cf);
        } else {
            self.kernel_stale = true;
        }
        self.clusters.push(CluMicroCluster {
            id,
            merged_ids: Vec::new(),
            cf,
        });
        id
    }

    /// Deletes a stale cluster or merges the closest pair to return to the
    /// budget. The freshly created cluster (`protect`) is exempt from
    /// deletion (but may participate in a merge as the survivor).
    fn restore_budget(
        &mut self,
        now: Timestamp,
        protect: u64,
    ) -> (Option<u64>, Option<(u64, u64)>) {
        if self.clusters.len() <= self.config.n_micro {
            return (None, None);
        }

        // 1. Try deleting the cluster with the oldest relevance stamp.
        let threshold = now.saturating_sub(self.config.delta) as f64;
        let stale = self
            .clusters
            .iter()
            .enumerate()
            .filter(|(_, c)| c.id != protect)
            .map(|(i, c)| (i, c.cf.relevance_stamp(self.config.m)))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((idx, stamp)) = stale {
            if stamp < threshold {
                let victim = self.clusters.swap_remove(idx);
                if self.kernel_live() {
                    self.kernel.swap_remove(idx);
                } else {
                    self.kernel_stale = true;
                }
                return (Some(victim.id), None);
            }
        }

        // 2. Merge the two closest micro-clusters — from cached kernel rows
        // when live (no centroid allocations), the scalar O(k²·d) sweep
        // otherwise.
        let (i, j) = if self.kernel_live() {
            let (i, j, _) = self
                .kernel
                .closest_pair()
                // lint:allow(hot-panic): only reached when clusters.len() exceeds the budget (>= 2)
                .expect("budget overflow implies at least two clusters");
            (i, j)
        } else {
            let mut best_pair = (0usize, 1usize);
            let mut best_d = f64::INFINITY;
            let centroids: Vec<Vec<f64>> = self.clusters.iter().map(|c| c.cf.centroid()).collect();
            for i in 0..self.clusters.len() {
                for j in (i + 1)..self.clusters.len() {
                    let d = sq_euclidean(&centroids[i], &centroids[j]);
                    if d < best_d {
                        best_d = d;
                        best_pair = (i, j);
                    }
                }
            }
            best_pair
        };
        // Survivor = larger cluster; keeps its id and records the other's.
        let (survivor_idx, absorbed_idx) = if self.clusters[i].cf.n() >= self.clusters[j].cf.n() {
            (i, j)
        } else {
            (j, i)
        };
        let absorbed = self.clusters.swap_remove(absorbed_idx);
        if self.kernel_live() {
            self.kernel.swap_remove(absorbed_idx);
        } else {
            self.kernel_stale = true;
        }
        // swap_remove may have moved the survivor.
        let survivor_idx = if survivor_idx == self.clusters.len() {
            absorbed_idx
        } else {
            survivor_idx
        };
        let survivor = &mut self.clusters[survivor_idx];
        survivor.cf.merge(&absorbed.cf);
        survivor.merged_ids.push(absorbed.id);
        survivor.merged_ids.extend(absorbed.merged_ids);
        let (survivor_id, absorbed_id) = (survivor.id, absorbed.id);
        if self.kernel_live() {
            self.kernel
                .refresh(survivor_idx, &self.clusters[survivor_idx].cf);
        }
        (None, Some((survivor_id, absorbed_id)))
    }

    fn nearest_other_centroid_sq(&self, idx: usize) -> f64 {
        if self.kernel_live() {
            return self
                .kernel
                .nearest_other_centroid_sq(idx)
                .unwrap_or(f64::INFINITY);
        }
        // Scalar fallback: two reusable buffers instead of one fresh `Vec`
        // per cluster visited.
        let mut me = vec![0.0; self.config.dims];
        self.clusters[idx].cf.centroid_into(&mut me);
        let mut other = vec![0.0; self.config.dims];
        let mut best = f64::INFINITY;
        for (i, c) in self.clusters.iter().enumerate() {
            if i == idx {
                continue;
            }
            c.cf.centroid_into(&mut other);
            let d = sq_euclidean(&me, &other);
            if d < best {
                best = d;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(values: &[f64], t: Timestamp) -> UncertainPoint {
        UncertainPoint::certain(values.to_vec(), t, None)
    }

    fn config(n: usize, d: usize) -> CluStreamConfig {
        CluStreamConfig::new(n, d).unwrap()
    }

    #[test]
    fn validates_config() {
        assert!(CluStreamConfig::new(0, 2).is_err());
        assert!(CluStreamConfig::new(2, 0).is_err());
        let mut c = config(2, 2);
        c.boundary_factor = -1.0;
        assert!(c.validate().is_err());
        c.boundary_factor = 2.0;
        c.m = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn first_point_seeds() {
        let mut alg = CluStream::new(config(4, 2));
        let out = alg.insert(&pt(&[1.0, 1.0], 1));
        assert!(out.created);
        assert_eq!(alg.micro_clusters().len(), 1);
    }

    #[test]
    fn near_points_absorb_far_points_split() {
        let mut alg = CluStream::new(config(2, 1));
        // Bootstrap fills the budget with singleton seeds.
        assert!(alg.insert(&pt(&[0.0], 1)).created);
        assert!(alg.insert(&pt(&[0.5], 2)).created);
        // Singleton boundary is the distance to the nearest other cluster
        // (0.5), so 0.25 absorbs.
        let out = alg.insert(&pt(&[0.25], 3));
        assert!(!out.created);
        // A far point splits; with nothing stale, the closest pair merges
        // to restore the budget.
        let out = alg.insert(&pt(&[100.0], 4));
        assert!(out.created);
        assert!(out.merged.is_some());
        assert_eq!(alg.micro_clusters().len(), 2);
    }

    #[test]
    fn bootstrap_fills_budget_with_singletons() {
        let mut alg = CluStream::new(config(3, 1));
        for t in 1..=3u64 {
            assert!(alg.insert(&pt(&[0.0], t)).created);
        }
        assert_eq!(alg.micro_clusters().len(), 3);
    }

    #[test]
    fn stale_cluster_deleted_when_budget_exceeded() {
        let mut cfg = config(2, 1);
        cfg.delta = 10;
        let mut alg = CluStream::new(cfg);
        alg.insert(&pt(&[0.0], 1)); // cluster A, stale by t=100
        alg.insert(&pt(&[100.0], 99));
        // 250 is farther from B (150) than B's borrowed boundary (100), so a
        // third cluster is created and the budget must be restored.
        let out = alg.insert(&pt(&[250.0], 100));
        assert!(out.created);
        assert_eq!(out.deleted, Some(0), "stale cluster A should be deleted");
        assert_eq!(out.merged, None);
        assert_eq!(alg.micro_clusters().len(), 2);
    }

    #[test]
    fn closest_pair_merged_when_nothing_stale() {
        let mut cfg = config(2, 1);
        cfg.delta = 1_000_000; // nothing is ever stale.
        let mut alg = CluStream::new(cfg);
        alg.insert(&pt(&[0.0], 1));
        alg.insert(&pt(&[1.0], 2));
        // Budget exceeded; clusters at 0 and 1 are closest → merged.
        let out = alg.insert(&pt(&[500.0], 3));
        assert!(out.created);
        assert!(out.deleted.is_none());
        let (survivor, absorbed) = out.merged.expect("merge expected");
        assert!(survivor < 2 && absorbed < 2 && survivor != absorbed);
        assert_eq!(alg.micro_clusters().len(), 2);
        // The merged cluster recorded its absorbed id.
        let merged_cluster = alg
            .micro_clusters()
            .iter()
            .find(|c| c.id == survivor)
            .unwrap();
        assert_eq!(merged_cluster.merged_ids, vec![absorbed]);
        assert_eq!(merged_cluster.cf.n(), 2.0);
    }

    #[test]
    fn budget_never_exceeded() {
        let mut alg = CluStream::new(config(3, 1));
        for i in 0..200u64 {
            alg.insert(&pt(&[(i % 17) as f64 * 100.0], i));
            assert!(alg.micro_clusters().len() <= 3);
        }
    }

    #[test]
    fn two_blobs_separate() {
        let mut alg = CluStream::new(config(10, 2));
        for i in 0..100u64 {
            let (x, y) = if i % 2 == 0 { (0.0, 0.0) } else { (50.0, 50.0) };
            let w = (i % 7) as f64 * 0.1;
            alg.insert(&pt(&[x + w, y - w], i));
        }
        for c in alg.micro_clusters() {
            let cen = c.cf.centroid();
            assert!(
                cen[0] < 10.0 || cen[0] > 40.0,
                "cluster straddles blobs: {cen:?}"
            );
        }
    }

    #[test]
    fn snapshot_and_macro() {
        let mut alg = CluStream::new(config(10, 2));
        for i in 0..60u64 {
            let (x, y) = if i % 2 == 0 { (0.0, 0.0) } else { (30.0, 0.0) };
            alg.insert(&pt(&[x + (i % 5) as f64 * 0.1, y], i));
        }
        let snap = alg.snapshot();
        assert_eq!(snap.len(), alg.micro_clusters().len());
        let mac = alg.macro_cluster(2, 3);
        assert_eq!(mac.k(), 2);
    }

    #[test]
    fn kmeans_seeding_creates_clusters() {
        let mut alg = CluStream::new(config(4, 2));
        let init: Vec<UncertainPoint> = (0..40)
            .map(|i| {
                let (x, y) = match i % 4 {
                    0 => (0.0, 0.0),
                    1 => (10.0, 0.0),
                    2 => (0.0, 10.0),
                    _ => (10.0, 10.0),
                };
                let w = (i / 4) as f64 * 0.02;
                pt(&[x + w, y - w], i as u64)
            })
            .collect();
        alg.seed_with_kmeans(&init, 7);
        assert_eq!(alg.micro_clusters().len(), 4);
        assert_eq!(alg.points_processed(), 40);
        let total: f64 = alg.micro_clusters().iter().map(|c| c.cf.n()).sum();
        assert!((total - 40.0).abs() < 1e-9);
        // Streaming continues normally after seeding.
        let out = alg.insert(&pt(&[0.05, 0.05], 100));
        assert!(!out.created, "point near a seeded cluster should absorb");
    }

    #[test]
    fn kmeans_seeding_empty_is_noop() {
        let mut alg = CluStream::new(config(4, 2));
        alg.seed_with_kmeans(&[], 7);
        assert!(alg.micro_clusters().is_empty());
    }

    #[test]
    #[should_panic(expected = "before any insertions")]
    fn kmeans_seeding_after_stream_panics() {
        let mut alg = CluStream::new(config(4, 2));
        alg.insert(&pt(&[0.0, 0.0], 1));
        alg.seed_with_kmeans(&[pt(&[1.0, 1.0], 2)], 7);
    }

    #[test]
    fn processed_counter() {
        let mut alg = CluStream::new(config(4, 1));
        for i in 0..17u64 {
            alg.insert(&pt(&[i as f64], i));
        }
        assert_eq!(alg.points_processed(), 17);
    }
}
