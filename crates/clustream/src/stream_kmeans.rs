//! The STREAM baseline (O'Callaghan, Meyerson, Motwani, Mishra & Guha,
//! *Streaming-Data Algorithms for High-Quality Clustering*, ICDE 2002) —
//! reference \[6\] of both the CluStream and UMicro papers.
//!
//! STREAM processes the stream in chunks. Each chunk of `m` points is
//! clustered into `k` weighted representatives (we use k-means in place of
//! the LSEARCH facility-location routine; the framework is identical). The
//! representatives accumulate at level 1; whenever a level holds `m`
//! representatives they are themselves clustered into `k` level-`i+1`
//! representatives, giving a logarithmic-memory hierarchy. Querying clusters
//! runs a final k-means over every retained representative.

use ustream_common::{DeterministicPoint, Result, UStreamError, UncertainPoint};
use ustream_kmeans::{kmeans, KMeansConfig, KMeansResult};

/// STREAM configuration.
#[derive(Debug, Clone)]
pub struct StreamKMeansConfig {
    /// Number of clusters `k` produced per chunk and at query time.
    pub k: usize,
    /// Chunk size `m` (also the per-level representative budget).
    pub chunk_size: usize,
    /// Stream dimensionality.
    pub dims: usize,
    /// RNG seed for the per-chunk k-means.
    pub seed: u64,
}

impl StreamKMeansConfig {
    /// Validated constructor.
    pub fn new(k: usize, chunk_size: usize, dims: usize, seed: u64) -> Result<Self> {
        if k == 0 {
            return Err(UStreamError::InvalidConfig("k must be >= 1".into()));
        }
        if chunk_size <= k {
            return Err(UStreamError::InvalidConfig(format!(
                "chunk_size ({chunk_size}) must exceed k ({k})"
            )));
        }
        if dims == 0 {
            return Err(UStreamError::InvalidConfig("dims must be >= 1".into()));
        }
        Ok(Self {
            k,
            chunk_size,
            dims,
            seed,
        })
    }
}

/// The STREAM algorithm.
#[derive(Debug, Clone)]
pub struct StreamKMeans {
    config: StreamKMeansConfig,
    buffer: Vec<DeterministicPoint>,
    /// `levels[i]` holds the weighted representatives of level `i + 1`.
    levels: Vec<Vec<DeterministicPoint>>,
    processed: u64,
    chunk_counter: u64,
}

impl StreamKMeans {
    /// Creates the algorithm.
    pub fn new(config: StreamKMeansConfig) -> Self {
        Self {
            buffer: Vec::with_capacity(config.chunk_size),
            levels: Vec::new(),
            processed: 0,
            chunk_counter: 0,
            config,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &StreamKMeansConfig {
        &self.config
    }

    /// Points processed so far.
    pub fn points_processed(&self) -> u64 {
        self.processed
    }

    /// Processes one point (errors ignored — deterministic baseline).
    pub fn insert(&mut self, point: &UncertainPoint) {
        debug_assert_eq!(point.dims(), self.config.dims);
        self.processed += 1;
        self.buffer.push(DeterministicPoint::from(point));
        if self.buffer.len() >= self.config.chunk_size {
            self.flush_chunk();
        }
    }

    /// Representatives currently retained across all levels (plus the
    /// unflushed buffer tail), for inspection.
    pub fn representative_count(&self) -> usize {
        self.buffer.len() + self.levels.iter().map(Vec::len).sum::<usize>()
    }

    /// Clusters everything retained so far into `k` final clusters.
    pub fn query(&self) -> KMeansResult {
        let mut reps: Vec<DeterministicPoint> = Vec::new();
        reps.extend(self.buffer.iter().cloned());
        for level in &self.levels {
            reps.extend(level.iter().cloned());
        }
        kmeans(
            &reps,
            &KMeansConfig::new(self.config.k, self.config.seed ^ 0x5747_u64),
        )
    }

    fn flush_chunk(&mut self) {
        self.chunk_counter += 1;
        let chunk = std::mem::take(&mut self.buffer);
        let reps = Self::summarise(
            &chunk,
            self.config.k,
            self.config.seed.wrapping_add(self.chunk_counter),
        );
        self.push_reps(0, reps);
    }

    /// Clusters a batch into `k` weighted representatives.
    fn summarise(batch: &[DeterministicPoint], k: usize, seed: u64) -> Vec<DeterministicPoint> {
        let res = kmeans(batch, &KMeansConfig::new(k, seed));
        let mut weights = vec![0.0; res.centroids.len()];
        for (p, &a) in batch.iter().zip(&res.assignments) {
            weights[a] += p.weight;
        }
        res.centroids
            .into_iter()
            .zip(weights)
            .filter(|(_, w)| *w > 0.0)
            .map(|(c, w)| DeterministicPoint::weighted(c, w))
            .collect()
    }

    /// Adds representatives to a level, recursively compacting full levels.
    fn push_reps(&mut self, level: usize, reps: Vec<DeterministicPoint>) {
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, Vec::new);
        }
        self.levels[level].extend(reps);
        if self.levels[level].len() >= self.config.chunk_size {
            self.chunk_counter += 1;
            let full = std::mem::take(&mut self.levels[level]);
            let compacted = Self::summarise(
                &full,
                self.config.k,
                self.config.seed.wrapping_add(self.chunk_counter),
            );
            self.push_reps(level + 1, compacted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(x: f64, y: f64, t: u64) -> UncertainPoint {
        UncertainPoint::certain(vec![x, y], t, None)
    }

    fn cfg(k: usize, chunk: usize) -> StreamKMeansConfig {
        StreamKMeansConfig::new(k, chunk, 2, 11).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(StreamKMeansConfig::new(0, 10, 2, 0).is_err());
        assert!(StreamKMeansConfig::new(5, 5, 2, 0).is_err());
        assert!(StreamKMeansConfig::new(2, 10, 0, 0).is_err());
        assert!(StreamKMeansConfig::new(2, 10, 2, 0).is_ok());
    }

    #[test]
    fn finds_two_blobs() {
        let mut alg = StreamKMeans::new(cfg(2, 50));
        for i in 0..500u64 {
            let jitter = (i % 9) as f64 * 0.05;
            if i % 2 == 0 {
                alg.insert(&pt(jitter, -jitter, i));
            } else {
                alg.insert(&pt(25.0 + jitter, 25.0 - jitter, i));
            }
        }
        let res = alg.query();
        assert_eq!(res.centroids.len(), 2);
        let mut near_a = false;
        let mut near_b = false;
        for c in &res.centroids {
            if c[0] < 5.0 {
                near_a = true;
            }
            if c[0] > 20.0 {
                near_b = true;
            }
        }
        assert!(near_a && near_b, "centroids: {:?}", res.centroids);
    }

    #[test]
    fn memory_stays_logarithmic() {
        let mut alg = StreamKMeans::new(cfg(4, 40));
        for i in 0..10_000u64 {
            alg.insert(&pt((i % 13) as f64, (i % 7) as f64, i));
        }
        // Representatives per level < chunk_size; levels ~ log(n/chunk).
        assert!(
            alg.representative_count() < 40 * 6,
            "representatives: {}",
            alg.representative_count()
        );
        assert_eq!(alg.points_processed(), 10_000);
    }

    #[test]
    fn query_before_first_chunk_uses_buffer() {
        let mut alg = StreamKMeans::new(cfg(2, 1000));
        alg.insert(&pt(0.0, 0.0, 1));
        alg.insert(&pt(10.0, 10.0, 2));
        let res = alg.query();
        assert_eq!(res.centroids.len(), 2);
    }

    #[test]
    fn query_on_empty_stream() {
        let alg = StreamKMeans::new(cfg(3, 10));
        let res = alg.query();
        assert!(res.centroids.is_empty());
    }

    #[test]
    fn weights_preserved_through_hierarchy() {
        let mut alg = StreamKMeans::new(cfg(2, 20));
        for i in 0..400u64 {
            alg.insert(&pt((i % 3) as f64, 0.0, i));
        }
        let total: f64 = alg
            .levels
            .iter()
            .flat_map(|l| l.iter())
            .map(|p| p.weight)
            .sum::<f64>()
            + alg.buffer.len() as f64;
        assert!(
            (total - 400.0).abs() < 1e-6,
            "total weight drifted: {total}"
        );
    }
}
