//! DenStream (Cao, Ester, Qian & Zhou, SDM 2006): density-based clustering
//! over an evolving stream with a damped window.
//!
//! The UMicro paper's related work highlights density-based clustering of
//! error-prone data (\[16\], offline); DenStream is the streaming
//! density-based contemporary every stream-clustering suite ships as a
//! baseline, so we include it for completeness of the comparator set.
//!
//! Structure:
//! * every micro-cluster is a decayed feature vector `(w, CF1, CF2)` with
//!   weights `2^{−λ·age}`;
//! * **p-micro-clusters** (potential core) carry weight ≥ `β·μ`;
//!   **o-micro-clusters** (outlier buffer) are candidates that may grow
//!   into p-clusters or fade away;
//! * an arriving point merges into the nearest p-cluster if the resulting
//!   radius stays ≤ ε, else into the nearest o-cluster under the same
//!   test, else it seeds a new o-cluster;
//! * every `T_p = ⌈(1/λ)·log₂(βμ/(βμ−1))⌉` ticks, p-clusters whose weight
//!   decayed below `β·μ` are demoted/dropped and stale o-clusters are
//!   pruned with the paper's ξ lower bound;
//! * the offline phase connects p-clusters whose centroids lie within
//!   `2ε` into final clusters (density-reachability on summaries).

use serde::{Deserialize, Serialize};
use ustream_common::feature::decay_factor;
use ustream_common::point::sq_euclidean;
use ustream_common::{Result, Timestamp, UStreamError, UncertainPoint};

/// DenStream configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenStreamConfig {
    /// Stream dimensionality.
    pub dims: usize,
    /// Neighbourhood radius ε.
    pub epsilon: f64,
    /// Core weight threshold μ.
    pub mu: f64,
    /// Outlier fraction β ∈ (0, 1]: p-clusters need weight ≥ β·μ.
    pub beta: f64,
    /// Decay rate λ (> 0).
    pub lambda: f64,
}

impl DenStreamConfig {
    /// Validated constructor with the original paper's default shape
    /// (`β = 0.25`, `μ = 10`, `λ = 0.006`).
    pub fn new(dims: usize, epsilon: f64) -> Result<Self> {
        let cfg = Self {
            dims,
            epsilon,
            mu: 10.0,
            beta: 0.25,
            lambda: 0.006,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    /// Checks parameter domains.
    pub fn validate(&self) -> Result<()> {
        if self.dims == 0 {
            return Err(UStreamError::InvalidConfig("dims must be >= 1".into()));
        }
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err(UStreamError::InvalidConfig(format!(
                "epsilon must be positive, got {}",
                self.epsilon
            )));
        }
        if !(self.mu.is_finite() && self.mu > 1.0) {
            return Err(UStreamError::InvalidConfig("mu must exceed 1".into()));
        }
        if !(0.0 < self.beta && self.beta <= 1.0) {
            return Err(UStreamError::InvalidConfig("beta must be in (0, 1]".into()));
        }
        if !(self.lambda.is_finite() && self.lambda > 0.0) {
            return Err(UStreamError::InvalidConfig(
                "lambda must be positive".into(),
            ));
        }
        if self.beta * self.mu <= 1.0 {
            return Err(UStreamError::InvalidConfig(
                "beta*mu must exceed 1 (otherwise T_p is undefined)".into(),
            ));
        }
        Ok(())
    }

    /// The pruning period `T_p` of the original paper.
    pub fn pruning_period(&self) -> u64 {
        let bm = self.beta * self.mu;
        ((1.0 / self.lambda) * (bm / (bm - 1.0)).log2())
            .ceil()
            .max(1.0) as u64
    }
}

/// A decayed density micro-cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DensityMicroCluster {
    /// Stable id.
    pub id: u64,
    w: f64,
    cf1: Vec<f64>,
    cf2: Vec<f64>,
    /// Reference tick of the decayed statistics.
    last_decay: Timestamp,
    /// Creation tick (o-cluster staleness test).
    created: Timestamp,
}

impl DensityMicroCluster {
    fn new(id: u64, p: &UncertainPoint) -> Self {
        let values = p.values();
        Self {
            id,
            w: 1.0,
            cf1: values.to_vec(),
            cf2: values.iter().map(|x| x * x).collect(),
            last_decay: p.timestamp(),
            created: p.timestamp(),
        }
    }

    fn decay_to(&mut self, now: Timestamp, lambda: f64) {
        if now <= self.last_decay {
            return;
        }
        let f = decay_factor(lambda, (now - self.last_decay) as f64);
        self.w *= f;
        for v in &mut self.cf1 {
            *v *= f;
        }
        for v in &mut self.cf2 {
            *v *= f;
        }
        self.last_decay = now;
    }

    fn insert(&mut self, p: &UncertainPoint) {
        for (j, &x) in p.values().iter().enumerate() {
            self.cf1[j] += x;
            self.cf2[j] += x * x;
        }
        self.w += 1.0;
    }

    /// Decayed weight.
    pub fn weight(&self) -> f64 {
        self.w
    }

    /// Centroid.
    pub fn centroid(&self) -> Vec<f64> {
        self.cf1.iter().map(|v| v / self.w.max(1e-12)).collect()
    }

    /// RMS radius of the decayed members.
    pub fn radius(&self) -> f64 {
        if self.w <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for j in 0..self.cf1.len() {
            let mean = self.cf1[j] / self.w;
            acc += (self.cf2[j] / self.w - mean * mean).max(0.0);
        }
        acc.sqrt()
    }

    /// Radius if `p` were absorbed (the merge test of the paper).
    fn radius_with(&self, p: &UncertainPoint) -> f64 {
        let mut probe = self.clone();
        probe.insert(p);
        probe.radius()
    }
}

/// The DenStream online algorithm plus its offline connect phase.
#[derive(Debug, Clone)]
pub struct DenStream {
    config: DenStreamConfig,
    potential: Vec<DensityMicroCluster>,
    outliers: Vec<DensityMicroCluster>,
    next_id: u64,
    processed: u64,
    last_prune: Timestamp,
}

impl DenStream {
    /// Creates the algorithm.
    pub fn new(config: DenStreamConfig) -> Self {
        // lint:allow(hot-panic): constructor contract — fails fast at setup, never on the stream path
        config.validate().expect("DenStreamConfig must be valid");
        Self {
            config,
            potential: Vec::new(),
            outliers: Vec::new(),
            next_id: 0,
            processed: 0,
            last_prune: 0,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &DenStreamConfig {
        &self.config
    }

    /// Points processed.
    pub fn points_processed(&self) -> u64 {
        self.processed
    }

    /// Potential-core micro-clusters.
    pub fn potential_clusters(&self) -> &[DensityMicroCluster] {
        &self.potential
    }

    /// Outlier-buffer micro-clusters.
    pub fn outlier_clusters(&self) -> &[DensityMicroCluster] {
        &self.outliers
    }

    /// Processes one point (errors ignored — deterministic baseline).
    pub fn insert(&mut self, p: &UncertainPoint) {
        debug_assert_eq!(p.dims(), self.config.dims);
        self.processed += 1;
        let now = p.timestamp();
        let eps = self.config.epsilon;
        let lambda = self.config.lambda;

        // 1. Try the nearest p-micro-cluster.
        if let Some(idx) = nearest(&self.potential, p.values()) {
            let c = &mut self.potential[idx];
            c.decay_to(now, lambda);
            if c.radius_with(p) <= eps {
                c.insert(p);
                self.maybe_prune(now);
                return;
            }
        }
        // 2. Try the nearest o-micro-cluster.
        if let Some(idx) = nearest(&self.outliers, p.values()) {
            let c = &mut self.outliers[idx];
            c.decay_to(now, lambda);
            if c.radius_with(p) <= eps {
                c.insert(p);
                // Promotion test.
                if c.weight() >= self.config.beta * self.config.mu {
                    let promoted = self.outliers.swap_remove(idx);
                    self.potential.push(promoted);
                }
                self.maybe_prune(now);
                return;
            }
        }
        // 3. New o-micro-cluster.
        let id = self.next_id;
        self.next_id += 1;
        self.outliers.push(DensityMicroCluster::new(id, p));
        self.maybe_prune(now);
    }

    fn maybe_prune(&mut self, now: Timestamp) {
        let period = self.config.pruning_period();
        if now < self.last_prune + period {
            return;
        }
        self.last_prune = now;
        let lambda = self.config.lambda;
        let threshold = self.config.beta * self.config.mu;
        for c in &mut self.potential {
            c.decay_to(now, lambda);
        }
        self.potential.retain(|c| c.weight() >= threshold);

        // o-cluster lower bound ξ(t_c, t_o) from the original paper: an
        // o-cluster created at t_o must by now have at least
        // (2^{−λ(t_c − t_o + T_p)} − 1) / (2^{−λ T_p} − 1) weight.
        let tp = period as f64;
        for c in &mut self.outliers {
            c.decay_to(now, lambda);
        }
        self.outliers.retain(|c| {
            let age = (now - c.created) as f64;
            let xi = ((-lambda * (age + tp)).exp2() - 1.0) / ((-lambda * tp).exp2() - 1.0);
            c.weight() >= xi
        });
    }

    /// Offline phase: groups p-micro-clusters whose centroids lie within
    /// `2ε` of each other into connected components; returns, per final
    /// cluster, the member micro-cluster ids.
    pub fn offline_clusters(&self) -> Vec<Vec<u64>> {
        let n = self.potential.len();
        if n == 0 {
            return Vec::new();
        }
        let centroids: Vec<Vec<f64>> = self.potential.iter().map(|c| c.centroid()).collect();
        let reach = 2.0 * self.config.epsilon;
        // Union-find over the p-clusters.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if sq_euclidean(&centroids[i], &centroids[j]).sqrt() <= reach {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
            }
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<u64>> = Default::default();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().push(self.potential[i].id);
        }
        groups.into_values().collect()
    }

    /// Offline centroids: the weighted centroid of each connected component.
    pub fn offline_centroids(&self) -> Vec<Vec<f64>> {
        let by_id: std::collections::BTreeMap<u64, &DensityMicroCluster> =
            self.potential.iter().map(|c| (c.id, c)).collect();
        self.offline_clusters()
            .into_iter()
            .map(|ids| {
                let mut acc = vec![0.0; self.config.dims];
                let mut w = 0.0;
                for id in ids {
                    let c = by_id[&id];
                    for (a, v) in acc.iter_mut().zip(c.centroid()) {
                        *a += c.weight() * v;
                    }
                    w += c.weight();
                }
                acc.into_iter().map(|a| a / w.max(1e-12)).collect()
            })
            .collect()
    }
}

fn nearest(clusters: &[DensityMicroCluster], values: &[f64]) -> Option<usize> {
    clusters
        .iter()
        .enumerate()
        .map(|(i, c)| (i, sq_euclidean(&c.centroid(), values)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(values: &[f64], t: Timestamp) -> UncertainPoint {
        UncertainPoint::certain(values.to_vec(), t, None)
    }

    fn config() -> DenStreamConfig {
        DenStreamConfig::new(2, 0.5).unwrap()
    }

    #[test]
    fn config_validation() {
        assert!(DenStreamConfig::new(0, 0.5).is_err());
        assert!(DenStreamConfig::new(2, 0.0).is_err());
        let mut c = config();
        c.beta = 0.05; // beta*mu = 0.5 <= 1
        assert!(c.validate().is_err());
        c.beta = 1.5;
        assert!(c.validate().is_err());
        assert!(config().pruning_period() >= 1);
    }

    #[test]
    fn single_point_starts_as_outlier() {
        let mut alg = DenStream::new(config());
        alg.insert(&pt(&[0.0, 0.0], 1));
        assert_eq!(alg.outlier_clusters().len(), 1);
        assert!(alg.potential_clusters().is_empty());
    }

    #[test]
    fn dense_region_promotes_to_potential() {
        let mut alg = DenStream::new(config());
        // beta*mu = 2.5 → three tight points promote.
        for t in 1..=5u64 {
            let w = (t % 3) as f64 * 0.05;
            alg.insert(&pt(&[w, -w], t));
        }
        assert_eq!(alg.potential_clusters().len(), 1);
        assert!(alg.potential_clusters()[0].weight() > 2.5);
    }

    #[test]
    fn far_points_stay_separate() {
        let mut alg = DenStream::new(config());
        for t in 1..=10u64 {
            alg.insert(&pt(&[0.0, 0.0], t));
            alg.insert(&pt(&[10.0, 10.0], t));
        }
        // Two promoted p-clusters, one per blob.
        assert_eq!(alg.potential_clusters().len(), 2);
        let offline = alg.offline_clusters();
        assert_eq!(offline.len(), 2);
    }

    #[test]
    fn offline_connects_bridged_patches() {
        let mut alg = DenStream::new(config());
        // Patches at 0.0 and 1.4 (singleton merge test fails at radius
        // 0.7 > ε) plus a distant patch: three p-clusters, three offline
        // clusters.
        let mut t = 0u64;
        for _ in 0..10 {
            t += 1;
            alg.insert(&pt(&[0.0, 0.0], t));
            t += 1;
            alg.insert(&pt(&[1.4, 0.0], t));
            t += 1;
            alg.insert(&pt(&[50.0, 50.0], t));
        }
        assert_eq!(alg.potential_clusters().len(), 3);
        assert_eq!(alg.offline_clusters().len(), 3);

        // Bridge traffic between the two near patches drags their centroids
        // within the 2ε reachability, connecting them offline.
        for _ in 0..10 {
            t += 1;
            alg.insert(&pt(&[0.55, 0.0], t));
            t += 1;
            alg.insert(&pt(&[0.9, 0.0], t));
        }
        let offline = alg.offline_clusters();
        assert_eq!(offline.len(), 2, "bridged patches should connect");
        let sizes: Vec<usize> = offline.iter().map(Vec::len).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1), "sizes: {sizes:?}");
        assert_eq!(alg.offline_centroids().len(), 2);
    }

    #[test]
    fn stale_potential_cluster_pruned() {
        let mut cfg = config();
        cfg.lambda = 0.05; // fast decay → short pruning period.
        let mut alg = DenStream::new(cfg);
        for t in 1..=10u64 {
            alg.insert(&pt(&[0.0, 0.0], t));
        }
        assert_eq!(alg.potential_clusters().len(), 1);
        // Long silence, then activity elsewhere triggers pruning sweeps.
        for t in 500..=600u64 {
            alg.insert(&pt(&[30.0, 30.0], t));
        }
        assert!(
            alg.potential_clusters()
                .iter()
                .all(|c| c.centroid()[0] > 10.0),
            "stale cluster at origin should be gone"
        );
    }

    #[test]
    fn radius_merge_test_respected() {
        let mut alg = DenStream::new(config());
        for t in 1..=6u64 {
            alg.insert(&pt(&[0.0, 0.0], t));
        }
        let before = alg.potential_clusters()[0].weight();
        // A point 5 away cannot merge (radius would exceed ε = 0.5).
        alg.insert(&pt(&[5.0, 0.0], 7));
        let after = alg.potential_clusters()[0].weight();
        assert!((after - before).abs() < 1.0 + 1e-9);
        assert_eq!(alg.outlier_clusters().len(), 1);
    }

    #[test]
    fn decay_shrinks_weight() {
        let mut c = DensityMicroCluster::new(0, &pt(&[1.0, 1.0], 0));
        c.decay_to(100, 0.01);
        assert!((c.weight() - 0.5).abs() < 1e-12);
        // Centroid invariant under decay.
        let cen = c.centroid();
        assert!((cen[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn offline_empty_stream() {
        let alg = DenStream::new(config());
        assert!(alg.offline_clusters().is_empty());
        assert!(alg.offline_centroids().is_empty());
    }
}
