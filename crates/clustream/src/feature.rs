//! The deterministic CluStream cluster feature vector.
//!
//! `CFT(C) = (CF2x, CF1x, CF2t, CF1t, n)`: per-dimension second and first
//! moments of the values, plus second and first moments of the arrival
//! timestamps and the point count. The temporal moments power the relevance
//! stamp (an estimate of how recently the cluster was active); the spatial
//! moments give centroid and RMS radius. Additive and subtractive like the
//! uncertain ECF — CluStream invented the pyramidal-frame trick UMicro
//! reuses.

use serde::{Deserialize, Serialize};
use ustream_common::{AdditiveFeature, Timestamp, UncertainPoint};

/// Deterministic cluster feature vector (`2d + 3` entries).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CfVector {
    cf2: Vec<f64>,
    cf1: Vec<f64>,
    /// Sum of arrival timestamps.
    cf1_t: f64,
    /// Sum of squared arrival timestamps.
    cf2_t: f64,
    n: f64,
    last_update: Timestamp,
}

impl CfVector {
    /// Empty summary over `d` dimensions.
    pub fn empty(d: usize) -> Self {
        Self {
            cf2: vec![0.0; d],
            cf1: vec![0.0; d],
            cf1_t: 0.0,
            cf2_t: 0.0,
            n: 0.0,
            last_update: 0,
        }
    }

    /// Singleton summary (errors on the point, if any, are ignored — this
    /// is the deterministic baseline).
    pub fn from_point(p: &UncertainPoint) -> Self {
        let mut f = Self::empty(p.dims());
        f.insert(p);
        f
    }

    /// Absorbs one point.
    pub fn insert(&mut self, p: &UncertainPoint) {
        debug_assert_eq!(p.dims(), self.dims());
        for (j, &x) in p.values().iter().enumerate() {
            self.cf1[j] += x;
            self.cf2[j] += x * x;
        }
        let t = p.timestamp() as f64;
        self.cf1_t += t;
        self.cf2_t += t * t;
        self.n += 1.0;
        if p.timestamp() > self.last_update {
            self.last_update = p.timestamp();
        }
    }

    /// `CF1x`.
    pub fn cf1(&self) -> &[f64] {
        &self.cf1
    }

    /// `CF2x`.
    pub fn cf2(&self) -> &[f64] {
        &self.cf2
    }

    /// Point count.
    pub fn n(&self) -> f64 {
        self.n
    }

    /// Mean arrival timestamp `μ_t`.
    pub fn mean_time(&self) -> f64 {
        if self.n > 0.0 {
            self.cf1_t / self.n
        } else {
            0.0
        }
    }

    /// Standard deviation of arrival timestamps `σ_t`.
    pub fn std_time(&self) -> f64 {
        if self.n < 2.0 {
            return 0.0;
        }
        let mean = self.cf1_t / self.n;
        (self.cf2_t / self.n - mean * mean).max(0.0).sqrt()
    }

    /// The *relevance stamp*: the estimated arrival time of the
    /// `m/(2n)`-th most recent point under a normal model of the arrival
    /// times (VLDB'03 §3). Clusters whose stamp is old have not absorbed
    /// recent points and are candidates for deletion.
    ///
    /// When fewer than `2m` points are present the mean arrival time is
    /// used, as in the original paper.
    pub fn relevance_stamp(&self, m: usize) -> f64 {
        if self.n < (2 * m) as f64 {
            return self.mean_time();
        }
        let p = 1.0 - (m as f64) / (2.0 * self.n);
        // p ∈ (0.5, 1): z > 0; stamp sits above the mean arrival time.
        let z = ustream_common::stats::inverse_normal_cdf(p);
        self.mean_time() + z * self.std_time()
    }

    /// RMS deviation of the points about the centroid — the deterministic
    /// radius used for the maximal boundary.
    pub fn rms_radius(&self) -> f64 {
        if self.n <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for j in 0..self.dims() {
            let mean = self.cf1[j] / self.n;
            acc += (self.cf2[j] / self.n - mean * mean).max(0.0);
        }
        acc.sqrt()
    }

    /// Writes the centroid `CF1/n` into `out` without allocating. An empty
    /// summary writes zeros, matching [`AdditiveFeature::centroid`].
    pub fn centroid_into(&self, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.dims());
        if self.n <= 0.0 {
            out.fill(0.0);
            return;
        }
        for (o, &c) in out.iter_mut().zip(&self.cf1) {
            *o = c / self.n;
        }
    }

    /// Squared Euclidean distance from `values` to the centroid.
    pub fn sq_distance_to(&self, values: &[f64]) -> f64 {
        debug_assert_eq!(values.len(), self.dims());
        if self.n <= 0.0 {
            return values.iter().map(|x| x * x).sum();
        }
        let mut acc = 0.0;
        for (j, &x) in values.iter().enumerate() {
            let diff = x - self.cf1[j] / self.n;
            acc += diff * diff;
        }
        acc
    }
}

impl AdditiveFeature for CfVector {
    fn dims(&self) -> usize {
        self.cf1.len()
    }

    fn count(&self) -> f64 {
        self.n
    }

    fn last_update(&self) -> Timestamp {
        self.last_update
    }

    fn merge(&mut self, other: &Self) {
        debug_assert_eq!(self.dims(), other.dims());
        for j in 0..self.cf1.len() {
            self.cf1[j] += other.cf1[j];
            self.cf2[j] += other.cf2[j];
        }
        self.cf1_t += other.cf1_t;
        self.cf2_t += other.cf2_t;
        self.n += other.n;
        self.last_update = self.last_update.max(other.last_update);
    }

    fn subtract(&mut self, other: &Self) {
        debug_assert_eq!(self.dims(), other.dims());
        for j in 0..self.cf1.len() {
            self.cf1[j] -= other.cf1[j];
            self.cf2[j] = (self.cf2[j] - other.cf2[j]).max(0.0);
        }
        self.cf1_t -= other.cf1_t;
        self.cf2_t = (self.cf2_t - other.cf2_t).max(0.0);
        self.n = (self.n - other.n).max(0.0);
    }

    fn centroid(&self) -> Vec<f64> {
        if self.n <= 0.0 {
            return vec![0.0; self.dims()];
        }
        self.cf1.iter().map(|v| v / self.n).collect()
    }
}

/// Deterministic summaries publish a zero noise row and use the RMS radius
/// for both boundary radii, so the shared SoA kernel serves CluStream's
/// plain Euclidean geometry unchanged.
impl umicro::kernel::KernelRow for CfVector {
    fn write_row(&self, centroid: &mut [f64], noise: &mut [f64]) {
        self.centroid_into(centroid);
        noise.fill(0.0);
    }

    fn radii(&self) -> (f64, f64) {
        let r = self.rms_radius();
        (r, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(values: &[f64], t: Timestamp) -> UncertainPoint {
        UncertainPoint::certain(values.to_vec(), t, None)
    }

    #[test]
    fn singleton_and_accessors() {
        let f = CfVector::from_point(&pt(&[3.0, -1.0], 7));
        assert_eq!(f.n(), 1.0);
        assert_eq!(f.cf1(), &[3.0, -1.0]);
        assert_eq!(f.cf2(), &[9.0, 1.0]);
        assert_eq!(f.mean_time(), 7.0);
        assert_eq!(f.last_update(), 7);
    }

    #[test]
    fn errors_ignored() {
        let noisy = UncertainPoint::new(vec![1.0], vec![5.0], 1, None);
        let clean = UncertainPoint::certain(vec![1.0], 1, None);
        assert_eq!(CfVector::from_point(&noisy), CfVector::from_point(&clean));
    }

    #[test]
    fn centroid_and_radius() {
        let mut f = CfVector::empty(1);
        f.insert(&pt(&[-2.0], 1));
        f.insert(&pt(&[2.0], 2));
        assert_eq!(f.centroid(), vec![0.0]);
        assert!((f.rms_radius() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn additive_and_subtractive() {
        let pts: Vec<UncertainPoint> = (0..8).map(|i| pt(&[i as f64], i as u64)).collect();
        let mut all = CfVector::empty(1);
        let mut head = CfVector::empty(1);
        for (i, p) in pts.iter().enumerate() {
            all.insert(p);
            if i < 3 {
                head.insert(p);
            }
        }
        let mut merged = head.clone();
        let mut tail = all.clone();
        tail.subtract(&head);
        merged.merge(&tail);
        assert!((merged.cf1()[0] - all.cf1()[0]).abs() < 1e-9);
        assert!((merged.cf2()[0] - all.cf2()[0]).abs() < 1e-9);
        assert_eq!(merged.n(), 8.0);
        // Tail equals direct summary of points 3..8.
        let mut direct = CfVector::empty(1);
        for p in &pts[3..] {
            direct.insert(p);
        }
        assert!((tail.cf1()[0] - direct.cf1()[0]).abs() < 1e-9);
        assert!((tail.mean_time() - direct.mean_time()).abs() < 1e-9);
    }

    #[test]
    fn time_statistics() {
        let mut f = CfVector::empty(1);
        for t in [10u64, 20, 30] {
            f.insert(&pt(&[0.0], t));
        }
        assert!((f.mean_time() - 20.0).abs() < 1e-12);
        let want_sd = ((100.0 + 0.0 + 100.0f64) / 3.0).sqrt();
        assert!((f.std_time() - want_sd).abs() < 1e-9);
    }

    #[test]
    fn relevance_stamp_small_cluster_uses_mean() {
        let mut f = CfVector::empty(1);
        f.insert(&pt(&[0.0], 10));
        f.insert(&pt(&[0.0], 30));
        // n = 2 < 2m for m = 10.
        assert_eq!(f.relevance_stamp(10), 20.0);
    }

    #[test]
    fn relevance_stamp_recent_cluster_is_later() {
        // Two clusters with the same spread; one stopped receiving points
        // long ago. The stale one must have the smaller stamp.
        let mut old = CfVector::empty(1);
        let mut fresh = CfVector::empty(1);
        for t in 0..100u64 {
            old.insert(&pt(&[0.0], t));
            fresh.insert(&pt(&[0.0], t + 500));
        }
        let m = 10;
        assert!(old.relevance_stamp(m) < fresh.relevance_stamp(m));
        // Stamp exceeds the mean for a large cluster (estimates a recent
        // percentile).
        assert!(old.relevance_stamp(m) > old.mean_time());
    }

    #[test]
    fn sq_distance_to_centroid() {
        let mut f = CfVector::empty(2);
        f.insert(&pt(&[0.0, 0.0], 1));
        f.insert(&pt(&[2.0, 2.0], 2));
        // centroid (1, 1).
        assert!((f.sq_distance_to(&[4.0, 5.0]) - (9.0 + 16.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_feature_defensive() {
        let f = CfVector::empty(2);
        assert_eq!(f.centroid(), vec![0.0, 0.0]);
        assert_eq!(f.rms_radius(), 0.0);
        assert_eq!(f.mean_time(), 0.0);
        assert!(AdditiveFeature::is_empty(&f));
        assert_eq!(f.sq_distance_to(&[3.0, 4.0]), 25.0);
    }
}
