//! [`OnlineClusterer`] conformance for the CluStream baseline.
//!
//! The trait lives in the `umicro` crate (the paper's primary algorithm);
//! implementing it here lets the sharded ingestion engine and the
//! evaluation harnesses drive CluStream through exactly the interface they
//! use for UMicro, which is how the paper's efficiency and quality
//! comparisons are set up.

use crate::feature::CfVector;
use crate::micro::CluStream;
use umicro::online::OnlineClusterer;
use umicro::{InsertOutcome, MacroClustering};
use ustream_common::point::sq_euclidean;
use ustream_common::{Timestamp, UncertainPoint};
use ustream_snapshot::ClusterSetSnapshot;

impl OnlineClusterer for CluStream {
    type Summary = CfVector;

    fn insert(&mut self, point: &UncertainPoint) -> InsertOutcome {
        let outcome = CluStream::insert(self, point);
        InsertOutcome {
            cluster_id: outcome.cluster_id,
            created: outcome.created,
            // Budget restoration by deletion or by merge both retire one
            // cluster id; either counts as an eviction for the engine's
            // bookkeeping.
            evicted: outcome
                .deleted
                .or(outcome.merged.map(|(_survivor, absorbed)| absorbed)),
        }
    }

    fn insert_batch(&mut self, points: &[UncertainPoint], out: &mut Vec<InsertOutcome>) {
        let mut native = Vec::with_capacity(points.len());
        CluStream::insert_batch(self, points, &mut native);
        out.reserve(native.len());
        out.extend(native.into_iter().map(|o| InsertOutcome {
            cluster_id: o.cluster_id,
            created: o.created,
            evicted: o.deleted.or(o.merged.map(|(_survivor, absorbed)| absorbed)),
        }));
    }

    fn micro_clusters(&self) -> Vec<(u64, Self::Summary)> {
        CluStream::micro_clusters(self)
            .iter()
            .map(|c| (c.id, c.cf.clone()))
            .collect()
    }

    fn num_clusters(&self) -> usize {
        CluStream::micro_clusters(self).len()
    }

    fn points_processed(&self) -> u64 {
        CluStream::points_processed(self)
    }

    fn isolation(&self, point: &UncertainPoint) -> Option<f64> {
        // CluStream ignores error vectors, so its native geometry is plain
        // Euclidean distance to the nearest centroid. One reusable buffer
        // instead of a fresh `Vec` per cluster.
        let mut centroid = vec![0.0; point.dims()];
        let mut best = f64::INFINITY;
        for c in CluStream::micro_clusters(self) {
            c.cf.centroid_into(&mut centroid);
            best = best.min(sq_euclidean(point.values(), &centroid));
        }
        best.is_finite().then(|| best.sqrt())
    }

    fn snapshot_at(&mut self, _now: Timestamp) -> ClusterSetSnapshot<Self::Summary> {
        // Deterministic CF statistics are time-invariant; `now` is accepted
        // for interface symmetry.
        CluStream::snapshot(self)
    }

    fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
        CluStream::macro_cluster(self, k, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::CluStreamConfig;

    fn pt(x: f64, y: f64, t: Timestamp) -> UncertainPoint {
        UncertainPoint::certain(vec![x, y], t, None)
    }

    #[test]
    fn trait_drives_clustream() {
        let mut alg = CluStream::new(CluStreamConfig::new(8, 2).unwrap());
        for t in 1..=80u64 {
            let x = if t % 2 == 0 { 0.0 } else { 12.0 };
            OnlineClusterer::insert(&mut alg, &pt(x, x, t));
        }
        assert_eq!(OnlineClusterer::points_processed(&alg), 80);
        assert!(alg.num_clusters() >= 2);
        let snap = OnlineClusterer::snapshot_at(&mut alg, 80);
        assert_eq!(snap.len(), alg.num_clusters());
        let mac = OnlineClusterer::macro_cluster(&mut alg, 2, 5);
        assert_eq!(mac.k(), 2);
    }

    #[test]
    fn isolation_uses_euclidean_geometry() {
        let mut alg = CluStream::new(CluStreamConfig::new(4, 2).unwrap());
        assert!(alg.isolation(&pt(0.0, 0.0, 1)).is_none());
        OnlineClusterer::insert(&mut alg, &pt(0.0, 0.0, 1));
        let d = alg.isolation(&pt(3.0, 4.0, 2)).unwrap();
        assert!((d - 5.0).abs() < 1e-9);
    }
}
