//! # clustream
//!
//! Deterministic stream-clustering baselines the ICDE'08 paper compares
//! UMicro against:
//!
//! * [`CluStream`] — the micro-clustering framework of Aggarwal, Han, Wang &
//!   Yu (VLDB 2003): cluster feature vectors `(CF2x, CF1x, CF2t, CF1t, n)`,
//!   an RMS-deviation maximal boundary, relevance-stamp based deletion of
//!   stale clusters, closest-pair merging, and offline macro-clustering.
//!   This is the "optimistic baseline" of the paper's efficiency plots: it
//!   ignores the error vectors entirely, so both its input and its
//!   arithmetic are smaller than UMicro's.
//! * [`StreamKMeans`] — the STREAM algorithm of O'Callaghan et al. (ICDE
//!   2002), cited as \[6\]: chunk-wise clustering with weighted
//!   representatives and hierarchical re-clustering.
//! * [`DenStream`] — the density-based damped-window contemporary (Cao et
//!   al., SDM 2006), included to round out the comparator set.
//!
//! Both baselines consume the same [`ustream_common::UncertainPoint`] stream
//! as UMicro but look only at the instantiated values.

pub mod denstream;
pub mod feature;
pub mod horizon;
pub mod macrocluster;
pub mod micro;
pub mod online;
pub mod stream_kmeans;

pub use denstream::{DenStream, DenStreamConfig, DensityMicroCluster};
pub use feature::CfVector;
pub use horizon::CluStreamHorizon;
pub use macrocluster::macro_cluster_cfs;
pub use micro::{CluStream, CluStreamConfig, CluStreamInsert};
pub use stream_kmeans::{StreamKMeans, StreamKMeansConfig};
