//! CluStream's offline macro-clustering phase: weighted k-means over the
//! deterministic micro-cluster centroids, each carrying its point count.

use crate::feature::CfVector;
use ustream_common::AdditiveFeature;

pub use ustream_kmeans::MacroClustering;

/// Runs weighted k-means over `(id, CF)` pairs.
pub fn macro_cluster_cfs<'a>(
    clusters: impl Iterator<Item = (u64, &'a CfVector)>,
    k: usize,
    seed: u64,
) -> MacroClustering {
    ustream_kmeans::macro_cluster_weighted(
        clusters.map(|(id, cf)| (id, cf.centroid(), cf.n())),
        k,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::UncertainPoint;

    fn cf_at(x: f64, n: usize) -> CfVector {
        let mut f = CfVector::empty(1);
        for i in 0..n {
            f.insert(&UncertainPoint::certain(
                vec![x + (i % 2) as f64 * 0.01],
                i as u64,
                None,
            ));
        }
        f
    }

    #[test]
    fn groups_cf_centroids() {
        let micro = [
            (1u64, cf_at(0.0, 4)),
            (2, cf_at(0.1, 4)),
            (3, cf_at(20.0, 4)),
        ];
        let mac = macro_cluster_cfs(micro.iter().map(|(i, f)| (*i, f)), 2, 3);
        assert_eq!(mac.k(), 2);
        assert_eq!(mac.macro_of_micro(1), mac.macro_of_micro(2));
        assert_ne!(mac.macro_of_micro(1), mac.macro_of_micro(3));
        assert!((mac.weights.iter().sum::<f64>() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let mac = macro_cluster_cfs(std::iter::empty(), 2, 0);
        assert_eq!(mac.k(), 0);
    }
}
