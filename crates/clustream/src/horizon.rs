//! Horizon-specific clustering for the CluStream baseline — the original
//! VLDB'03 feature the UMicro paper inherits. Built on the feature-generic
//! [`HorizonTracker`]; the deterministic `CfVector` satisfies the same
//! additive/subtractive contract as the uncertain ECF.

use crate::feature::CfVector;
use crate::macrocluster::{macro_cluster_cfs, MacroClustering};
use crate::micro::CluStream;
use ustream_common::{Result, Timestamp};
use ustream_snapshot::{ClusterSetSnapshot, HorizonTracker, PyramidConfig, SnapshotStore};

/// Records CluStream snapshots and answers horizon queries.
#[derive(Debug, Clone)]
pub struct CluStreamHorizon {
    tracker: HorizonTracker<CfVector>,
}

impl CluStreamHorizon {
    /// Analyzer with the given pyramid geometry.
    pub fn new(config: PyramidConfig) -> Self {
        Self {
            tracker: HorizonTracker::new(config),
        }
    }

    /// Analyzer with the default geometry.
    pub fn with_defaults() -> Self {
        Self {
            tracker: HorizonTracker::with_defaults(),
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &SnapshotStore<ClusterSetSnapshot<CfVector>> {
        self.tracker.store()
    }

    /// Records the current state of `alg` for tick `now`.
    pub fn record(&mut self, now: Timestamp, alg: &CluStream) {
        self.tracker.record_snapshot(now, alg.snapshot());
    }

    /// Micro-cluster statistics of the window `(now − h, now]`.
    pub fn horizon_clusters(&self, now: Timestamp, h: u64) -> Result<ClusterSetSnapshot<CfVector>> {
        self.tracker.horizon_clusters(now, h)
    }

    /// Macro-clusters of the window.
    pub fn macro_cluster_horizon(
        &self,
        now: Timestamp,
        h: u64,
        k: usize,
        seed: u64,
    ) -> Result<MacroClustering> {
        let window = self.tracker.horizon_clusters(now, h)?;
        Ok(macro_cluster_cfs(
            window.clusters.iter().map(|(id, f)| (*id, f)),
            k,
            seed,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::CluStreamConfig;
    use ustream_common::{AdditiveFeature, UncertainPoint};

    #[test]
    fn clustream_horizon_reconstruction() {
        let mut alg = CluStream::new(CluStreamConfig::new(8, 1).unwrap());
        let mut hz = CluStreamHorizon::new(PyramidConfig::new(2, 6).unwrap());
        let total = 1_024u64;
        for t in 1..=total {
            let x = if t <= 768 { 0.0 } else { 40.0 };
            alg.insert(&UncertainPoint::certain(vec![x], t, None));
            hz.record(t, &alg);
        }
        // Recent window (exactly representable horizon) is the new regime.
        let window = hz.horizon_clusters(total, 256).unwrap();
        let recent_mass: f64 = window
            .clusters
            .values()
            .filter(|f| f.centroid()[0] > 20.0)
            .map(|f| f.n())
            .sum();
        assert!(
            recent_mass / window.total_count() > 0.95,
            "recent mass {recent_mass} of {}",
            window.total_count()
        );
        // Macro clustering over a long window sees both regimes.
        let mac = hz.macro_cluster_horizon(total, 512, 2, 3).unwrap();
        assert_eq!(mac.k(), 2);
    }

    #[test]
    fn horizon_unavailable_propagates() {
        let hz = CluStreamHorizon::with_defaults();
        assert!(hz.horizon_clusters(100, 10).is_err());
    }
}
