//! The one way to construct a [`StreamEngine`].
//!
//! The engine grew its knobs one PR at a time — validation, watchdog, load
//! policy, checkpointing, snapshot budgets — and with them a zoo of
//! positional constructors (`start`, `start_with`) over an
//! assert-happy [`EngineConfig`]. [`EngineBuilder`] replaces that surface
//! with a single chained-setter builder whose `build()` *returns* a
//! [`UStreamError::InvalidConfig`] instead of panicking, so servers can
//! reject a bad tenant configuration without dying.
//!
//! ```
//! use ustream_engine::{EngineBuilder, LoadPolicy, WatchdogConfig};
//! use umicro::UMicroConfig;
//! use ustream_common::UncertainPoint;
//!
//! let engine = EngineBuilder::new(UMicroConfig::new(16, 2).unwrap())
//!     .shards(2)
//!     .snapshot_every(8)
//!     .load_policy(LoadPolicy::default())
//!     .watchdog(WatchdogConfig::default())
//!     .build()
//!     .expect("valid configuration");
//! engine
//!     .push(UncertainPoint::new(vec![1.0, -1.0], vec![0.3, 0.3], 1, None))
//!     .unwrap();
//! engine.flush();
//! assert_eq!(engine.points_processed(), 1);
//! engine.shutdown();
//! ```

use crate::config::{EngineConfig, NoveltyBaseline};
use crate::engine::{DynClusterer, StreamEngine};
use crate::load::{LoadPolicy, WatchdogConfig};
use crate::validate::{BackpressurePolicy, ValidationPolicy};
use umicro::kernel::simd;
use umicro::UMicroConfig;
use ustream_common::{Result, UStreamError};
use ustream_snapshot::{PyramidConfig, SnapshotBudget};

/// Chained-setter construction of a [`StreamEngine`].
///
/// Every setter records its value without validating; [`Self::build`] (or
/// [`Self::into_config`]) validates the whole configuration at once and
/// reports the *first* problem as [`UStreamError::InvalidConfig`]. This is
/// the deliberate difference from the `EngineConfig::with_*` family, which
/// asserts eagerly: a serving front-end constructing engines from untrusted
/// tenant configs needs errors, not panics.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    config: EngineConfig,
    kernel_backend: Option<String>,
}

impl EngineBuilder {
    /// A builder over the engine defaults for the given clustering
    /// configuration (see [`EngineConfig::new`]).
    pub fn new(umicro: UMicroConfig) -> Self {
        Self {
            config: EngineConfig::new(umicro),
            kernel_backend: None,
        }
    }

    /// A builder seeded from an existing configuration (e.g. one read back
    /// from a checkpoint) — setters override individual fields from there.
    pub fn from_config(config: EngineConfig) -> Self {
        Self {
            config,
            kernel_backend: None,
        }
    }

    /// Forces the kernel SIMD backend *process-wide* when the engine is
    /// built: `scalar`, `portable`, `avx2`, `avx512`, `neon`, or `auto`
    /// (re-run feature detection, honouring the `USTREAM_KERNEL_BACKEND`
    /// environment variable). Unknown names and backends the running CPU
    /// cannot execute are an [`UStreamError::InvalidConfig`] at build
    /// time, so operators learn at boot rather than from silent
    /// degradation. All backends return bitwise-identical results; the
    /// forced-scalar knob exists for tests and for isolating kernel
    /// speedups in benches. Unset leaves the process's current dispatch
    /// decision untouched.
    pub fn kernel_backend(mut self, backend: impl Into<String>) -> Self {
        self.kernel_backend = Some(backend.into());
        self
    }

    /// Number of shard workers (round-robin routing, exact periodic merge).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Ticks between pyramidal snapshots.
    pub fn snapshot_every(mut self, ticks: u64) -> Self {
        self.config.snapshot_every = ticks;
        self
    }

    /// Pyramidal time-frame geometry.
    pub fn pyramid(mut self, pyramid: PyramidConfig) -> Self {
        self.config.pyramid = pyramid;
        self
    }

    /// Exponential decay half-life in ticks (`None` disables decay).
    pub fn decay_half_life(mut self, half_life: Option<f64>) -> Self {
        self.config.decay_half_life = half_life;
        self
    }

    /// Novelty alerting factor (`None` disables the monitor).
    pub fn novelty_factor(mut self, factor: Option<f64>) -> Self {
        self.config.novelty_factor = factor;
        self
    }

    /// Switches the novelty baseline to a streaming quantile.
    pub fn novelty_quantile(mut self, q: f64) -> Self {
        self.config.novelty_baseline = NoveltyBaseline::Quantile(q);
        self
    }

    /// Capacity of each shard's ingestion channel.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        self.config.channel_capacity = capacity;
        self
    }

    /// Maximum retained (undrained) novelty alerts.
    pub fn max_alerts(mut self, max: usize) -> Self {
        self.config.max_alerts = max;
        self
    }

    /// Producer-side validation policy (`None` disables validation).
    pub fn validation(mut self, policy: Option<ValidationPolicy>) -> Self {
        self.config.validation = policy;
        self
    }

    /// Requires non-decreasing timestamps at the producer boundary.
    pub fn monotone_timestamps(mut self, enforce: bool) -> Self {
        self.config.monotone_timestamps = enforce;
        self
    }

    /// Quarantine buffer capacity under [`ValidationPolicy::Quarantine`].
    pub fn quarantine_capacity(mut self, capacity: usize) -> Self {
        self.config.quarantine_capacity = capacity;
        self
    }

    /// What producers experience when every shard channel is full.
    pub fn backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.config.backpressure = policy;
        self
    }

    /// Automatic checkpoints every `every` points, written to `path`.
    pub fn auto_checkpoint(mut self, every: u64, path: impl Into<String>) -> Self {
        self.config.checkpoint_every = Some(every);
        self.config.checkpoint_path = Some(path.into());
        self
    }

    /// Number of rotated checkpoint generations (1..=64).
    pub fn checkpoint_generations(mut self, generations: u64) -> Self {
        self.config.checkpoint_generations = generations;
        self
    }

    /// Installs the degradation ladder (starts the governor thread).
    pub fn load_policy(mut self, policy: LoadPolicy) -> Self {
        self.config.load_policy = Some(policy);
        self
    }

    /// Installs the stall watchdog (starts the governor thread).
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.config.watchdog = Some(watchdog);
        self
    }

    /// Caps the snapshot store's memory.
    pub fn snapshot_budget(mut self, budget: SnapshotBudget) -> Self {
        self.config.snapshot_budget = Some(budget);
        self
    }

    /// Validates the accumulated configuration and hands it back without
    /// starting an engine — for callers that persist or ship configs.
    ///
    /// # Errors
    ///
    /// [`UStreamError::InvalidConfig`] describing the first invalid field.
    pub fn into_config(self) -> Result<EngineConfig> {
        self.resolve_kernel_backend()?;
        validate(&self.config)?;
        Ok(self.config)
    }

    /// Validates and starts the engine with the default UMicro clusterers
    /// (decayed when a half-life is set).
    ///
    /// # Errors
    ///
    /// [`UStreamError::InvalidConfig`] for a bad configuration,
    /// [`UStreamError::Io`] when a worker thread cannot be spawned.
    pub fn build(self) -> Result<StreamEngine> {
        let choice = self.resolve_kernel_backend()?;
        let config = self.into_config()?;
        if let Some(choice) = choice {
            simd::force(choice);
        }
        StreamEngine::launch_default(config)
    }

    /// Validates and starts the engine with caller-supplied clusterers —
    /// the builder counterpart of the old `start_with`. The factory is
    /// invoked once per shard index (and again on supervised respawn).
    ///
    /// # Errors
    ///
    /// [`UStreamError::InvalidConfig`] for a bad configuration,
    /// [`UStreamError::Io`] when a worker thread cannot be spawned.
    pub fn build_with(
        self,
        clusterer: impl Fn(usize) -> DynClusterer + Send + Sync + 'static,
    ) -> Result<StreamEngine> {
        let choice = self.resolve_kernel_backend()?;
        let config = self.into_config()?;
        if let Some(choice) = choice {
            simd::force(choice);
        }
        StreamEngine::launch(config, clusterer)
    }

    /// Maps the requested backend name to a [`simd::force`] argument:
    /// outer `None` — nothing requested, leave dispatch alone;
    /// `Some(None)` — `auto`, re-run detection; `Some(Some(b))` — force
    /// that backend.
    fn resolve_kernel_backend(&self) -> Result<Option<Option<simd::Backend>>> {
        let Some(name) = self.kernel_backend.as_deref() else {
            return Ok(None);
        };
        if name.trim().eq_ignore_ascii_case("auto") {
            return Ok(Some(None));
        }
        match simd::Backend::parse(name) {
            Some(b) if b.available() => Ok(Some(Some(b))),
            Some(b) => Err(UStreamError::InvalidConfig(format!(
                "kernel backend `{}` is not available on this CPU",
                b.name()
            ))),
            None => Err(UStreamError::InvalidConfig(format!(
                "unknown kernel backend `{name}` \
                 (expected scalar|portable|avx2|avx512|neon|auto)"
            ))),
        }
    }
}

/// The non-panicking mirror of the `EngineConfig::with_*` assertions.
fn validate(config: &EngineConfig) -> Result<()> {
    let fail = |msg: String| Err(UStreamError::InvalidConfig(msg));
    if config.shards == 0 || config.shards > 1 << 16 {
        return fail(format!(
            "shards must be in 1..={} (got {})",
            1u32 << 16,
            config.shards
        ));
    }
    if config.snapshot_every == 0 {
        return fail("snapshot_every must be positive".into());
    }
    if config.channel_capacity == 0 {
        return fail("channel_capacity must be positive".into());
    }
    if let Some(hl) = config.decay_half_life {
        if hl <= 0.0 || hl.is_nan() {
            return fail(format!("decay half-life must be positive (got {hl})"));
        }
    }
    if let Some(f) = config.novelty_factor {
        if f <= 1.0 || f.is_nan() {
            return fail(format!("novelty factor must exceed 1 (got {f})"));
        }
    }
    if let NoveltyBaseline::Quantile(q) = config.novelty_baseline {
        if !(q > 0.0 && q < 1.0) {
            return fail(format!("novelty quantile must be in (0, 1) (got {q})"));
        }
    }
    match (config.checkpoint_every, config.checkpoint_path.as_deref()) {
        (Some(0), _) => return fail("checkpoint cadence must be positive".into()),
        (Some(_), None) => return fail("checkpoint_every needs a checkpoint path".into()),
        _ => {}
    }
    if !(1..=64).contains(&config.checkpoint_generations) {
        return fail(format!(
            "checkpoint generations must be in 1..=64 (got {})",
            config.checkpoint_generations
        ));
    }
    if let Some(policy) = config.load_policy {
        if let Err(msg) = check_load_policy(&policy) {
            return fail(msg);
        }
    }
    if let Some(watchdog) = config.watchdog {
        if watchdog.stall_deadline_ms == 0 {
            return fail("watchdog stall_deadline_ms must be positive".into());
        }
        if watchdog.poll_ms == 0 {
            return fail("watchdog poll_ms must be positive".into());
        }
    }
    if let Some(budget) = config.snapshot_budget {
        if budget.max_snapshots == Some(0) {
            return fail("snapshot budget of 0 snapshots would retain nothing".into());
        }
        if budget.max_bytes == Some(0) {
            return fail("snapshot budget of 0 bytes would retain nothing".into());
        }
    }
    Ok(())
}

/// [`LoadPolicy::validate`] without the panics.
fn check_load_policy(p: &LoadPolicy) -> std::result::Result<(), String> {
    if !(p.high_watermark > 0.0 && p.high_watermark <= 1.0) {
        return Err("load policy high_watermark must be in (0, 1]".into());
    }
    if !(p.low_watermark >= 0.0 && p.low_watermark < p.high_watermark) {
        return Err("load policy low_watermark must be in [0, high_watermark)".into());
    }
    if p.trip_polls == 0 {
        return Err("load policy trip_polls must be positive".into());
    }
    if p.clear_polls == 0 {
        return Err("load policy clear_polls must be positive".into());
    }
    if p.widen_factor == 0 {
        return Err("load policy widen_factor must be >= 1".into());
    }
    if !(1..=1000).contains(&p.keep_per_mille) {
        return Err("load policy keep_per_mille must be in [1, 1000]".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use umicro::UMicro;
    use ustream_common::UncertainPoint;

    fn base() -> EngineBuilder {
        EngineBuilder::new(UMicroConfig::new(16, 2).unwrap())
    }

    fn pt(x: f64, t: u64) -> UncertainPoint {
        UncertainPoint::new(vec![x, -x], vec![0.2, 0.2], t, None)
    }

    #[test]
    fn build_runs_an_engine_end_to_end() {
        let engine = base().shards(2).snapshot_every(4).build().unwrap();
        for t in 1..=50 {
            engine
                .push(pt(if t % 2 == 0 { 0.0 } else { 8.0 }, t))
                .unwrap();
        }
        engine.flush();
        assert_eq!(engine.points_processed(), 50);
        let report = engine.shutdown();
        assert_eq!(report.per_shard.len(), 2);
    }

    #[test]
    fn build_with_uses_the_factory() {
        let engine = base()
            .build_with(|_shard| -> DynClusterer {
                Box::new(UMicro::new(UMicroConfig::new(4, 2).unwrap()))
            })
            .unwrap();
        engine.push(pt(1.0, 1)).unwrap();
        engine.flush();
        assert_eq!(engine.points_processed(), 1);
        engine.shutdown();
    }

    #[test]
    fn invalid_configs_error_instead_of_panicking() {
        let cases: Vec<(EngineBuilder, &str)> = vec![
            (base().shards(0), "shards"),
            (base().snapshot_every(0), "snapshot_every"),
            (base().channel_capacity(0), "channel_capacity"),
            (base().decay_half_life(Some(-1.0)), "half-life"),
            (base().novelty_factor(Some(0.5)), "novelty factor"),
            (base().novelty_quantile(1.5), "quantile"),
            (base().auto_checkpoint(0, "x.ckpt"), "cadence"),
            (base().checkpoint_generations(0), "generations"),
            (
                base().load_policy(LoadPolicy {
                    keep_per_mille: 0,
                    ..LoadPolicy::default()
                }),
                "keep_per_mille",
            ),
            (
                base().watchdog(WatchdogConfig {
                    stall_deadline_ms: 0,
                    ..WatchdogConfig::default()
                }),
                "stall_deadline_ms",
            ),
            (
                base().snapshot_budget(SnapshotBudget::by_snapshots(0)),
                "snapshots",
            ),
            (base().kernel_backend("sse9"), "unknown kernel backend"),
        ];
        for (builder, needle) in cases {
            match builder.build() {
                Err(UStreamError::InvalidConfig(msg)) => {
                    assert!(msg.contains(needle), "`{msg}` should mention `{needle}`");
                }
                Err(other) => panic!("expected InvalidConfig mentioning `{needle}`, got {other}"),
                Ok(_) => panic!("expected InvalidConfig mentioning `{needle}`, got an engine"),
            }
        }
    }

    #[test]
    fn kernel_backend_knob_forces_and_reports_the_backend() {
        // Forcing scalar is valid on every machine; the engine report
        // must surface what is actually live. Restore auto-detection
        // afterwards so parallel tests in this binary see a real backend.
        let engine = base().kernel_backend("scalar").build().unwrap();
        engine.push(pt(1.0, 1)).unwrap();
        engine.flush();
        let report = engine.stats();
        assert_eq!(report.kernel_backend, "scalar");
        engine.shutdown();
        assert_eq!(simd::force(None), simd::detect());
    }

    #[test]
    fn unavailable_kernel_backend_is_rejected_at_build_time() {
        // At least one compiled backend name is unavailable on any given
        // machine (neon on x86_64, avx2/avx512 on aarch64) — it must be
        // an InvalidConfig, not a silent fallback.
        let unavailable = ["scalar", "portable", "avx2", "avx512", "neon"]
            .iter()
            .find(|n| simd::Backend::parse(n).is_some_and(|b| !b.available()));
        if let Some(name) = unavailable {
            match base().kernel_backend(*name).build() {
                Err(UStreamError::InvalidConfig(msg)) => {
                    assert!(msg.contains("not available"), "{msg}");
                }
                Err(other) => panic!("expected InvalidConfig, got {other}"),
                Ok(_) => panic!("expected InvalidConfig, got an engine"),
            }
        }
    }

    #[test]
    fn from_config_round_trips_through_into_config() {
        let config = EngineConfig::new(UMicroConfig::new(8, 2).unwrap()).with_shards(3);
        let out = EngineBuilder::from_config(config.clone())
            .snapshot_every(16)
            .into_config()
            .unwrap();
        assert_eq!(out.shards, 3);
        assert_eq!(out.snapshot_every, 16);
        assert_eq!(out.umicro.n_micro, config.umicro.n_micro);
    }

    #[test]
    fn builder_engine_matches_deprecated_start() {
        let drive = |engine: StreamEngine| {
            for t in 1..=80 {
                engine
                    .push(pt(if t % 2 == 0 { 0.0 } else { 9.0 }, t))
                    .unwrap();
            }
            engine.flush();
            let mut ids: Vec<u64> = engine.micro_clusters().iter().map(|c| c.id).collect();
            ids.sort_unstable();
            let n = engine.points_processed();
            engine.shutdown();
            (ids, n)
        };
        let via_builder = drive(base().shards(2).build().unwrap());
        #[allow(deprecated)]
        let via_start = drive(
            StreamEngine::start(
                EngineConfig::new(UMicroConfig::new(16, 2).unwrap()).with_shards(2),
            )
            .unwrap(),
        );
        assert_eq!(via_builder, via_start);
    }
}
