//! Alert and shutdown-report types.

use ustream_common::Timestamp;

/// A record flagged as unlike anything the clustering currently knows.
#[derive(Debug, Clone, PartialEq)]
pub struct NoveltyAlert {
    /// Arrival tick of the offending record.
    pub timestamp: Timestamp,
    /// Ordinal position in the stream (1-based).
    pub position: u64,
    /// Error-corrected distance to the nearest micro-cluster at arrival.
    pub isolation: f64,
    /// The running mean isolation the record was compared against.
    pub baseline: f64,
    /// Id of the micro-cluster the record ended up in.
    pub cluster_id: u64,
}

/// Per-shard accounting inside an [`EngineReport`].
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (also the high bits of its global cluster ids).
    pub shard: usize,
    /// Records this shard has clustered.
    pub processed: u64,
    /// Records routed to this shard but not yet clustered (channel depth).
    pub queue_depth: u64,
    /// Micro-clusters alive on this shard.
    pub live_clusters: usize,
    /// Novelty alerts this shard raised.
    pub alerts_raised: u64,
    /// Clustered records per second of engine wall-clock.
    pub points_per_sec: f64,
}

/// Final accounting returned by [`crate::StreamEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Total records processed.
    pub points_processed: u64,
    /// Micro-clusters alive at shutdown (summed across shards).
    pub live_clusters: usize,
    /// Micro-clusters created over the run.
    pub clusters_created: u64,
    /// Micro-clusters evicted over the run.
    pub clusters_evicted: u64,
    /// Snapshots retained in the pyramidal store.
    pub snapshots_retained: usize,
    /// Novelty alerts raised (including drained ones).
    pub alerts_raised: u64,
    /// Last stream tick observed.
    pub last_tick: Timestamp,
    /// Exact ECF merges folding shard states into the global view.
    pub merges: u64,
    /// Mean wall-clock cost of one merge, in microseconds (0 when no merge
    /// has run).
    pub mean_merge_micros: f64,
    /// Per-shard breakdown (one entry per shard worker).
    pub per_shard: Vec<ShardStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_fields_accessible() {
        let a = NoveltyAlert {
            timestamp: 10,
            position: 3,
            isolation: 42.0,
            baseline: 2.0,
            cluster_id: 7,
        };
        assert_eq!(a.timestamp, 10);
        assert!(a.isolation > a.baseline);
    }
}
