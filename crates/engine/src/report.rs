//! Alert and shutdown-report types.

use ustream_common::Timestamp;

/// A record flagged as unlike anything the clustering currently knows.
#[derive(Debug, Clone, PartialEq)]
pub struct NoveltyAlert {
    /// Arrival tick of the offending record.
    pub timestamp: Timestamp,
    /// Ordinal position in the stream (1-based).
    pub position: u64,
    /// Error-corrected distance to the nearest micro-cluster at arrival.
    pub isolation: f64,
    /// The running mean isolation the record was compared against.
    pub baseline: f64,
    /// Id of the micro-cluster the record ended up in.
    pub cluster_id: u64,
}

/// Final accounting returned by [`crate::StreamEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Total records processed.
    pub points_processed: u64,
    /// Micro-clusters alive at shutdown.
    pub live_clusters: usize,
    /// Micro-clusters created over the run.
    pub clusters_created: u64,
    /// Micro-clusters evicted over the run.
    pub clusters_evicted: u64,
    /// Snapshots retained in the pyramidal store.
    pub snapshots_retained: usize,
    /// Novelty alerts raised (including drained ones).
    pub alerts_raised: u64,
    /// Last stream tick observed.
    pub last_tick: Timestamp,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_fields_accessible() {
        let a = NoveltyAlert {
            timestamp: 10,
            position: 3,
            isolation: 42.0,
            baseline: 2.0,
            cluster_id: 7,
        };
        assert_eq!(a.timestamp, 10);
        assert!(a.isolation > a.baseline);
    }
}
