//! Alert and shutdown-report types.

use crate::load::{LoadStage, LoadTransition};
use std::fmt;
use ustream_common::Timestamp;

/// Aggregate health of the engine's shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthStatus {
    /// Every shard worker is alive and none has ever been restarted.
    Healthy,
    /// The engine is serving queries and ingesting, but at least one worker
    /// has panicked: it was either respawned (losing at most the points
    /// queued plus clustered since the last merge on that shard) or is
    /// permanently down while the remaining shards carry the stream.
    Degraded,
    /// Every shard worker is dead and ingestion is impossible. Horizon
    /// queries over already-merged history still work.
    Failed,
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Healthy => write!(f, "healthy"),
            Self::Degraded => write!(f, "degraded"),
            Self::Failed => write!(f, "failed"),
        }
    }
}

/// A record flagged as unlike anything the clustering currently knows.
#[derive(Debug, Clone, PartialEq)]
pub struct NoveltyAlert {
    /// Arrival tick of the offending record.
    pub timestamp: Timestamp,
    /// Ordinal position in the stream (1-based).
    pub position: u64,
    /// Error-corrected distance to the nearest micro-cluster at arrival.
    pub isolation: f64,
    /// The running mean isolation the record was compared against.
    pub baseline: f64,
    /// Id of the micro-cluster the record ended up in.
    pub cluster_id: u64,
}

/// Per-shard accounting inside an [`EngineReport`].
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (also the high bits of its global cluster ids).
    pub shard: usize,
    /// Records this shard has clustered.
    pub processed: u64,
    /// Records routed to this shard but not yet clustered (channel depth).
    pub queue_depth: u64,
    /// Micro-clusters alive on this shard.
    pub live_clusters: usize,
    /// Novelty alerts this shard raised.
    pub alerts_raised: u64,
    /// Clustered records per second of engine wall-clock.
    pub points_per_sec: f64,
    /// Times this shard's worker was respawned after a panic.
    pub restarts: u64,
    /// Panic payload of the most recent worker panic, if any.
    pub last_panic: Option<String>,
    /// Whether the worker thread is currently running. `false` after
    /// shutdown, or when the worker died and could not be respawned.
    pub alive: bool,
    /// Times the watchdog declared this shard stalled (backlog present,
    /// no progress within the stall deadline).
    pub stalls: u64,
    /// Whether the watchdog currently considers the shard stalled. Clears
    /// as soon as the processed counter moves again.
    pub stalled: bool,
    /// Approximate resident bytes of this shard's clusterer model.
    pub clusterer_bytes: usize,
}

/// Final accounting returned by [`crate::StreamEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Total records processed.
    pub points_processed: u64,
    /// Micro-clusters alive at shutdown (summed across shards).
    pub live_clusters: usize,
    /// Micro-clusters created over the run.
    pub clusters_created: u64,
    /// Micro-clusters evicted over the run.
    pub clusters_evicted: u64,
    /// Snapshots retained in the pyramidal store.
    pub snapshots_retained: usize,
    /// Novelty alerts raised (including drained ones).
    pub alerts_raised: u64,
    /// Last stream tick observed.
    pub last_tick: Timestamp,
    /// Exact ECF merges folding shard states into the global view.
    pub merges: u64,
    /// Mean wall-clock cost of one merge, in microseconds (0 when no merge
    /// has run).
    pub mean_merge_micros: f64,
    /// Aggregate worker health (see [`HealthStatus`]).
    pub health: HealthStatus,
    /// Points refused under [`ValidationPolicy::Reject`] or because their
    /// dimensionality never matched.
    ///
    /// [`ValidationPolicy::Reject`]: crate::ValidationPolicy::Reject
    pub points_rejected: u64,
    /// Points repaired under [`ValidationPolicy::Clamp`].
    ///
    /// [`ValidationPolicy::Clamp`]: crate::ValidationPolicy::Clamp
    pub points_clamped: u64,
    /// Points diverted under [`ValidationPolicy::Quarantine`] (including
    /// ones the bounded buffer has since dropped).
    ///
    /// [`ValidationPolicy::Quarantine`]: crate::ValidationPolicy::Quarantine
    pub points_quarantined: u64,
    /// Quarantined points evicted because the buffer overflowed.
    pub quarantine_dropped: u64,
    /// Points dropped under [`BackpressurePolicy::DropNewest`].
    ///
    /// [`BackpressurePolicy::DropNewest`]: crate::BackpressurePolicy::DropNewest
    pub backpressure_dropped: u64,
    /// Automatic checkpoints written successfully.
    pub checkpoints_written: u64,
    /// The most recent auto-checkpoint failure, if any.
    pub last_checkpoint_error: Option<String>,
    /// Current rung of the degradation ladder (always
    /// [`LoadStage::Normal`] when no load policy is configured).
    pub load_stage: LoadStage,
    /// Every walk of the degradation ladder, in order, timestamped in
    /// milliseconds since the engine started.
    pub load_transitions: Vec<LoadTransition>,
    /// Points dropped outright in [`LoadStage::Shed`].
    pub points_shed: u64,
    /// Points dropped by probabilistic admission in [`LoadStage::Sample`].
    /// Admitted counts can be rescaled by
    /// `(points_processed + points_sampled_out) / points_processed` when
    /// absolute magnitudes matter.
    pub points_sampled_out: u64,
    /// Admission rate (per mille) in effect while sampling; 1000 otherwise.
    pub sampling_keep_per_mille: u64,
    /// Stall events detected by the watchdog, summed across shards.
    pub stalls_detected: u64,
    /// Approximate bytes retained by the pyramidal snapshot store.
    pub snapshot_bytes: u64,
    /// Snapshots evicted by the memory budget (0 without a budget).
    pub snapshot_budget_evictions: u64,
    /// Effective horizon-error bound of the snapshot store: the paper's
    /// `1/α^(l−1)` when the budget never bit, inflated when eviction
    /// shortened the rings.
    pub horizon_error_bound: f64,
    /// Name of the kernel SIMD backend live in this process (`scalar`,
    /// `portable`, `avx2`, `avx512`, `neon`) — operators use this to
    /// confirm which compute path production is actually on.
    pub kernel_backend: &'static str,
    /// Corrupt or unreadable checkpoint generations the restore path had
    /// to skip when this engine was rebuilt from disk (0 for engines that
    /// never restored, or restored from the newest generation cleanly).
    /// Non-zero means the checkpoint directory is rotting while the
    /// fallback still succeeds — fix the disk before the last good
    /// generation goes too.
    pub restore_corrupt_generations: u64,
    /// Per-shard breakdown (one entry per shard worker).
    pub per_shard: Vec<ShardStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alert_fields_accessible() {
        let a = NoveltyAlert {
            timestamp: 10,
            position: 3,
            isolation: 42.0,
            baseline: 2.0,
            cluster_id: 7,
        };
        assert_eq!(a.timestamp, 10);
        assert!(a.isolation > a.baseline);
    }
}
