//! Input validation and poison-point quarantine.
//!
//! A stream engine that runs for days will eventually see malformed input:
//! sensors emit NaN on failure, error models divide by zero, upstream
//! producers replay out of order. A single NaN coordinate is *poison* — the
//! ECF sums absorb it and every centroid, variance and distance downstream
//! becomes NaN, silently destroying the whole cluster set. The core layer
//! guards its distance kernels (NaN never wins a nearest scan), but the
//! engine's first line of defence is to keep poison out of the shard
//! channels entirely.
//!
//! Producers choose a [`ValidationPolicy`]: fail fast ([`Reject`]), repair
//! in place ([`Clamp`]), or divert into a bounded [`Quarantine`] buffer for
//! offline inspection ([`Quarantine`]). Dimension mismatches are never
//! repairable — they are rejected under every policy, because no clamp can
//! invent coordinates.
//!
//! [`Reject`]: ValidationPolicy::Reject
//! [`Clamp`]: ValidationPolicy::Clamp
//! [`Quarantine`]: ValidationPolicy::Quarantine

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use ustream_common::{Timestamp, UncertainPoint};

/// What the engine does with a point that fails validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ValidationPolicy {
    /// Return the fault to the producer as an error. The point is counted
    /// but not enqueued. This is the default: a malformed point usually
    /// means a broken producer, and failing loudly beats clustering noise.
    #[default]
    Reject,
    /// Repair the point and ingest it: non-finite coordinates become `0`,
    /// out-of-range magnitudes saturate at `±f64::MAX`, invalid error
    /// entries become `0` (treat as deterministic), and non-monotone
    /// timestamps are lifted to the engine clock. Dimension mismatches are
    /// still rejected.
    Clamp,
    /// Silently divert the point into a bounded quarantine buffer the
    /// operator can drain and inspect; ingestion continues. When the buffer
    /// is full the oldest quarantined point is dropped (and counted).
    Quarantine,
}

/// What the engine does when every shard channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BackpressurePolicy {
    /// Block the producer until the shard drains — lossless, the default.
    #[default]
    Block,
    /// Drop the newly arriving point and count it. Keeps producers
    /// real-time at the cost of bounded data loss under overload.
    DropNewest,
    /// Return [`UStreamError::Backpressure`] to the producer immediately.
    ///
    /// [`UStreamError::Backpressure`]: ustream_common::UStreamError::Backpressure
    Error,
}

/// A specific reason a point failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum PointFault {
    /// The point's dimensionality differs from the engine's.
    DimensionMismatch {
        /// Engine dimensionality.
        expected: usize,
        /// The point's dimensionality.
        actual: usize,
    },
    /// A coordinate is NaN or infinite.
    NonFiniteValue {
        /// Offending dimension index.
        dim: usize,
    },
    /// An error standard deviation is NaN, infinite or negative.
    InvalidError {
        /// Offending dimension index.
        dim: usize,
    },
    /// The timestamp runs backwards past the engine clock (only checked
    /// when [`monotone timestamps`](crate::EngineConfig::with_monotone_timestamps)
    /// are enforced).
    NonMonotoneTimestamp {
        /// The point's timestamp.
        timestamp: Timestamp,
        /// The engine clock it fell behind.
        clock: Timestamp,
    },
}

impl fmt::Display for PointFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "point has {actual} dimensions, engine expects {expected}"
                )
            }
            Self::NonFiniteValue { dim } => {
                write!(f, "non-finite coordinate in dimension {dim}")
            }
            Self::InvalidError { dim } => {
                write!(
                    f,
                    "error standard deviation in dimension {dim} is negative or non-finite"
                )
            }
            Self::NonMonotoneTimestamp { timestamp, clock } => {
                write!(
                    f,
                    "timestamp {timestamp} runs behind the engine clock {clock}"
                )
            }
        }
    }
}

impl PointFault {
    /// Whether [`ValidationPolicy::Clamp`] can repair this fault.
    pub fn clampable(&self) -> bool {
        !matches!(self, Self::DimensionMismatch { .. })
    }
}

/// Checks one point against the engine's expectations.
///
/// `clock` is the monotonicity floor: `Some(t)` rejects timestamps `< t`
/// (pass `None` when out-of-order input is acceptable).
pub fn check_point(
    point: &UncertainPoint,
    dims: usize,
    clock: Option<Timestamp>,
) -> Result<(), PointFault> {
    if point.dims() != dims {
        return Err(PointFault::DimensionMismatch {
            expected: dims,
            actual: point.dims(),
        });
    }
    if let Some(dim) = point.values().iter().position(|v| !v.is_finite()) {
        return Err(PointFault::NonFiniteValue { dim });
    }
    if let Some(dim) = point
        .errors()
        .iter()
        .position(|e| !e.is_finite() || *e < 0.0)
    {
        return Err(PointFault::InvalidError { dim });
    }
    if let Some(clock) = clock {
        if point.timestamp() < clock {
            return Err(PointFault::NonMonotoneTimestamp {
                timestamp: point.timestamp(),
                clock,
            });
        }
    }
    Ok(())
}

/// Repairs a clampable fault (see [`ValidationPolicy::Clamp`]).
///
/// The caller must have established via [`PointFault::clampable`] that the
/// dimensionality is right; this function fixes everything else.
pub fn clamp_point(point: &UncertainPoint, clock: Option<Timestamp>) -> UncertainPoint {
    let values: Vec<f64> = point
        .values()
        .iter()
        .map(|v| {
            if v.is_nan() {
                0.0
            } else if *v == f64::INFINITY {
                f64::MAX
            } else if *v == f64::NEG_INFINITY {
                f64::MIN
            } else {
                *v
            }
        })
        .collect();
    let errors: Vec<f64> = point
        .errors()
        .iter()
        .map(|e| if e.is_finite() && *e >= 0.0 { *e } else { 0.0 })
        .collect();
    let timestamp = match clock {
        Some(clock) if point.timestamp() < clock => clock,
        _ => point.timestamp(),
    };
    UncertainPoint::new(values, errors, timestamp, point.label())
}

/// A point diverted into quarantine, with the reason it failed.
#[derive(Debug, Clone)]
pub struct QuarantinedPoint {
    /// The offending point, unmodified.
    pub point: UncertainPoint,
    /// Human-readable fault description.
    pub fault: String,
}

/// Bounded ring of quarantined points.
#[derive(Debug)]
pub struct Quarantine {
    buf: VecDeque<QuarantinedPoint>,
    capacity: usize,
    admitted: u64,
    dropped: u64,
}

impl Quarantine {
    /// Creates an empty quarantine holding at most `capacity` points.
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: VecDeque::new(),
            capacity,
            admitted: 0,
            dropped: 0,
        }
    }

    /// Admits a faulty point, evicting the oldest if the buffer is full.
    pub fn admit(&mut self, point: UncertainPoint, fault: &PointFault) {
        self.admitted += 1;
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(QuarantinedPoint {
            point,
            fault: fault.to_string(),
        });
    }

    /// Points currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total points ever quarantined (including since-dropped ones).
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Quarantined points evicted because the buffer overflowed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the held points for inspection, oldest first.
    pub fn drain(&mut self) -> Vec<QuarantinedPoint> {
        self.buf.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize, Value};

    fn pt(values: Vec<f64>, errors: Vec<f64>, t: Timestamp) -> UncertainPoint {
        UncertainPoint::new(values, errors, t, None)
    }

    /// Builds a point whose error vector bypasses the constructor assert,
    /// as a deserialised wire point would.
    fn raw_pt(values: Vec<f64>, errors: Vec<f64>, t: Timestamp) -> UncertainPoint {
        let template = pt(vec![0.0; values.len()], vec![0.0; errors.len()], t);
        let mut v = template.to_value();
        if let Value::Obj(fields) = &mut v {
            for (name, val) in fields.iter_mut() {
                if name == "values" {
                    *val = Value::Arr(values.iter().copied().map(Value::Float).collect());
                } else if name == "errors" {
                    *val = Value::Arr(errors.iter().copied().map(Value::Float).collect());
                }
            }
        }
        UncertainPoint::from_value(&v).expect("rebuild point")
    }

    #[test]
    fn clean_point_passes() {
        assert!(check_point(&pt(vec![1.0, 2.0], vec![0.1, 0.2], 5), 2, Some(3)).is_ok());
    }

    #[test]
    fn dimension_mismatch_detected_and_not_clampable() {
        let fault = check_point(&pt(vec![1.0], vec![0.1], 1), 2, None).unwrap_err();
        assert!(matches!(
            fault,
            PointFault::DimensionMismatch {
                expected: 2,
                actual: 1
            }
        ));
        assert!(!fault.clampable());
    }

    #[test]
    fn nan_and_infinite_values_detected() {
        let fault = check_point(&pt(vec![0.0, f64::NAN], vec![0.1, 0.1], 1), 2, None).unwrap_err();
        assert_eq!(fault, PointFault::NonFiniteValue { dim: 1 });
        let fault =
            check_point(&pt(vec![f64::INFINITY, 0.0], vec![0.1, 0.1], 1), 2, None).unwrap_err();
        assert_eq!(fault, PointFault::NonFiniteValue { dim: 0 });
    }

    #[test]
    fn bad_errors_detected() {
        let fault = check_point(&raw_pt(vec![0.0], vec![-1.0], 1), 1, None).unwrap_err();
        assert_eq!(fault, PointFault::InvalidError { dim: 0 });
        let fault = check_point(&raw_pt(vec![0.0], vec![f64::NAN], 1), 1, None).unwrap_err();
        assert_eq!(fault, PointFault::InvalidError { dim: 0 });
    }

    #[test]
    fn monotone_clock_enforced_only_when_asked() {
        let p = pt(vec![0.0], vec![0.1], 5);
        assert!(check_point(&p, 1, None).is_ok());
        assert!(check_point(&p, 1, Some(5)).is_ok());
        let fault = check_point(&p, 1, Some(9)).unwrap_err();
        assert!(matches!(
            fault,
            PointFault::NonMonotoneTimestamp {
                timestamp: 5,
                clock: 9
            }
        ));
    }

    #[test]
    fn clamp_repairs_everything_checkable() {
        let p = raw_pt(
            vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 3.5],
            vec![-0.5, f64::NAN, f64::INFINITY, 0.25],
            2,
        );
        let fixed = clamp_point(&p, Some(7));
        assert_eq!(fixed.values(), &[0.0, f64::MAX, f64::MIN, 3.5]);
        assert_eq!(fixed.errors(), &[0.0, 0.0, 0.0, 0.25]);
        assert_eq!(fixed.timestamp(), 7);
        assert!(check_point(&fixed, 4, Some(7)).is_ok());
    }

    #[test]
    fn quarantine_bounds_and_counts() {
        let mut q = Quarantine::new(2);
        let fault = PointFault::NonFiniteValue { dim: 0 };
        for t in 0..5u64 {
            q.admit(pt(vec![t as f64], vec![0.1], t), &fault);
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.admitted(), 5);
        assert_eq!(q.dropped(), 3);
        let held = q.drain();
        assert_eq!(held.len(), 2);
        // Oldest-first drain of the two most recent admissions.
        assert_eq!(held[0].point.timestamp(), 3);
        assert_eq!(held[1].point.timestamp(), 4);
        assert!(held[0].fault.contains("non-finite"));
        assert!(q.is_empty());
    }

    #[test]
    fn zero_capacity_quarantine_drops_everything() {
        let mut q = Quarantine::new(0);
        q.admit(
            pt(vec![0.0], vec![0.1], 1),
            &PointFault::NonFiniteValue { dim: 0 },
        );
        assert_eq!(q.len(), 0);
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.admitted(), 1);
    }

    #[test]
    fn policies_serde_round_trip() {
        for p in [
            ValidationPolicy::Reject,
            ValidationPolicy::Clamp,
            ValidationPolicy::Quarantine,
        ] {
            let v = p.to_value();
            assert_eq!(ValidationPolicy::from_value(&v).unwrap(), p);
        }
        for b in [
            BackpressurePolicy::Block,
            BackpressurePolicy::DropNewest,
            BackpressurePolicy::Error,
        ] {
            let v = b.to_value();
            assert_eq!(BackpressurePolicy::from_value(&v).unwrap(), b);
        }
    }
}
