//! The engine proper: worker thread, shared state and query API.

use crate::config::{EngineConfig, NoveltyBaseline};
use crate::report::{EngineReport, NoveltyAlert};
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread::JoinHandle;
use umicro::distance::corrected_sq_distance;
use umicro::{
    compare_windows, DecayedUMicro, Ecf, EvolutionReport, HorizonAnalyzer, MacroClustering,
    MicroCluster, UMicro,
};
use ustream_common::{Result, Timestamp, UncertainPoint};
use ustream_snapshot::ClusterSetSnapshot;

enum Command {
    Point(Box<UncertainPoint>),
    /// Barrier: reply once every previously pushed point is clustered.
    Flush(Sender<()>),
    Shutdown,
}

/// Either clustering variant behind one interface.
enum Clusterer {
    Plain(UMicro),
    Decayed(DecayedUMicro),
}

impl Clusterer {
    fn insert(&mut self, p: &UncertainPoint) -> umicro::InsertOutcome {
        match self {
            Clusterer::Plain(a) => a.insert(p),
            Clusterer::Decayed(a) => a.insert(p),
        }
    }

    fn micro_clusters(&self) -> &[MicroCluster] {
        match self {
            Clusterer::Plain(a) => a.micro_clusters(),
            Clusterer::Decayed(a) => a.micro_clusters(),
        }
    }

    fn snapshot(&mut self, now: Timestamp) -> ClusterSetSnapshot<Ecf> {
        match self {
            Clusterer::Plain(a) => a.snapshot(),
            Clusterer::Decayed(a) => a.snapshot_at(now),
        }
    }

    fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
        match self {
            Clusterer::Plain(a) => a.macro_cluster(k, seed),
            Clusterer::Decayed(a) => a.macro_cluster(k, seed),
        }
    }
}

struct State {
    alg: Clusterer,
    horizons: HorizonAnalyzer,
    config: EngineConfig,
    processed: u64,
    created: u64,
    evicted: u64,
    last_tick: Timestamp,
    // Novelty tracking.
    isolation_mean: f64,
    isolation_quantile: ustream_common::P2Quantile,
    isolation_samples: u64,
    alerts: VecDeque<NoveltyAlert>,
    alerts_raised: u64,
}

impl State {
    fn ingest(&mut self, p: &UncertainPoint) {
        self.processed += 1;
        if p.timestamp() > self.last_tick {
            self.last_tick = p.timestamp();
        }

        // Novelty check before insertion (the cluster set the record met).
        let isolation = match self.config.novelty_factor {
            Some(_) if !self.alg.micro_clusters().is_empty() => Some(
                self.alg
                    .micro_clusters()
                    .iter()
                    .map(|c| corrected_sq_distance(p, &c.ecf))
                    .fold(f64::INFINITY, f64::min)
                    .sqrt(),
            ),
            _ => None,
        };

        let out = self.alg.insert(p);
        if out.created {
            self.created += 1;
        }
        if out.evicted.is_some() {
            self.evicted += 1;
        }

        if let (Some(factor), Some(isolation)) = (self.config.novelty_factor, isolation) {
            let baseline = match self.config.novelty_baseline {
                NoveltyBaseline::Mean => self.isolation_mean,
                NoveltyBaseline::Quantile(_) => {
                    self.isolation_quantile.estimate().unwrap_or(0.0)
                }
            };
            // Warm-up: need a stable baseline before alerting.
            if self.isolation_samples >= 100 && isolation > factor * baseline.max(1e-12) {
                self.alerts_raised += 1;
                self.alerts.push_back(NoveltyAlert {
                    timestamp: p.timestamp(),
                    position: self.processed,
                    isolation,
                    baseline,
                    cluster_id: out.cluster_id,
                });
                while self.alerts.len() > self.config.max_alerts {
                    self.alerts.pop_front();
                }
            } else {
                // Only non-alerting records update the baseline, so a burst
                // of outliers cannot talk the monitor into accepting them.
                self.isolation_samples += 1;
                let n = self.isolation_samples as f64;
                self.isolation_mean += (isolation - self.isolation_mean) / n;
                self.isolation_quantile.observe(isolation);
            }
        }

        if self.processed.is_multiple_of(self.config.snapshot_every) {
            let now = self.last_tick;
            let snap = self.alg.snapshot(now);
            self.horizons.record_snapshot(now, snap);
        }
    }

    fn report(&self) -> EngineReport {
        EngineReport {
            points_processed: self.processed,
            live_clusters: self.alg.micro_clusters().len(),
            clusters_created: self.created,
            clusters_evicted: self.evicted,
            snapshots_retained: self.horizons.store().len(),
            alerts_raised: self.alerts_raised,
            last_tick: self.last_tick,
        }
    }
}

/// The embeddable analytics engine. See the crate docs for an example.
///
/// All query methods are callable from any thread while ingestion is in
/// flight; they take the state lock briefly and never block on the channel.
pub struct StreamEngine {
    state: Arc<Mutex<State>>,
    tx: Sender<Command>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl StreamEngine {
    /// Starts the worker thread.
    pub fn start(config: EngineConfig) -> Self {
        let alg = match config.decay_half_life {
            Some(hl) => Clusterer::Decayed(DecayedUMicro::with_half_life(
                config.umicro.clone(),
                hl,
            )),
            None => Clusterer::Plain(UMicro::new(config.umicro.clone())),
        };
        let state = Arc::new(Mutex::new(State {
            alg,
            horizons: HorizonAnalyzer::new(config.pyramid),
            processed: 0,
            created: 0,
            evicted: 0,
            last_tick: 0,
            isolation_mean: 0.0,
            isolation_quantile: ustream_common::P2Quantile::new(
                match config.novelty_baseline {
                    NoveltyBaseline::Quantile(q) => q,
                    NoveltyBaseline::Mean => 0.95, // unused but kept warm
                },
            ),
            isolation_samples: 0,
            alerts: VecDeque::new(),
            alerts_raised: 0,
            config,
        }));

        let (tx, rx) = bounded::<Command>(state.lock().config.channel_capacity);
        let worker_state = Arc::clone(&state);
        let handle = std::thread::Builder::new()
            .name("ustream-engine".into())
            .spawn(move || {
                for cmd in rx {
                    match cmd {
                        Command::Point(p) => worker_state.lock().ingest(&p),
                        Command::Flush(reply) => {
                            // Everything pushed before the flush has been
                            // drained from the channel by now.
                            let _ = reply.send(());
                        }
                        Command::Shutdown => break,
                    }
                }
            })
            .expect("spawn engine worker");

        Self {
            state,
            tx,
            worker: Mutex::new(Some(handle)),
        }
    }

    /// Enqueues one record for clustering (blocks only on backpressure).
    pub fn push(&self, point: UncertainPoint) {
        self.tx
            .send(Command::Point(Box::new(point)))
            .expect("engine worker alive");
    }

    /// Blocks until every previously pushed record has been clustered.
    pub fn flush(&self) {
        let (reply_tx, reply_rx) = bounded(1);
        if self.tx.send(Command::Flush(reply_tx)).is_ok() {
            let _ = reply_rx.recv();
        }
    }

    /// Records processed so far.
    pub fn points_processed(&self) -> u64 {
        self.state.lock().processed
    }

    /// Snapshot of the live micro-clusters (cloned out of the engine).
    pub fn micro_clusters(&self) -> Vec<MicroCluster> {
        self.state.lock().alg.micro_clusters().to_vec()
    }

    /// Macro-clusters of the live state.
    pub fn macro_clusters(&self, k: usize, seed: u64) -> MacroClustering {
        self.state.lock().alg.macro_cluster(k, seed)
    }

    /// Micro-cluster statistics of the trailing window of `h` ticks.
    pub fn horizon_clusters(&self, h: u64) -> Result<ClusterSetSnapshot<Ecf>> {
        let state = self.state.lock();
        let now = state.last_tick;
        state.horizons.horizon_clusters(now, h)
    }

    /// Macro-clusters of the trailing window of `h` ticks.
    pub fn horizon_macro_clusters(&self, h: u64, k: usize, seed: u64) -> Result<MacroClustering> {
        let state = self.state.lock();
        let now = state.last_tick;
        state.horizons.macro_cluster_horizon(now, h, k, seed)
    }

    /// Evolution between the two most recent windows of `h` ticks each:
    /// `(now − 2h, now − h]` vs `(now − h, now]`.
    pub fn evolution(&self, h: u64, min_weight: f64) -> Result<EvolutionReport> {
        let state = self.state.lock();
        let now = state.last_tick;
        let recent = state.horizons.horizon_clusters(now, h)?;
        let earlier_end = now.saturating_sub(h);
        // When the earlier window would reach past the stream origin, the
        // whole prefix up to `earlier_end` *is* that window.
        let earlier = match state.horizons.horizon_clusters(earlier_end, h) {
            Ok(w) => w,
            Err(_) => state
                .horizons
                .clusters_at(earlier_end)
                .cloned()
                .ok_or(ustream_common::UStreamError::HorizonUnavailable { requested: h })?,
        };
        Ok(compare_windows(&earlier, &recent, min_weight))
    }

    /// Drains the pending novelty alerts.
    pub fn drain_alerts(&self) -> Vec<NoveltyAlert> {
        self.state.lock().alerts.drain(..).collect()
    }

    /// Current run statistics (without stopping the engine).
    pub fn stats(&self) -> EngineReport {
        self.state.lock().report()
    }

    /// Stops the worker and returns the final accounting. Subsequent calls
    /// return the report of the already-stopped engine.
    pub fn shutdown(&self) -> EngineReport {
        let _ = self.tx.send(Command::Shutdown);
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        self.state.lock().report()
    }
}

impl Drop for StreamEngine {
    fn drop(&mut self) {
        let _ = self.tx.send(Command::Shutdown);
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umicro::UMicroConfig;

    fn pt(x: f64, y: f64, t: Timestamp) -> UncertainPoint {
        UncertainPoint::new(vec![x, y], vec![0.3, 0.3], t, None)
    }

    fn engine(n_micro: usize) -> StreamEngine {
        StreamEngine::start(EngineConfig::new(UMicroConfig::new(n_micro, 2).unwrap()))
    }

    #[test]
    fn ingests_and_counts() {
        let e = engine(8);
        for t in 1..=500u64 {
            let x = if t % 2 == 0 { 0.0 } else { 20.0 };
            e.push(pt(x, x, t));
        }
        e.flush();
        assert_eq!(e.points_processed(), 500);
        assert!(!e.micro_clusters().is_empty());
        let report = e.shutdown();
        assert_eq!(report.points_processed, 500);
        assert_eq!(report.last_tick, 500);
        assert!(report.snapshots_retained > 0);
    }

    #[test]
    fn macro_query_during_ingestion() {
        let e = engine(8);
        for t in 1..=200u64 {
            let x = if t % 2 == 0 { 0.0 } else { 30.0 };
            e.push(pt(x, -x, t));
        }
        e.flush();
        let mac = e.macro_clusters(2, 3);
        assert_eq!(mac.k(), 2);
        let mut lo = false;
        let mut hi = false;
        for c in &mac.centroids {
            if c[0] < 15.0 {
                lo = true;
            } else {
                hi = true;
            }
        }
        assert!(lo && hi, "centroids: {:?}", mac.centroids);
    }

    #[test]
    fn horizon_query_sees_recent_regime() {
        let e = engine(8);
        for t in 1..=1_024u64 {
            let x = if t <= 768 { 0.0 } else { 50.0 };
            e.push(pt(x, 0.0, t));
        }
        e.flush();
        let window = e.horizon_clusters(128).unwrap();
        let total = window.total_count();
        let new_mass: f64 = window
            .clusters
            .values()
            .filter(|c| ustream_common::AdditiveFeature::centroid(*c)[0] > 25.0)
            .map(ustream_common::AdditiveFeature::count)
            .sum();
        assert!(new_mass / total > 0.9, "{new_mass}/{total}");
        e.shutdown();
    }

    #[test]
    fn evolution_detects_regime_change() {
        let e = engine(12);
        for t in 1..=1_024u64 {
            let x = if t <= 512 { 0.0 } else { 60.0 };
            e.push(pt(x, 0.0, t));
        }
        e.flush();
        // Windows (0,512] vs (512,1024]: complete replacement.
        let report = e.evolution(512, 1.0).unwrap();
        assert!(report.emerged() > 0, "no emerged clusters: {report:?}");
        assert!(
            report.turbulence() > 0.5,
            "regime change should be turbulent: {}",
            report.turbulence()
        );
        e.shutdown();
    }

    #[test]
    fn novelty_alert_fires_on_outlier() {
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_novelty_factor(Some(4.0)),
        );
        // Stable traffic, then one wild outlier.
        for t in 1..=400u64 {
            let x = (t % 7) as f64 * 0.1;
            e.push(pt(x, -x, t));
        }
        e.push(pt(10_000.0, -10_000.0, 401));
        for t in 402..=420u64 {
            e.push(pt(0.2, -0.2, t));
        }
        e.flush();
        let alerts = e.drain_alerts();
        assert!(
            alerts.iter().any(|a| a.timestamp == 401),
            "outlier not flagged: {alerts:?}"
        );
        let report = e.shutdown();
        assert!(report.alerts_raised >= 1);
    }

    #[test]
    fn quantile_baseline_novelty_alerting() {
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_novelty_factor(Some(4.0))
                .with_novelty_quantile(0.95),
        );
        for t in 1..=400u64 {
            let x = (t % 7) as f64 * 0.1;
            e.push(pt(x, -x, t));
        }
        e.push(pt(5_000.0, -5_000.0, 401));
        e.flush();
        let alerts = e.drain_alerts();
        assert!(
            alerts.iter().any(|a| a.timestamp == 401),
            "quantile baseline missed the outlier: {alerts:?}"
        );
        // The quantile baseline is far sturdier than the mean against a
        // heavy tail: regular traffic raised no alerts.
        assert!(alerts.len() <= 3, "too many false alerts: {}", alerts.len());
        e.shutdown();
    }

    #[test]
    fn decayed_engine_runs() {
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_decay_half_life(200.0)
                .with_snapshot_every(8),
        );
        for t in 1..=300u64 {
            e.push(pt((t % 3) as f64, 0.0, t));
        }
        e.flush();
        let stats = e.stats();
        assert_eq!(stats.points_processed, 300);
        // Snapshot cadence of 8 → roughly 300/8 recordings (retention caps).
        assert!(stats.snapshots_retained > 0);
        e.shutdown();
    }

    #[test]
    fn multi_producer_ingestion() {
        let e = Arc::new(engine(16));
        let mut handles = Vec::new();
        for producer in 0..4u64 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let t = producer * 250 + i + 1;
                    let x = (producer * 25) as f64;
                    e.push(pt(x, x, t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        e.flush();
        assert_eq!(e.points_processed(), 1_000);
        let report = e.shutdown();
        assert_eq!(report.points_processed, 1_000);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let e = engine(4);
        e.push(pt(0.0, 0.0, 1));
        let a = e.shutdown();
        let b = e.shutdown();
        assert_eq!(a.points_processed, b.points_processed);
    }
}
