//! The engine proper: shard workers, shared state and query API.
//!
//! ## Sharded topology
//!
//! Ingestion is spread across `config.shards` independent workers. Each
//! shard owns a bounded channel, a clusterer (any
//! [`OnlineClusterer<Summary = Ecf>`], boxed), and a novelty monitor; the
//! hot path locks only the shard's own mutex, so shards never contend with
//! each other while clustering. Records are routed round-robin.
//!
//! Because the ECF is additive (Property 2.1 of the paper), folding the
//! shard cluster sets into one global view is *exact*: the periodic merge
//! (every `snapshot_every` records, globally counted) unions the per-shard
//! summaries under namespaced ids ([`ustream_snapshot::namespaced_id`]) and
//! files the result in the pyramidal store, which serves all horizon and
//! evolution queries. With `shards = 1` the engine reproduces the classic
//! single-worker behaviour exactly (shard 0's ids are the identity
//! mapping).
//!
//! ## Fault tolerance
//!
//! Three independent defences keep a long-running engine alive:
//!
//! * **Shard supervision** — each worker's command loop runs under
//!   [`std::panic::catch_unwind`]. A panic is recorded (restart count +
//!   payload in [`ShardStats`]), the shard's clusterer is rebuilt from the
//!   factory and re-seeded from the last globally merged snapshot, and the
//!   worker resumes draining its channel. At most the in-flight record is
//!   lost. [`EngineReport::health`] surfaces the aggregate state.
//! * **Poison-point validation** — producers pass through
//!   [`crate::validate::check_point`] before a record reaches a channel;
//!   the configured [`ValidationPolicy`] rejects, repairs or quarantines
//!   malformed input, so a NaN can never reach the ECF sums.
//! * **Checkpoint/restore** — [`StreamEngine::checkpoint`] persists the
//!   complete engine state atomically; [`StreamEngine::restore`] resumes
//!   from it bit-for-bit (see [`crate::checkpoint`]).
//!
//! ## Overload resilience
//!
//! When a [`WatchdogConfig`] or [`LoadPolicy`] is configured, a *governor*
//! thread observes the engine from the outside using only the lock-free
//! per-shard counters — the ingest hot path carries zero extra bookkeeping:
//!
//! * **Watchdog** — a shard with a non-empty backlog whose `processed`
//!   counter has not moved within the stall deadline is flagged stalled
//!   ([`ShardStats::stalled`], health turns `Degraded`) and, when respawn
//!   is enabled, gets a *rescue consumer*: an extra worker thread cloned
//!   onto the same MPMC channel. The wedged worker keeps whatever it is
//!   stuck on; the rescue drains the backlog behind it (ingestion
//!   serialises on the shard state lock, so correctness is untouched).
//! * **Degradation ladder** — sustained channel pressure walks
//!   [`LoadStage`] rungs: widen the merge cadence, then sample admissions
//!   uniformly (unbiased up to the recorded keep rate), then shed with a
//!   count. Pressure clearing walks back down. Every transition is
//!   timestamped into [`EngineReport::load_transitions`].
//!
//! The governor deliberately takes **no shard state locks** — a stalled
//! worker may be wedged while holding one, and the governor must keep
//! diagnosing regardless.
//!
//! Lock ordering (deadlock freedom): a worker's ingest takes its own shard
//! lock, then at most the alert queue lock; the merge and the checkpoint
//! builder take the horizon lock first and then shard locks one at a time,
//! never while an ingest lock is held by the same thread. Shard recovery
//! clones the last merged snapshot out of its mutex *before* taking the
//! shard lock. No path acquires the horizon lock while holding a shard
//! lock. The governor takes no shard state locks at all.

use crate::checkpoint::{self, EngineCheckpoint, ShardCheckpoint, SnapshotEntry};
use crate::config::{EngineConfig, NoveltyBaseline};
use crate::load::{DrainOutcome, LoadStage, LoadTransition};
use crate::report::{EngineReport, HealthStatus, NoveltyAlert, ShardStats};
use crate::validate::{
    self, BackpressurePolicy, PointFault, Quarantine, QuarantinedPoint, ValidationPolicy,
};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use umicro::macrocluster::macro_cluster_ecfs;
use umicro::{
    compare_windows, ClustererState, DecayedUMicro, Ecf, EvolutionReport, HorizonAnalyzer,
    MacroClustering, MicroCluster, OnlineClusterer, QueryStats, UMicro,
};
use ustream_common::{P2Quantile, Result, UStreamError, UncertainPoint};
use ustream_snapshot::{
    merge_namespaced, namespaced_id, shard_of_id, ClusterSetSnapshot, SHARD_ID_BITS,
};

/// The boxed clusterer type each shard runs by default.
pub type DynClusterer = Box<dyn OnlineClusterer<Summary = Ecf>>;

/// The factory shards are (re)built from — invoked at startup and again
/// whenever a panicked worker respawns its clusterer.
type ClustererFactory = Box<dyn Fn(usize) -> DynClusterer + Send + Sync>;

enum Command {
    Point(Box<UncertainPoint>),
    /// A batch routed to this shard in one channel hop.
    Batch(Vec<UncertainPoint>),
    /// Barrier: reply once every previously routed record is clustered.
    Flush(Sender<()>),
    Shutdown,
}

/// Per-shard novelty baseline state.
///
/// The P² quantile sketch is allocated only when the configuration actually
/// baselines on a quantile — under [`NoveltyBaseline::Mean`] no sketch
/// exists and no per-point quantile bookkeeping runs.
struct NoveltyMonitor {
    factor: Option<f64>,
    baseline: NoveltyBaseline,
    mean: f64,
    quantile: Option<P2Quantile>,
    samples: u64,
}

impl NoveltyMonitor {
    fn new(config: &EngineConfig) -> Self {
        let quantile = match (config.novelty_factor, config.novelty_baseline) {
            (Some(_), NoveltyBaseline::Quantile(q)) => Some(P2Quantile::new(q)),
            _ => None,
        };
        Self {
            factor: config.novelty_factor,
            baseline: config.novelty_baseline,
            mean: 0.0,
            quantile,
            samples: 0,
        }
    }

    fn baseline_estimate(&self) -> f64 {
        match self.baseline {
            NoveltyBaseline::Mean => self.mean,
            NoveltyBaseline::Quantile(_) => self
                .quantile
                .as_ref()
                .and_then(P2Quantile::estimate)
                .unwrap_or(0.0),
        }
    }

    fn observe_ordinary(&mut self, isolation: f64) {
        self.samples += 1;
        let n = self.samples as f64;
        self.mean += (isolation - self.mean) / n;
        if let Some(q) = self.quantile.as_mut() {
            q.observe(isolation);
        }
    }
}

/// State a shard worker mutates under its own lock.
struct ShardState {
    alg: DynClusterer,
    created: u64,
    evicted: u64,
    novelty: NoveltyMonitor,
}

/// Lock-free per-shard instrumentation, readable from any thread.
#[derive(Default)]
struct ShardCounters {
    enqueued: AtomicU64,
    processed: AtomicU64,
    alerts: AtomicU64,
}

/// The shareable part of a shard: state + counters, no channel end.
struct ShardHandle {
    state: Mutex<ShardState>,
    counters: ShardCounters,
    /// Times the worker was respawned after a panic.
    restarts: AtomicU64,
    /// Payload of the most recent worker panic.
    last_panic: Mutex<Option<String>>,
    /// Whether the worker thread is currently running.
    alive: AtomicBool,
    /// Consumers ever attached to this shard's channel (the original
    /// worker plus rescue consumers). Shutdown sends this many `Shutdown`
    /// commands so every consumer — including a wedged one that later
    /// wakes — gets one.
    spawned: AtomicU64,
    /// Stall events the watchdog charged to this shard.
    stalls: AtomicU64,
    /// Whether the watchdog currently considers this shard stalled
    /// (cleared as soon as the processed counter moves).
    stalled: AtomicBool,
}

/// State shared by all shards and the query API.
struct Global {
    config: EngineConfig,
    /// Rebuilds a shard's clusterer (startup and post-panic recovery).
    factory: ClustererFactory,
    /// Global records-processed ordinal; drives the merge cadence.
    processed: AtomicU64,
    last_tick: AtomicU64,
    alerts_raised: AtomicU64,
    merges: AtomicU64,
    merge_nanos: AtomicU64,
    /// Round-robin router cursor (here rather than on the engine so a
    /// checkpoint built from a worker thread can capture it).
    router: AtomicU64,
    /// Raised before shutdown commands go out, so a worker that panics
    /// while draining its final commands does not try to respawn.
    shutting_down: AtomicBool,
    horizons: Mutex<HorizonAnalyzer>,
    alerts: Mutex<VecDeque<NoveltyAlert>>,
    /// The most recent globally merged cluster set — the seed a respawned
    /// shard restores its slice from.
    last_merge: Mutex<Option<ClusterSetSnapshot<Ecf>>>,
    quarantine: Mutex<Quarantine>,
    rejected: AtomicU64,
    clamped: AtomicU64,
    backpressure_dropped: AtomicU64,
    checkpoints_written: AtomicU64,
    /// Highest `processed / checkpoint_every` epoch already checkpointed
    /// (so concurrent workers write each auto-checkpoint exactly once).
    checkpoint_epoch: AtomicU64,
    last_checkpoint_error: Mutex<Option<String>>,
    /// Engine start instant; degradation transitions are stamped against it.
    started: Instant,
    /// Current [`LoadStage`] (compact `as_u8` encoding).
    load_stage: AtomicU8,
    load_transitions: Mutex<Vec<LoadTransition>>,
    /// Points dropped outright in [`LoadStage::Shed`].
    points_shed: AtomicU64,
    /// Points dropped by probabilistic admission in [`LoadStage::Sample`].
    sampled_out: AtomicU64,
    /// Admission ordinal driving the deterministic sampling gate.
    admit_seq: AtomicU64,
    /// The merge/snapshot cadence workers actually honour —
    /// `snapshot_every` normally, widened on the ladder.
    merge_every_effective: AtomicU64,
    /// Admission rate (per mille) the sampling gate applies.
    keep_per_mille: AtomicU64,
    /// Stall events detected by the watchdog, across shards.
    stalls_detected: AtomicU64,
    /// Raised by [`StreamEngine::shutdown_drain`]: admission refused while
    /// the channels flush.
    draining: AtomicBool,
    /// The report cached by the first shutdown; later shutdowns return it.
    final_report: Mutex<Option<EngineReport>>,
    /// Rescue consumers the governor attached (joined at shutdown).
    extra_workers: Mutex<Vec<JoinHandle<()>>>,
    /// Corrupt/unreadable checkpoint generations skipped while restoring
    /// this engine. Zero for engines that never restored, or restored from
    /// the newest generation cleanly. Surfaced in [`EngineReport`] so a
    /// silently-degrading checkpoint directory shows up in stats rather
    /// than only in logs nobody reads.
    restore_corrupt_generations: AtomicU64,
}

impl Global {
    fn load_stage(&self) -> LoadStage {
        LoadStage::from_u8(self.load_stage.load(Ordering::Relaxed)) // relaxed-ok: stage byte is self-contained; a lagging reader acts one poll late at worst
    }

    /// Installs `stage`: updates the effective merge cadence and sampling
    /// rate, then publishes the stage itself.
    fn apply_stage(&self, stage: LoadStage) {
        let policy = self.config.load_policy.unwrap_or_default();
        let widen = if stage >= LoadStage::WidenMerge {
            policy.widen_factor.max(1)
        } else {
            1
        };
        self.merge_every_effective.store(
            self.config.snapshot_every.saturating_mul(widen).max(1),
            Ordering::Relaxed, // relaxed-ok: statistical read for reports/decisions that tolerate lag
        );
        self.keep_per_mille
            .store(policy.keep_per_mille.clamp(1, 1000), Ordering::Relaxed); // relaxed-ok: sampling knob; any recently published value keeps the gate unbiased
        self.load_stage.store(stage.as_u8(), Ordering::Relaxed); // relaxed-ok: stage byte is self-contained; a lagging reader acts one poll late at worst
    }

    fn record_transition(&self, from: LoadStage, to: LoadStage, pressure: f64) {
        self.load_transitions.lock().push(LoadTransition {
            at_ms: self.started.elapsed().as_millis() as u64,
            from,
            to,
            pressure,
        });
    }
}

/// Clusters one record under an already-held shard lock, maintaining the
/// shard's creation/eviction tallies and novelty monitor. `position` is the
/// record's global ordinal (used in alert records).
fn cluster_one(
    global: &Global,
    shard: &ShardHandle,
    shard_idx: usize,
    st: &mut ShardState,
    p: &UncertainPoint,
    position: u64,
) {
    // Novelty check before insertion (the cluster set the record met),
    // in the clusterer's own geometry.
    let isolation = match st.novelty.factor {
        Some(_) => st.alg.isolation(p),
        None => None,
    };

    let out = st.alg.insert(p);
    if out.created {
        st.created += 1;
    }
    if out.evicted.is_some() {
        st.evicted += 1;
    }

    if let (Some(factor), Some(isolation)) = (st.novelty.factor, isolation) {
        let baseline = st.novelty.baseline_estimate();
        // Warm-up: need a stable baseline before alerting.
        if st.novelty.samples >= 100 && isolation > factor * baseline.max(1e-12) {
            shard.counters.alerts.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
            global.alerts_raised.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
            let mut alerts = global.alerts.lock();
            alerts.push_back(NoveltyAlert {
                timestamp: p.timestamp(),
                position,
                isolation,
                baseline,
                cluster_id: namespaced_id(shard_idx, out.cluster_id),
            });
            while alerts.len() > global.config.max_alerts {
                alerts.pop_front();
            }
        } else {
            // Only non-alerting records update the baseline, so a burst
            // of outliers cannot talk the monitor into accepting them.
            st.novelty.observe_ordinary(isolation);
        }
    }
}

/// Clusters one record on its shard; returns `true` when this record
/// crossed a merge boundary (the caller then runs the merge with no shard
/// lock held).
fn ingest(global: &Global, shard: &ShardHandle, shard_idx: usize, p: &UncertainPoint) -> bool {
    let position = global.processed.fetch_add(1, Ordering::Relaxed) + 1; // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
    global.last_tick.fetch_max(p.timestamp(), Ordering::Relaxed); // relaxed-ok: monotone watermark; readers tolerate a lagging value

    {
        let mut st = shard.state.lock();
        cluster_one(global, shard, shard_idx, &mut st, p, position);
    }

    shard.counters.processed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                                                              // relaxed-ok: merge-cadence knob; a worker may pick up the new cadence one record late
    position.is_multiple_of(global.merge_every_effective.load(Ordering::Relaxed).max(1))
}

/// Clusters a routed batch in sub-chunks: one global-ordinal reservation,
/// one shard-lock acquisition and — when novelty detection is off — one
/// [`OnlineClusterer::insert_batch`] call per sub-chunk, instead of one of
/// each per point. Sub-chunks are capped at `snapshot_every` records so the
/// merge cadence stays within one chunk of the per-point path; any merge
/// boundary the chunk crosses triggers [`merge_and_record`] after the shard
/// lock is released.
fn ingest_batch(
    global: &Global,
    shard: &ShardHandle,
    shard_idx: usize,
    points: &[UncertainPoint],
    all_shards: &[Arc<ShardHandle>],
) {
    let cap = global.config.snapshot_every.clamp(1, 4_096) as usize;
    let mut outcomes = Vec::with_capacity(cap);
    for chunk in points.chunks(cap) {
        let len = chunk.len() as u64;
        let start = global.processed.fetch_add(len, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
        let end = start + len;
        if let Some(max_tick) = chunk.iter().map(UncertainPoint::timestamp).max() {
            global.last_tick.fetch_max(max_tick, Ordering::Relaxed); // relaxed-ok: monotone watermark; readers tolerate a lagging value
        }

        {
            let mut st = shard.state.lock();
            if st.novelty.factor.is_some() {
                // Novelty needs the pre-insertion isolation of every record,
                // so the chunk still walks point by point — but under a
                // single lock acquisition.
                for (i, p) in chunk.iter().enumerate() {
                    cluster_one(global, shard, shard_idx, &mut st, p, start + i as u64 + 1);
                }
            } else {
                outcomes.clear();
                st.alg.insert_batch(chunk, &mut outcomes);
                for out in &outcomes {
                    if out.created {
                        st.created += 1;
                    }
                    if out.evicted.is_some() {
                        st.evicted += 1;
                    }
                }
            }
        }

        shard.counters.processed.fetch_add(len, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
        let every = global.merge_every_effective.load(Ordering::Relaxed).max(1); // relaxed-ok: merge-cadence knob; a worker may pick up the new cadence one record late
        if end / every != start / every {
            merge_and_record(global, all_shards);
        }
    }
}

/// Folds every shard's cluster set into one namespaced global snapshot,
/// files it in the pyramidal store and retains it as the recovery seed.
/// Serialised on the horizon lock; shard locks are taken one at a time, so
/// ingestion on other shards stalls only for its own shard's brief
/// snapshot.
fn merge_and_record(global: &Global, shards: &[Arc<ShardHandle>]) {
    let started = Instant::now();
    let mut horizons = global.horizons.lock();
    let now = global.last_tick.load(Ordering::Relaxed); // relaxed-ok: monotone watermark; readers tolerate a lagging value
    let merged = merge_namespaced(
        shards
            .iter()
            .enumerate()
            .map(|(i, h)| (i, h.state.lock().alg.snapshot_at(now))),
    );
    horizons.record_snapshot(now, merged.clone());
    drop(horizons);
    *global.last_merge.lock() = Some(merged);
    global.merges.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
    global
        .merge_nanos
        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed); // relaxed-ok: monotone duration accumulator; only read for stats
}

/// Renders a panic payload into something a [`ShardStats::last_panic`]
/// reader can act on.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Rebuilds shard `idx`'s clusterer after a panic, seeding it with the
/// shard's slice of the last globally merged snapshot so already-merged
/// history is not lost. Returns `false` when recovery is impossible (the
/// factory itself panicked) — the worker then stays down.
fn recover_shard(global: &Global, shards: &[Arc<ShardHandle>], idx: usize) -> bool {
    // The factory is caller-supplied code: it gets the same panic fence as
    // the ingest loop, because a respawn that dies must not kill the engine.
    let fresh = || catch_unwind(AssertUnwindSafe(|| (global.factory)(idx))).ok();
    let Some(mut alg) = fresh() else {
        return false;
    };

    // Clone the seed out before touching the shard lock (lock ordering).
    let seed = global.last_merge.lock().clone();
    if let Some(merged) = seed {
        let mask = (1u64 << SHARD_ID_BITS) - 1;
        let mut ids = Vec::new();
        let mut summaries = Vec::new();
        for (gid, ecf) in &merged.clusters {
            if shard_of_id(*gid) == idx {
                ids.push(gid & mask);
                summaries.push(ecf.clone());
            }
        }
        let state = ClustererState {
            next_id: ids.iter().max().map_or(0, |m| m + 1),
            ids,
            summaries,
            points_processed: shards[idx].counters.processed.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            since_refresh: 0,
            // Empty → the importer recomputes global variances from the
            // summaries.
            variances: Vec::new(),
            last_seen: global.last_tick.load(Ordering::Relaxed), // relaxed-ok: monotone watermark; readers tolerate a lagging value
        };
        if state.validate().is_ok() && alg.import_state(&state).is_err() {
            // A failed import may leave the clusterer half-seeded; fall
            // back to a pristine instance (history stays queryable through
            // the pyramidal store either way).
            match fresh() {
                Some(a) => alg = a,
                None => return false,
            }
        }
    }

    let mut st = shards[idx].state.lock();
    st.alg = alg;
    // The baseline may have been poisoned by whatever caused the panic;
    // restart its warm-up.
    st.novelty = NoveltyMonitor::new(&global.config);
    true
}

#[cfg(feature = "failpoints")]
fn fire_worker_failpoints() {
    if crate::failpoints::should_fire(crate::failpoints::CHANNEL_STALL) {
        std::thread::sleep(Duration::from_millis(50));
    }
    // The armed count is a sleep in milliseconds served whole by exactly
    // one worker — a deterministic "wedged consumer" for watchdog tests.
    let hang_ms = crate::failpoints::take(crate::failpoints::WORKER_HANG);
    if hang_ms > 0 {
        std::thread::sleep(Duration::from_millis(hang_ms));
    }
    if crate::failpoints::should_fire(crate::failpoints::SHARD_WORKER_PANIC) {
        panic!("injected shard worker panic");
    }
}

/// Drains shard `idx`'s command channel until shutdown or disconnect.
/// Runs inside the supervisor's panic fence; a panic here consumes the
/// in-flight command (it is already out of the channel), so recovery loses
/// at most that one record or batch.
fn drain_commands(
    rx: &Receiver<Command>,
    global: &Global,
    all_shards: &[Arc<ShardHandle>],
    idx: usize,
) {
    let own = &all_shards[idx];
    for cmd in rx.iter() {
        match cmd {
            Command::Point(p) => {
                #[cfg(feature = "failpoints")]
                fire_worker_failpoints();
                if ingest(global, own, idx, &p) {
                    merge_and_record(global, all_shards);
                }
                maybe_auto_checkpoint(global, all_shards);
            }
            Command::Batch(points) => {
                #[cfg(feature = "failpoints")]
                fire_worker_failpoints();
                ingest_batch(global, own, idx, &points, all_shards);
                maybe_auto_checkpoint(global, all_shards);
            }
            Command::Flush(reply) => {
                // Everything routed to this shard before the flush has
                // been drained by now.
                let _ = reply.send(());
            }
            Command::Shutdown => return,
        }
    }
}

/// A shard worker's whole life: drain commands, survive panics, respawn
/// the clusterer, and mark the handle dead on the way out.
fn shard_worker(
    rx: Receiver<Command>,
    global: Arc<Global>,
    all_shards: Vec<Arc<ShardHandle>>,
    idx: usize,
) {
    loop {
        match catch_unwind(AssertUnwindSafe(|| {
            drain_commands(&rx, &global, &all_shards, idx)
        })) {
            Ok(()) => break,
            Err(payload) => {
                let own = &all_shards[idx];
                *own.last_panic.lock() = Some(panic_message(payload));
                own.restarts.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                if global.shutting_down.load(Ordering::Acquire) {
                    break;
                }
                if !recover_shard(&global, &all_shards, idx) {
                    break;
                }
            }
        }
    }
    all_shards[idx].alive.store(false, Ordering::Release);
}

/// Attaches a rescue consumer to shard `idx`'s channel: a fresh thread
/// draining the same MPMC receiver the wedged worker holds. It takes no
/// shard state lock the governor could be blocked on, and it does not
/// respawn itself — the original supervisor still owns panic recovery.
fn spawn_rescue(
    global: &Arc<Global>,
    shards: &[Arc<ShardHandle>],
    rxs: &[Receiver<Command>],
    idx: usize,
) {
    let rx = rxs[idx].clone();
    let global_for_rescue = Arc::clone(global);
    let all_shards = shards.to_vec();
    let spawned = std::thread::Builder::new()
        .name(format!("ustream-rescue-{idx}"))
        .spawn(move || {
            let _ = catch_unwind(AssertUnwindSafe(|| {
                drain_commands(&rx, &global_for_rescue, &all_shards, idx);
            }));
        });
    if let Ok(handle) = spawned {
        shards[idx].spawned.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
        global.extra_workers.lock().push(handle);
    }
}

/// Governor-local view of one shard's progress.
struct WatchState {
    last_processed: u64,
    last_change: Instant,
    last_respawn: Option<Instant>,
}

/// The governor thread: polls the lock-free shard counters, runs the stall
/// watchdog and walks the degradation ladder. Exits when the engine starts
/// shutting down (the shutdown path joins it *before* sending shutdown
/// commands, so no rescue consumer can appear after the shutdown fan-out
/// was counted).
fn governor(global: Arc<Global>, shards: Vec<Arc<ShardHandle>>, rxs: Vec<Receiver<Command>>) {
    let watchdog = global.config.watchdog;
    let policy = global.config.load_policy;
    let poll = Duration::from_millis(watchdog.map_or(20, |w| w.poll_ms.max(1)));
    let mut watch: Vec<WatchState> = shards
        .iter()
        .map(|s| WatchState {
            last_processed: s.counters.processed.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            last_change: Instant::now(),
            last_respawn: None,
        })
        .collect();
    let mut above = 0u32;
    let mut below = 0u32;
    while !global.shutting_down.load(Ordering::Acquire) {
        // lint:allow(no-sleep): watchdog governor cadence — config-bounded poll off the hot path
        std::thread::sleep(poll);
        if global.shutting_down.load(Ordering::Acquire) {
            break;
        }

        if let Some(wd) = watchdog {
            let deadline = Duration::from_millis(wd.stall_deadline_ms.max(1));
            for (i, shard) in shards.iter().enumerate() {
                let processed = shard.counters.processed.load(Ordering::Relaxed); // relaxed-ok: statistical read for reports/decisions that tolerate lag
                let backlog = shard
                    .counters
                    .enqueued
                    .load(Ordering::Relaxed) // relaxed-ok: statistical read for reports/decisions that tolerate lag
                    .saturating_sub(processed);
                let w = &mut watch[i];
                if processed != w.last_processed {
                    w.last_processed = processed;
                    w.last_change = Instant::now();
                    shard.stalled.store(false, Ordering::Relaxed); // relaxed-ok: advisory stall flag for reports; rescue correctness does not depend on its timing
                } else if backlog > 0 && w.last_change.elapsed() >= deadline {
                    // relaxed-ok: advisory stall flag for reports; rescue correctness does not depend on its timing
                    if !shard.stalled.swap(true, Ordering::Relaxed) {
                        shard.stalls.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                        global.stalls_detected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                    }
                    // Rate limit: at most one rescue per stall deadline, so
                    // a long wedge cannot leak an unbounded thread pile.
                    let may_respawn =
                        wd.respawn && w.last_respawn.is_none_or(|at| at.elapsed() >= deadline);
                    if may_respawn {
                        w.last_respawn = Some(Instant::now());
                        spawn_rescue(&global, &shards, &rxs, i);
                    }
                }
            }
        }

        if let Some(p) = policy {
            let capacity = (global.config.channel_capacity.max(1) * shards.len().max(1)) as f64;
            let backlog: u64 = shards
                .iter()
                .map(|s| {
                    // relaxed-ok: statistical read for reports/decisions that tolerate lag
                    let enqueued = s.counters.enqueued.load(Ordering::Relaxed);
                    // relaxed-ok: statistical read for reports/decisions that tolerate lag
                    let processed = s.counters.processed.load(Ordering::Relaxed);
                    enqueued.saturating_sub(processed)
                })
                .sum();
            let pressure = backlog as f64 / capacity;
            if pressure >= p.high_watermark {
                above += 1;
                below = 0;
            } else if pressure <= p.low_watermark {
                below += 1;
                above = 0;
            } else {
                above = 0;
                below = 0;
            }
            let stage = global.load_stage();
            if above >= p.trip_polls && stage != LoadStage::Shed {
                let to = stage.escalate();
                global.apply_stage(to);
                global.record_transition(stage, to, pressure);
                above = 0;
            } else if below >= p.clear_polls && stage != LoadStage::Normal {
                let to = stage.relax();
                global.apply_stage(to);
                global.record_transition(stage, to, pressure);
                below = 0;
            }
        }
    }
}

/// Writes an automatic checkpoint when the stream has crossed into a new
/// `checkpoint_every` epoch. Exactly one worker wins each epoch; a failed
/// write is recorded in [`EngineReport::last_checkpoint_error`] and the
/// engine keeps running.
fn maybe_auto_checkpoint(global: &Global, shards: &[Arc<ShardHandle>]) {
    let (Some(every), Some(path)) = (
        global.config.checkpoint_every,
        global.config.checkpoint_path.as_deref(),
    ) else {
        return;
    };
    let epoch = global.processed.load(Ordering::Relaxed) / every; // relaxed-ok: statistical read for reports/decisions that tolerate lag
    if epoch == 0 {
        return;
    }
    let prev = global.checkpoint_epoch.load(Ordering::Relaxed); // relaxed-ok: epoch pre-read; the election CAS re-validates before publishing
    if prev >= epoch
        || global
            .checkpoint_epoch
            .compare_exchange(prev, epoch, Ordering::AcqRel, Ordering::Relaxed) // relaxed-ok: CAS failure path only retries with a fresh read; the success edge is AcqRel
            .is_err()
    {
        return;
    }
    match build_checkpoint(global, shards).and_then(|ck| write_checkpoint(global, path, epoch, &ck))
    {
        Ok(()) => {
            global.checkpoints_written.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
        }
        Err(e) => {
            *global.last_checkpoint_error.lock() = Some(e.to_string());
        }
    }
}

/// Writes one checkpoint under the configured rotation scheme: the bare
/// path with a single generation, the rotated slot + manifest otherwise.
fn write_checkpoint(global: &Global, path: &str, seq: u64, ck: &EngineCheckpoint) -> Result<()> {
    let generations = global.config.checkpoint_generations.max(1);
    if generations > 1 {
        checkpoint::write_rotated(path, generations, seq, ck)
    } else {
        checkpoint::write_atomic(path, ck)
    }
}

/// Captures the complete engine state. Takes the horizon lock first and
/// then shard locks one at a time — the same order as the merge — so a
/// concurrent merge cannot interleave half its shards into the capture.
fn build_checkpoint(global: &Global, shards: &[Arc<ShardHandle>]) -> Result<EngineCheckpoint> {
    let horizons = global.horizons.lock();
    let snapshots: Vec<SnapshotEntry> = horizons
        .store()
        .iter_chronological()
        .map(|s| SnapshotEntry {
            time: s.time,
            clusters: s.data.clone(),
        })
        .collect();
    let mut shard_ckpts = Vec::with_capacity(shards.len());
    for shard in shards {
        let st = shard.state.lock();
        let state = st.alg.export_state().ok_or_else(|| {
            UStreamError::Checkpoint("shard clusterer does not support state export".into())
        })?;
        shard_ckpts.push(ShardCheckpoint {
            state,
            created: st.created,
            evicted: st.evicted,
            processed: shard.counters.processed.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            alerts: shard.counters.alerts.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
        });
    }
    drop(horizons);
    Ok(EngineCheckpoint {
        config: global.config.clone(),
        shards: shard_ckpts,
        snapshots,
        points_processed: global.processed.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
        last_tick: global.last_tick.load(Ordering::Relaxed), // relaxed-ok: monotone watermark; readers tolerate a lagging value
        alerts_raised: global.alerts_raised.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
        merges: global.merges.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
        router: global.router.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
    })
}

/// Why a [`StreamEngine::try_push`] could not enqueue; the record is handed
/// back in every variant.
#[derive(Debug)]
pub enum TryPushError {
    /// Every shard channel is at capacity (backpressure).
    Full(UncertainPoint),
    /// The engine has shut down.
    Stopped(UncertainPoint),
    /// The record failed validation under [`ValidationPolicy::Reject`] (or
    /// was unrepairable under [`ValidationPolicy::Clamp`]); the string says
    /// why.
    Invalid(UncertainPoint, String),
}

impl TryPushError {
    /// Recovers the record that could not be enqueued.
    pub fn into_inner(self) -> UncertainPoint {
        match self {
            TryPushError::Full(p) | TryPushError::Stopped(p) | TryPushError::Invalid(p, _) => p,
        }
    }

    /// Whether the failure was backpressure (retry later) rather than
    /// shutdown or rejection (permanent).
    pub fn is_full(&self) -> bool {
        matches!(self, TryPushError::Full(_))
    }
}

impl std::fmt::Display for TryPushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryPushError::Full(_) => f.write_str("all shard channels are full"),
            TryPushError::Stopped(_) => f.write_str("engine workers have stopped"),
            TryPushError::Invalid(_, reason) => write!(f, "invalid record: {reason}"),
        }
    }
}

impl std::error::Error for TryPushError {}

/// What producer-side validation decided about a record.
enum Admit {
    /// Valid (possibly repaired) — enqueue it.
    Enqueue(UncertainPoint),
    /// Diverted into quarantine; the push still succeeds.
    Consumed,
    /// Refused; the point and its fault travel back to the producer.
    Rejected(UncertainPoint, PointFault),
}

/// What the degradation ladder decided about a record, ahead of
/// validation.
enum Gate {
    /// Below the sampling rungs — admit.
    Admit,
    /// Dropped by the uniform sampling gate (counted, push succeeds).
    SampledOut,
    /// Dropped by the shedding rung (counted, push succeeds).
    Shed,
}

/// The embeddable analytics engine. See the crate docs for an example.
///
/// All query methods are callable from any thread while ingestion is in
/// flight; they take shard/horizon locks briefly and never block on the
/// channels.
pub struct StreamEngine {
    txs: Vec<Sender<Command>>,
    shards: Vec<Arc<ShardHandle>>,
    global: Arc<Global>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    governor: Mutex<Option<JoinHandle<()>>>,
}

impl StreamEngine {
    /// Starts the shard workers with the default UMicro clusterers (decayed
    /// when `config.decay_half_life` is set), each holding an even share of
    /// the global `n_micro` budget.
    ///
    /// # Errors
    ///
    /// [`UStreamError::Io`] when a worker thread cannot be spawned (the
    /// already-started workers are shut down cleanly first).
    #[deprecated(
        since = "0.2.0",
        note = "use EngineBuilder::new(umicro).build() — one builder replaces the start/start_with constructor zoo"
    )]
    pub fn start(config: EngineConfig) -> Result<Self> {
        Self::launch_default(config)
    }

    /// Starts the shard workers with caller-supplied clusterers — any
    /// [`OnlineClusterer`] over ECF summaries. The factory is invoked once
    /// per shard index at startup (and again for a shard whose worker
    /// respawns after a panic); it is responsible for sizing each shard's
    /// budget.
    ///
    /// # Errors
    ///
    /// [`UStreamError::Io`] when a worker thread cannot be spawned.
    #[deprecated(
        since = "0.2.0",
        note = "use EngineBuilder::new(umicro).build_with(factory) — one builder replaces the start/start_with constructor zoo"
    )]
    pub fn start_with(
        config: EngineConfig,
        clusterer: impl Fn(usize) -> DynClusterer + Send + Sync + 'static,
    ) -> Result<Self> {
        Self::launch(config, clusterer)
    }

    /// [`Self::launch`] with the default UMicro clusterers (decayed when
    /// `config.decay_half_life` is set), each holding an even share of the
    /// global `n_micro` budget.
    pub(crate) fn launch_default(config: EngineConfig) -> Result<Self> {
        let mut shard_umicro = config.umicro.clone();
        shard_umicro.n_micro = config.shard_n_micro();
        let decay = config.decay_half_life;
        Self::launch(config, move |_shard| -> DynClusterer {
            match decay {
                Some(hl) => Box::new(DecayedUMicro::with_half_life(shard_umicro.clone(), hl)),
                None => Box::new(UMicro::new(shard_umicro.clone())),
            }
        })
    }

    /// The real engine startup: spawns shard workers (and the governor when
    /// configured) for a validated configuration. Reached through
    /// [`EngineBuilder`](crate::EngineBuilder) and the deprecated
    /// `start`/`start_with` wrappers.
    pub(crate) fn launch(
        config: EngineConfig,
        clusterer: impl Fn(usize) -> DynClusterer + Send + Sync + 'static,
    ) -> Result<Self> {
        let n_shards = config.shards.max(1);
        let quarantine_capacity = config.quarantine_capacity;
        let mut horizons = HorizonAnalyzer::new(config.pyramid);
        if let Some(budget) = config.snapshot_budget {
            horizons.set_budget(budget);
        }
        let snapshot_every = config.snapshot_every.max(1);
        let keep_per_mille = config
            .load_policy
            .map_or(1_000, |p| p.keep_per_mille.clamp(1, 1_000));
        let global = Arc::new(Global {
            factory: Box::new(clusterer),
            processed: AtomicU64::new(0),
            last_tick: AtomicU64::new(0),
            alerts_raised: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            merge_nanos: AtomicU64::new(0),
            router: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            horizons: Mutex::new(horizons),
            alerts: Mutex::new(VecDeque::new()),
            last_merge: Mutex::new(None),
            quarantine: Mutex::new(Quarantine::new(quarantine_capacity)),
            rejected: AtomicU64::new(0),
            clamped: AtomicU64::new(0),
            backpressure_dropped: AtomicU64::new(0),
            checkpoints_written: AtomicU64::new(0),
            checkpoint_epoch: AtomicU64::new(0),
            last_checkpoint_error: Mutex::new(None),
            started: Instant::now(),
            load_stage: AtomicU8::new(LoadStage::Normal.as_u8()),
            load_transitions: Mutex::new(Vec::new()),
            points_shed: AtomicU64::new(0),
            sampled_out: AtomicU64::new(0),
            admit_seq: AtomicU64::new(0),
            merge_every_effective: AtomicU64::new(snapshot_every),
            keep_per_mille: AtomicU64::new(keep_per_mille),
            stalls_detected: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            final_report: Mutex::new(None),
            extra_workers: Mutex::new(Vec::new()),
            restore_corrupt_generations: AtomicU64::new(0),
            config,
        });

        let shards: Vec<Arc<ShardHandle>> = (0..n_shards)
            .map(|i| {
                Arc::new(ShardHandle {
                    state: Mutex::new(ShardState {
                        alg: (global.factory)(i),
                        created: 0,
                        evicted: 0,
                        novelty: NoveltyMonitor::new(&global.config),
                    }),
                    counters: ShardCounters::default(),
                    restarts: AtomicU64::new(0),
                    last_panic: Mutex::new(None),
                    alive: AtomicBool::new(true),
                    spawned: AtomicU64::new(1),
                    stalls: AtomicU64::new(0),
                    stalled: AtomicBool::new(false),
                })
            })
            .collect();

        let mut txs: Vec<Sender<Command>> = Vec::with_capacity(n_shards);
        let mut rxs: Vec<Receiver<Command>> = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        let abort = |txs: &[Sender<Command>], workers: Vec<JoinHandle<()>>, e: std::io::Error| {
            // Unwind: stop the workers already running, then report.
            global.shutting_down.store(true, Ordering::Release);
            for tx in txs {
                let _ = tx.send(Command::Shutdown);
            }
            for handle in workers {
                let _ = handle.join();
            }
            UStreamError::Io(e)
        };
        for i in 0..n_shards {
            let (tx, rx) = bounded::<Command>(global.config.channel_capacity);
            let global_for_worker = Arc::clone(&global);
            let all_shards = shards.clone();
            let worker_rx = rx.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("ustream-shard-{i}"))
                .spawn(move || shard_worker(worker_rx, global_for_worker, all_shards, i));
            match spawned {
                Ok(handle) => {
                    txs.push(tx);
                    rxs.push(rx);
                    workers.push(handle);
                }
                Err(e) => return Err(abort(&txs, workers, e)),
            }
        }

        // The governor exists only when something needs governing.
        let governor_handle =
            if global.config.watchdog.is_some() || global.config.load_policy.is_some() {
                let global_for_gov = Arc::clone(&global);
                let shards_for_gov = shards.clone();
                let spawned = std::thread::Builder::new()
                    .name("ustream-governor".into())
                    .spawn(move || governor(global_for_gov, shards_for_gov, rxs));
                match spawned {
                    Ok(handle) => Some(handle),
                    Err(e) => return Err(abort(&txs, workers, e)),
                }
            } else {
                None
            };

        Ok(Self {
            txs,
            shards,
            global,
            workers: Mutex::new(workers),
            governor: Mutex::new(governor_handle),
        })
    }

    /// Restores an engine from a checkpoint written by
    /// [`Self::checkpoint`], using the default UMicro clusterers. The
    /// restored engine reproduces `horizon_clusters` and `micro_clusters`
    /// exactly as they were at checkpoint time and continues the stream
    /// bit-for-bit identically to an uninterrupted run.
    ///
    /// # Errors
    ///
    /// [`UStreamError::Io`] when the file cannot be read,
    /// [`UStreamError::Checkpoint`] when it is corrupt, truncated, from an
    /// unsupported version, or structurally inconsistent.
    pub fn restore(path: &str) -> Result<Self> {
        let (ck, skipped) = Self::read_checkpoint_with_fallback(path)?;
        let engine = Self::launch_default(ck.config.clone())?;
        engine.apply_checkpoint(&ck)?;
        engine
            .global
            .restore_corrupt_generations
            .store(skipped, Ordering::Relaxed); // relaxed-ok: set once at restore, read for reports
        Ok(engine)
    }

    /// Restores from the newest readable rotation generation under `base`
    /// (`base.N` + manifest), skipping any generation that is corrupt or
    /// truncated. This is the replay hook the distributed tier uses: a
    /// respawned site restores its engine here, reads
    /// [`Self::points_processed`] to learn the exact stream prefix the
    /// checkpoint covers, and re-feeds its sub-stream from that ordinal.
    ///
    /// # Errors
    ///
    /// [`UStreamError::Checkpoint`] / [`UStreamError::Io`] when no
    /// generation under `base` decodes.
    pub fn restore_latest(base: &str) -> Result<Self> {
        let (ck, rec) = checkpoint::read_latest_traced(base)?;
        let engine = Self::launch_default(ck.config.clone())?;
        engine.apply_checkpoint(&ck)?;
        engine
            .global
            .restore_corrupt_generations
            .store(rec.corrupt_skipped, Ordering::Relaxed); // relaxed-ok: set once at restore, read for reports
        Ok(engine)
    }

    /// [`Self::restore`] with a caller-supplied clusterer factory (the
    /// counterpart of [`Self::start_with`]). The factory-built clusterers
    /// must support [`OnlineClusterer::import_state`].
    pub fn restore_with(
        path: &str,
        clusterer: impl Fn(usize) -> DynClusterer + Send + Sync + 'static,
    ) -> Result<Self> {
        let (ck, skipped) = Self::read_checkpoint_with_fallback(path)?;
        let engine = Self::launch(ck.config.clone(), clusterer)?;
        engine.apply_checkpoint(&ck)?;
        engine
            .global
            .restore_corrupt_generations
            .store(skipped, Ordering::Relaxed); // relaxed-ok: set once at restore, read for reports
        Ok(engine)
    }

    /// Reads `path` directly, then falls back to the newest readable
    /// rotation generation (`path.N` + manifest). The *original* error is
    /// preserved when no generation decodes either, so a plainly corrupt
    /// single-file checkpoint reports its own corruption. The second
    /// return is how many corrupt/unreadable files were skipped on the
    /// way to the checkpoint that loaded (the bare file counts as one
    /// when the fallback had to engage).
    fn read_checkpoint_with_fallback(path: &str) -> Result<(EngineCheckpoint, u64)> {
        match checkpoint::read(path) {
            Ok(ck) => Ok((ck, 0)),
            Err(primary) => {
                // A bare file that exists but failed to decode is itself a
                // skipped-corrupt generation; a merely-absent bare file is
                // the normal rotated layout and counts as nothing. When the
                // rotation scan already examined the bare path it counted
                // that defect itself.
                let bare_corrupt = std::fs::metadata(path).is_ok() as u64;
                match checkpoint::read_latest_traced(path) {
                    Ok((ck, rec)) => {
                        let extra = if rec.scanned_bare { 0 } else { bare_corrupt };
                        Ok((ck, rec.corrupt_skipped + extra))
                    }
                    Err(_) => Err(primary),
                }
            }
        }
    }

    /// Loads checkpoint state into a freshly started (idle) engine.
    fn apply_checkpoint(&self, ck: &EngineCheckpoint) -> Result<()> {
        for (i, sc) in ck.shards.iter().enumerate() {
            let shard = &self.shards[i];
            {
                let mut st = shard.state.lock();
                st.alg.import_state(&sc.state)?;
                st.created = sc.created;
                st.evicted = sc.evicted;
            }
            shard
                .counters
                .processed
                .store(sc.processed, Ordering::Relaxed); // relaxed-ok: independent flag/knob publish; no paired payload needs release
            shard
                .counters
                .enqueued
                .store(sc.processed, Ordering::Relaxed); // relaxed-ok: independent flag/knob publish; no paired payload needs release
            shard.counters.alerts.store(sc.alerts, Ordering::Relaxed); // relaxed-ok: independent flag/knob publish; no paired payload needs release
        }
        {
            let mut horizons = self.global.horizons.lock();
            for entry in &ck.snapshots {
                horizons.record_snapshot(entry.time, entry.clusters.clone());
            }
        }
        if let Some(last) = ck.snapshots.last() {
            *self.global.last_merge.lock() = Some(last.clusters.clone());
        }
        self.global
            .processed
            .store(ck.points_processed, Ordering::Relaxed); // relaxed-ok: independent flag/knob publish; no paired payload needs release
        self.global.last_tick.store(ck.last_tick, Ordering::Relaxed); // relaxed-ok: monotone watermark; readers tolerate a lagging value
        self.global
            .alerts_raised
            .store(ck.alerts_raised, Ordering::Relaxed); // relaxed-ok: independent flag/knob publish; no paired payload needs release
        self.global.merges.store(ck.merges, Ordering::Relaxed); // relaxed-ok: independent flag/knob publish; no paired payload needs release
        self.global.router.store(ck.router, Ordering::Relaxed); // relaxed-ok: independent flag/knob publish; no paired payload needs release
        if let Some(every) = self.global.config.checkpoint_every {
            self.global
                .checkpoint_epoch
                .store(ck.points_processed / every, Ordering::Relaxed); // relaxed-ok: independent flag/knob publish; no paired payload needs release
        }
        Ok(())
    }

    /// Persists the complete engine state to `path` atomically (via a
    /// `.tmp` file renamed into place). Flushes the shard channels first so
    /// the capture reflects every record pushed before the call; producers
    /// pushing *concurrently* with the call should quiesce for an exact
    /// cut.
    ///
    /// # Errors
    ///
    /// [`UStreamError::Checkpoint`] when a shard's clusterer does not
    /// support state export; [`UStreamError::Io`] on write failure.
    pub fn checkpoint(&self, path: &str) -> Result<()> {
        self.flush();
        let ck = build_checkpoint(&self.global, &self.shards)?;
        checkpoint::write_atomic(path, &ck)
    }

    /// [`Self::checkpoint`] into rotation slot `seq % generations` under
    /// `base`, promoting it in the manifest — the caller-driven counterpart
    /// of auto-checkpoint rotation. Distributed sites call this between
    /// records so each generation is an exact prefix cut of their
    /// sub-stream, which is what makes crash replay gap-free.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Self::checkpoint`].
    pub fn checkpoint_rotated(&self, base: &str, generations: u64, seq: u64) -> Result<()> {
        self.flush();
        let ck = build_checkpoint(&self.global, &self.shards)?;
        checkpoint::write_rotated(base, generations, seq, &ck)
    }

    /// The next shard index in round-robin order.
    fn route(&self) -> usize {
        // relaxed-ok: monotone counter; only uniqueness matters, report readers tolerate lag
        (self.global.router.fetch_add(1, Ordering::Relaxed) % self.txs.len() as u64) as usize
    }

    /// Runs the degradation ladder's admission gate over one record.
    fn gate(&self) -> Gate {
        match self.global.load_stage() {
            LoadStage::Normal | LoadStage::WidenMerge => Gate::Admit,
            LoadStage::Sample => self.sample_gate(),
            LoadStage::Shed => Gate::Shed,
        }
    }

    /// Deterministic uniform sampling: each admission ordinal keeps the
    /// record iff `seq mod 1000 < keep_per_mille`, so exactly the
    /// configured fraction is admitted and the drop is unbiased with
    /// respect to the record's content.
    fn sample_gate(&self) -> Gate {
        let seq = self.global.admit_seq.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
        let keep = self.global.keep_per_mille.load(Ordering::Relaxed); // relaxed-ok: sampling knob; any recently published value keeps the gate unbiased
        if seq % 1_000 < keep {
            Gate::Admit
        } else {
            Gate::SampledOut
        }
    }

    /// Applies the ladder's verdict; `Some(result)` short-circuits the
    /// push (drop counted as configured), `None` lets the record continue
    /// into validation.
    fn apply_gate(&self) -> Option<Result<()>> {
        if self.global.draining.load(Ordering::Acquire) {
            return Some(Err(UStreamError::EngineStopped));
        }
        match self.gate() {
            Gate::Admit => None,
            Gate::SampledOut => {
                self.global.sampled_out.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                Some(Ok(()))
            }
            Gate::Shed => {
                self.global.points_shed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                Some(Ok(()))
            }
        }
    }

    /// Runs the configured validation over one record.
    fn admit(&self, point: UncertainPoint) -> Admit {
        let Some(policy) = self.global.config.validation else {
            return Admit::Enqueue(point);
        };
        let clock = self
            .global
            .config
            .monotone_timestamps
            .then(|| self.global.last_tick.load(Ordering::Relaxed)); // relaxed-ok: monotone watermark; readers tolerate a lagging value
        match validate::check_point(&point, self.global.config.umicro.dims, clock) {
            Ok(()) => Admit::Enqueue(point),
            Err(fault) => match policy {
                ValidationPolicy::Clamp if fault.clampable() => {
                    self.global.clamped.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                    Admit::Enqueue(validate::clamp_point(&point, clock))
                }
                ValidationPolicy::Quarantine => {
                    self.global.quarantine.lock().admit(point, &fault);
                    Admit::Consumed
                }
                _ => {
                    self.global.rejected.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                    Admit::Rejected(point, fault)
                }
            },
        }
    }

    /// Enqueues one record for clustering.
    ///
    /// The record first passes the configured [`ValidationPolicy`]; a
    /// rejected record comes back as [`UStreamError::InvalidPoint`], a
    /// quarantined one succeeds without being clustered. What happens when
    /// every shard channel is full depends on the [`BackpressurePolicy`]:
    /// `Block` waits (the default), `DropNewest` drops and counts the
    /// record, `Error` returns [`UStreamError::Backpressure`].
    ///
    /// Errors with [`UStreamError::EngineStopped`] after shutdown instead
    /// of panicking; the record is dropped in that case — use
    /// [`Self::try_push`] when the caller needs the record back.
    pub fn push(&self, point: UncertainPoint) -> Result<()> {
        #[cfg(feature = "failpoints")]
        let point = crate::failpoints::maybe_poison(point);
        if let Some(gated) = self.apply_gate() {
            return gated;
        }
        match self.admit(point) {
            Admit::Consumed => Ok(()),
            Admit::Rejected(_, fault) => Err(UStreamError::InvalidPoint(fault.to_string())),
            Admit::Enqueue(point) => self.dispatch_point(point),
        }
    }

    /// [`Self::push`] with a backpressure deadline: under a full channel
    /// the call retries non-blocking enqueues until `deadline` elapses,
    /// then returns [`UStreamError::DeadlineExceeded`] — regardless of the
    /// configured [`BackpressurePolicy`]. Producers that can tolerate
    /// bounded latency but not unbounded blocking use this instead of
    /// `push`. The typed deadline error lets callers (the serving
    /// front-end in particular) distinguish "my time budget ran out"
    /// (retry against a fresh deadline, or fail the request) from the
    /// instantaneous [`UStreamError::Backpressure`] signal (retry soon).
    pub fn push_with_timeout(&self, point: UncertainPoint, deadline: Duration) -> Result<()> {
        #[cfg(feature = "failpoints")]
        let point = crate::failpoints::maybe_poison(point);
        if let Some(gated) = self.apply_gate() {
            return gated;
        }
        match self.admit(point) {
            Admit::Consumed => Ok(()),
            Admit::Rejected(_, fault) => Err(UStreamError::InvalidPoint(fault.to_string())),
            Admit::Enqueue(mut point) => {
                let started = Instant::now();
                loop {
                    match self.try_enqueue(point) {
                        Ok(()) => return Ok(()),
                        Err(TryPushError::Full(p)) => {
                            let waited = started.elapsed();
                            if waited >= deadline {
                                return Err(UStreamError::DeadlineExceeded {
                                    waited_ms: waited.as_millis() as u64,
                                });
                            }
                            point = p;
                            // lint:allow(no-sleep): bounded backpressure backoff chosen by the caller via push_with_timeout
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(_) => return Err(UStreamError::EngineStopped),
                    }
                }
            }
        }
    }

    /// Routes one already-validated record under the backpressure policy.
    fn dispatch_point(&self, point: UncertainPoint) -> Result<()> {
        match self.global.config.backpressure {
            BackpressurePolicy::Block => {
                let s = self.route();
                self.txs[s]
                    .send(Command::Point(Box::new(point)))
                    .map_err(|_| UStreamError::EngineStopped)?;
                self.shards[s]
                    .counters
                    .enqueued
                    .fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                Ok(())
            }
            BackpressurePolicy::DropNewest => match self.try_enqueue(point) {
                Ok(()) => Ok(()),
                Err(TryPushError::Full(_)) => {
                    self.global
                        .backpressure_dropped
                        .fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                    Ok(())
                }
                Err(_) => Err(UStreamError::EngineStopped),
            },
            BackpressurePolicy::Error => match self.try_enqueue(point) {
                Ok(()) => Ok(()),
                Err(TryPushError::Full(_)) => Err(UStreamError::Backpressure),
                Err(_) => Err(UStreamError::EngineStopped),
            },
        }
    }

    /// Non-blocking push: tries every shard once (starting at the
    /// round-robin cursor) and hands the record back if it fails
    /// validation, all channels are full, or the engine has stopped.
    pub fn try_push(&self, point: UncertainPoint) -> std::result::Result<(), TryPushError> {
        #[cfg(feature = "failpoints")]
        let point = crate::failpoints::maybe_poison(point);
        if self.global.draining.load(Ordering::Acquire) {
            return Err(TryPushError::Stopped(point));
        }
        match self.gate() {
            Gate::Admit => {}
            Gate::SampledOut => {
                self.global.sampled_out.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                return Ok(());
            }
            Gate::Shed => {
                self.global.points_shed.fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                return Ok(());
            }
        }
        match self.admit(point) {
            Admit::Consumed => Ok(()),
            Admit::Rejected(point, fault) => Err(TryPushError::Invalid(point, fault.to_string())),
            Admit::Enqueue(point) => self.try_enqueue(point),
        }
    }

    fn try_enqueue(&self, point: UncertainPoint) -> std::result::Result<(), TryPushError> {
        let n = self.txs.len();
        let start = self.route();
        let mut cmd = Command::Point(Box::new(point));
        for off in 0..n {
            let s = (start + off) % n;
            match self.txs[s].try_send(cmd) {
                Ok(()) => {
                    self.shards[s]
                        .counters
                        .enqueued
                        .fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                    return Ok(());
                }
                Err(TrySendError::Full(c)) => cmd = c,
                Err(TrySendError::Disconnected(c)) => {
                    return Err(TryPushError::Stopped(Self::unwrap_point(c)));
                }
            }
        }
        Err(TryPushError::Full(Self::unwrap_point(cmd)))
    }

    fn unwrap_point(cmd: Command) -> UncertainPoint {
        match cmd {
            Command::Point(p) => *p,
            _ => unreachable!("only points travel through try_enqueue"),
        }
    }

    /// Batch push: splits the slice into one contiguous chunk per shard and
    /// enqueues each chunk in a single channel hop — amortising the
    /// per-record routing and channel cost for bulk producers.
    ///
    /// Validation is atomic per call: if any record is rejected under the
    /// active policy (or is unrepairable under `Clamp`), *nothing* is
    /// enqueued and the first fault comes back as
    /// [`UStreamError::InvalidPoint`]. Quarantined records are diverted and
    /// the rest of the batch proceeds. Under
    /// [`BackpressurePolicy::DropNewest`] a full shard drops its whole
    /// chunk (counted per record).
    pub fn push_slice(&self, points: &[UncertainPoint]) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        if self.global.draining.load(Ordering::Acquire) {
            return Err(UStreamError::EngineStopped);
        }
        let gated: Vec<UncertainPoint>;
        let points: &[UncertainPoint] = match self.global.load_stage() {
            LoadStage::Normal | LoadStage::WidenMerge => points,
            LoadStage::Shed => {
                self.global
                    .points_shed
                    .fetch_add(points.len() as u64, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                return Ok(());
            }
            LoadStage::Sample => {
                gated = points
                    .iter()
                    .filter(|_| matches!(self.sample_gate(), Gate::Admit))
                    .cloned()
                    .collect();
                self.global
                    .sampled_out
                    .fetch_add((points.len() - gated.len()) as u64, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                if gated.is_empty() {
                    return Ok(());
                }
                &gated
            }
        };
        let admitted: Vec<UncertainPoint> = match self.global.config.validation {
            None => points.to_vec(),
            Some(policy) => {
                let clock = self
                    .global
                    .config
                    .monotone_timestamps
                    .then(|| self.global.last_tick.load(Ordering::Relaxed)); // relaxed-ok: monotone watermark; readers tolerate a lagging value
                let dims = self.global.config.umicro.dims;
                let mut admitted = Vec::with_capacity(points.len());
                let mut quarantined: Vec<(UncertainPoint, PointFault)> = Vec::new();
                let mut first_fault: Option<PointFault> = None;
                let mut reject_count = 0u64;
                let mut clamp_count = 0u64;
                for p in points {
                    match validate::check_point(p, dims, clock) {
                        Ok(()) => admitted.push(p.clone()),
                        Err(fault) => match policy {
                            ValidationPolicy::Clamp if fault.clampable() => {
                                clamp_count += 1;
                                admitted.push(validate::clamp_point(p, clock));
                            }
                            ValidationPolicy::Quarantine => quarantined.push((p.clone(), fault)),
                            _ => {
                                reject_count += 1;
                                first_fault.get_or_insert(fault);
                            }
                        },
                    }
                }
                if let Some(fault) = first_fault {
                    self.global
                        .rejected
                        .fetch_add(reject_count, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                    return Err(UStreamError::InvalidPoint(fault.to_string()));
                }
                self.global
                    .clamped
                    .fetch_add(clamp_count, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                if !quarantined.is_empty() {
                    let mut q = self.global.quarantine.lock();
                    for (p, fault) in quarantined {
                        q.admit(p, &fault);
                    }
                }
                admitted
            }
        };
        if admitted.is_empty() {
            return Ok(());
        }

        let n = self.txs.len();
        let chunk = admitted.len().div_ceil(n);
        let start = self.route();
        for (off, part) in admitted.chunks(chunk).enumerate() {
            let s = (start + off) % n;
            let len = part.len() as u64;
            match self.global.config.backpressure {
                BackpressurePolicy::Block => {
                    self.txs[s]
                        .send(Command::Batch(part.to_vec()))
                        .map_err(|_| UStreamError::EngineStopped)?;
                }
                BackpressurePolicy::DropNewest => match self.txs[s]
                    .try_send(Command::Batch(part.to_vec()))
                {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => {
                        self.global
                            .backpressure_dropped
                            .fetch_add(len, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                        continue;
                    }
                    Err(TrySendError::Disconnected(_)) => return Err(UStreamError::EngineStopped),
                },
                BackpressurePolicy::Error => match self.txs[s]
                    .try_send(Command::Batch(part.to_vec()))
                {
                    Ok(()) => {}
                    Err(TrySendError::Full(_)) => return Err(UStreamError::Backpressure),
                    Err(TrySendError::Disconnected(_)) => return Err(UStreamError::EngineStopped),
                },
            }
            self.shards[s]
                .counters
                .enqueued
                .fetch_add(len, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
        }
        Ok(())
    }

    /// Blocks until every previously pushed record has been clustered on
    /// every shard. Shards whose worker is permanently down are skipped.
    pub fn flush(&self) {
        let replies: Vec<_> = self
            .txs
            .iter()
            .filter_map(|tx| {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(Command::Flush(reply_tx)).ok().map(|_| reply_rx)
            })
            .collect();
        for rx in replies {
            let _ = rx.recv();
        }
    }

    /// Records processed so far (across all shards).
    pub fn points_processed(&self) -> u64 {
        self.global.processed.load(Ordering::Relaxed) // relaxed-ok: statistical read for reports/decisions that tolerate lag
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Drains the quarantine buffer for inspection, oldest first.
    pub fn drain_quarantine(&self) -> Vec<QuarantinedPoint> {
        self.global.quarantine.lock().drain()
    }

    /// Snapshot of the live micro-clusters across all shards, with
    /// shard-namespaced ids (cloned out of the engine).
    pub fn micro_clusters(&self) -> Vec<MicroCluster> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let st = shard.state.lock();
            for (id, ecf) in st.alg.micro_clusters() {
                out.push(MicroCluster {
                    id: namespaced_id(i, id),
                    ecf,
                });
            }
        }
        out
    }

    /// Macro-clusters of the merged live state.
    pub fn macro_clusters(&self, k: usize, seed: u64) -> MacroClustering {
        if self.shards.len() == 1 {
            // Single shard: delegate so decayed synchronisation and k-means
            // seeding match the unsharded engine exactly.
            // lint:allow(hot-panic): guarded by the shards.len() == 1 branch
            return self.shards[0].state.lock().alg.macro_cluster(k, seed);
        }
        let now = self.global.last_tick.load(Ordering::Relaxed); // relaxed-ok: monotone watermark; readers tolerate a lagging value
        let mut pairs: Vec<(u64, Ecf)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let snap = shard.state.lock().alg.snapshot_at(now);
            pairs.extend(
                snap.clusters
                    .into_iter()
                    .map(|(id, ecf)| (namespaced_id(i, id), ecf)),
            );
        }
        macro_cluster_ecfs(pairs.iter().map(|(id, ecf)| (*id, ecf)), k, seed)
    }

    /// Micro-cluster statistics of the trailing window of `h` ticks,
    /// reconstructed from the merged pyramidal snapshots.
    pub fn horizon_clusters(&self, h: u64) -> Result<ClusterSetSnapshot<Ecf>> {
        let now = self.global.last_tick.load(Ordering::Relaxed); // relaxed-ok: monotone watermark; readers tolerate a lagging value
        self.global.horizons.lock().horizon_clusters(now, h)
    }

    /// Macro-clusters of the trailing window of `h` ticks.
    pub fn horizon_macro_clusters(&self, h: u64, k: usize, seed: u64) -> Result<MacroClustering> {
        let now = self.global.last_tick.load(Ordering::Relaxed); // relaxed-ok: monotone watermark; readers tolerate a lagging value
        self.global
            .horizons
            .lock()
            .macro_cluster_horizon(now, h, k, seed)
    }

    /// Evolution between the two most recent windows of `h` ticks each:
    /// `(now − 2h, now − h]` vs `(now − h, now]`.
    pub fn evolution(&self, h: u64, min_weight: f64) -> Result<EvolutionReport> {
        let now = self.global.last_tick.load(Ordering::Relaxed); // relaxed-ok: monotone watermark; readers tolerate a lagging value
        let horizons = self.global.horizons.lock();
        let recent = horizons.horizon_clusters(now, h)?;
        let earlier_end = now.saturating_sub(h);
        // When the earlier window would reach past the stream origin, the
        // whole prefix up to `earlier_end` *is* that window.
        let earlier = match horizons.horizon_clusters(earlier_end, h) {
            Ok(w) => w,
            Err(_) => horizons
                .clusters_at(earlier_end)
                .cloned()
                .ok_or(UStreamError::HorizonUnavailable { requested: h })?,
        };
        Ok(compare_windows(&earlier, &recent, min_weight))
    }

    /// Drains the pending novelty alerts.
    pub fn drain_alerts(&self) -> Vec<NoveltyAlert> {
        self.global.alerts.lock().drain(..).collect()
    }

    /// Current run statistics (without stopping the engine).
    pub fn stats(&self) -> EngineReport {
        self.report()
    }

    fn report(&self) -> EngineReport {
        let elapsed = self.global.started.elapsed().as_secs_f64().max(1e-9);
        let shutting = self.global.shutting_down.load(Ordering::Acquire);
        let mut live_clusters = 0;
        let mut created = 0;
        let mut evicted = 0;
        let mut total_restarts = 0;
        let mut dead = 0;
        let mut any_stalled = false;
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let st = shard.state.lock();
            let processed = shard.counters.processed.load(Ordering::Relaxed); // relaxed-ok: statistical read for reports/decisions that tolerate lag
            let enqueued = shard.counters.enqueued.load(Ordering::Relaxed); // relaxed-ok: statistical read for reports/decisions that tolerate lag
            let live = st.alg.num_clusters();
            let restarts = shard.restarts.load(Ordering::Relaxed); // relaxed-ok: statistical read for reports/decisions that tolerate lag
            let alive = shard.alive.load(Ordering::Acquire);
            let stalled = shard.stalled.load(Ordering::Relaxed); // relaxed-ok: advisory stall flag for reports; rescue correctness does not depend on its timing
            live_clusters += live;
            created += st.created;
            evicted += st.evicted;
            total_restarts += restarts;
            if !alive {
                dead += 1;
            }
            any_stalled |= stalled;
            per_shard.push(ShardStats {
                shard: i,
                processed,
                queue_depth: enqueued.saturating_sub(processed),
                live_clusters: live,
                alerts_raised: shard.counters.alerts.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
                points_per_sec: processed as f64 / elapsed,
                restarts,
                last_panic: shard.last_panic.lock().clone(),
                alive,
                stalls: shard.stalls.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
                stalled,
                clusterer_bytes: st.alg.approx_memory_bytes(),
            });
        }
        let health = if !shutting && dead == self.shards.len() {
            HealthStatus::Failed
        } else if total_restarts > 0 || (!shutting && dead > 0) || any_stalled {
            HealthStatus::Degraded
        } else {
            HealthStatus::Healthy
        };
        let merges = self.global.merges.load(Ordering::Relaxed); // relaxed-ok: statistical read for reports/decisions that tolerate lag
        let merge_nanos = self.global.merge_nanos.load(Ordering::Relaxed); // relaxed-ok: monotone duration accumulator; only read for stats
        let (snapshots_retained, budget) = {
            let horizons = self.global.horizons.lock();
            (horizons.store().len(), horizons.budget_report())
        };
        let load_stage = self.global.load_stage();
        let quarantine = self.global.quarantine.lock();
        EngineReport {
            points_processed: self.global.processed.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            live_clusters,
            clusters_created: created,
            clusters_evicted: evicted,
            snapshots_retained,
            alerts_raised: self.global.alerts_raised.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            last_tick: self.global.last_tick.load(Ordering::Relaxed), // relaxed-ok: monotone watermark; readers tolerate a lagging value
            merges,
            mean_merge_micros: if merges > 0 {
                merge_nanos as f64 / 1_000.0 / merges as f64
            } else {
                0.0
            },
            health,
            points_rejected: self.global.rejected.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            points_clamped: self.global.clamped.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            points_quarantined: quarantine.admitted(),
            quarantine_dropped: quarantine.dropped(),
            backpressure_dropped: self.global.backpressure_dropped.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            checkpoints_written: self.global.checkpoints_written.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            last_checkpoint_error: self.global.last_checkpoint_error.lock().clone(),
            load_stage,
            load_transitions: self.global.load_transitions.lock().clone(),
            points_shed: self.global.points_shed.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            points_sampled_out: self.global.sampled_out.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            sampling_keep_per_mille: if load_stage >= LoadStage::Sample {
                self.global.keep_per_mille.load(Ordering::Relaxed) // relaxed-ok: sampling knob; any recently published value keeps the gate unbiased
            } else {
                1_000
            },
            stalls_detected: self.global.stalls_detected.load(Ordering::Relaxed), // relaxed-ok: statistical read for reports/decisions that tolerate lag
            snapshot_bytes: budget.retained_bytes,
            snapshot_budget_evictions: budget.evictions,
            horizon_error_bound: budget.effective_error_bound,
            kernel_backend: umicro::kernel::simd::active().name(),
            restore_corrupt_generations: self
                .global
                .restore_corrupt_generations
                .load(Ordering::Relaxed), // relaxed-ok: set once at restore, read for reports
            per_shard,
        }
    }

    /// The degradation-ladder rung the engine is currently on.
    pub fn load_stage(&self) -> LoadStage {
        self.global.load_stage()
    }

    /// Forces the engine onto a ladder rung, bypassing the governor's
    /// hysteresis. Meant for tests, benchmarks, and operators who want
    /// manual overload control; the governor (if running) will keep walking
    /// the ladder from here on its own evidence.
    pub fn force_load_stage(&self, stage: LoadStage) {
        let from = self.global.load_stage();
        if from != stage {
            self.global.apply_stage(stage);
            self.global
                .record_transition(from, stage, self.channel_pressure());
        }
    }

    /// Mean channel fill fraction across shards (the governor's pressure
    /// signal).
    fn channel_pressure(&self) -> f64 {
        let mut backlog = 0u64;
        for shard in self.shards.iter() {
            let enq = shard.counters.enqueued.load(Ordering::Relaxed); // relaxed-ok: statistical read for reports/decisions that tolerate lag
            let proc = shard.counters.processed.load(Ordering::Relaxed); // relaxed-ok: statistical read for reports/decisions that tolerate lag
            backlog += enq.saturating_sub(proc);
        }
        let capacity =
            self.global.config.channel_capacity.max(1) as u64 * self.shards.len().max(1) as u64;
        backlog as f64 / capacity as f64
    }

    /// Graceful drain: stops admission, flushes every shard channel, runs a
    /// final merge, writes a final checkpoint (when a checkpoint path is
    /// configured), then shuts the engine down — reporting whether it all
    /// fit inside `deadline`.
    ///
    /// The flush itself is not interruptible mid-shard, so a wedged worker
    /// can push the drain past the deadline; `deadline_met` tells the
    /// caller honestly either way.
    pub fn shutdown_drain(&self, deadline: Duration) -> DrainOutcome {
        let started = Instant::now();
        self.global.draining.store(true, Ordering::Release);
        let replies: Vec<_> = self
            .txs
            .iter()
            .filter_map(|tx| {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(Command::Flush(reply_tx)).ok().map(|_| reply_rx)
            })
            .collect();
        let mut deadline_met = true;
        for rx in replies {
            let left = deadline.saturating_sub(started.elapsed());
            if rx.recv_timeout(left).is_err() {
                deadline_met = false;
            }
        }
        merge_and_record(&self.global, &self.shards);
        if let Some(path) = self.global.config.checkpoint_path.clone() {
            let seq = self.global.checkpoint_epoch.load(Ordering::Relaxed) + 1; // relaxed-ok: epoch pre-read; the election CAS re-validates before publishing
            self.global.checkpoint_epoch.store(seq, Ordering::Relaxed); // relaxed-ok: epoch pre-read; the election CAS re-validates before publishing
            match build_checkpoint(&self.global, &self.shards)
                .and_then(|ck| write_checkpoint(&self.global, &path, seq, &ck))
            {
                Ok(()) => {
                    self.global
                        .checkpoints_written
                        .fetch_add(1, Ordering::Relaxed); // relaxed-ok: monotone counter; report readers tolerate lag, no acquire pairing
                }
                Err(e) => {
                    *self.global.last_checkpoint_error.lock() = Some(e.to_string());
                }
            }
        }
        deadline_met &= started.elapsed() <= deadline;
        let report = self.shutdown();
        DrainOutcome {
            deadline_met,
            drain_millis: started.elapsed().as_millis() as u64,
            report,
        }
    }

    /// Stops every thread the engine owns: governor first (so no rescue
    /// consumer appears after the per-shard `spawned` counts are read),
    /// then one `Shutdown` per channel consumer, then joins.
    fn stop_workers(&self) {
        self.global.shutting_down.store(true, Ordering::Release);
        // Handles are moved out before joining so no handle-registry lock
        // is held while a thread winds down.
        let governor = self.governor.lock().take();
        if let Some(handle) = governor {
            let _ = handle.join();
        }
        for (i, tx) in self.txs.iter().enumerate() {
            let consumers = self.shards[i].spawned.load(Ordering::Acquire).max(1);
            for _ in 0..consumers {
                let _ = tx.send(Command::Shutdown);
            }
        }
        let workers: Vec<_> = self.workers.lock().drain(..).collect();
        for handle in workers {
            let _ = handle.join();
        }
        let extra: Vec<_> = self.global.extra_workers.lock().drain(..).collect();
        for handle in extra {
            let _ = handle.join();
        }
    }

    /// Stops the workers and returns the final accounting. Idempotent:
    /// subsequent calls (and [`Self::stop`]) return the cached report of
    /// the first shutdown instead of re-sampling a dead engine.
    pub fn shutdown(&self) -> EngineReport {
        if let Some(report) = self.global.final_report.lock().clone() {
            return report;
        }
        self.stop_workers();
        let report = self.report();
        let mut cache = self.global.final_report.lock();
        if let Some(existing) = cache.clone() {
            return existing;
        }
        *cache = Some(report.clone());
        report
    }

    /// Alias for [`Self::shutdown`], matching the common stop/start naming.
    pub fn stop(&self) -> EngineReport {
        self.shutdown()
    }
}

/// The unified read API over the whole sharded engine. Unlike the blanket
/// impl for plain clusterers, `horizon_clusters` here is pyramid-exact:
/// it answers by snapshot subtraction over the merged store, so a horizon
/// of `h` really means the trailing `h` ticks. `export_state` is `None` —
/// a sharded engine's portable state is the [`EngineCheckpoint`] (shard
/// states plus the snapshot store), written via [`StreamEngine::checkpoint`],
/// not a single flat [`ClustererState`].
///
/// `ClusterQuery` is referenced by path rather than imported: bringing it
/// into scope alongside [`OnlineClusterer`] would make every
/// `alg.macro_cluster(..)` call in this module ambiguous (both traits
/// expose the method, one via blanket impl).
impl umicro::ClusterQuery for StreamEngine {
    type Summary = Ecf;

    fn horizon_clusters(&mut self, horizon: u64) -> Result<ClusterSetSnapshot<Ecf>> {
        StreamEngine::horizon_clusters(self, horizon)
    }

    fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
        StreamEngine::macro_clusters(self, k, seed)
    }

    fn stats(&self) -> QueryStats {
        let mut num_clusters = 0usize;
        let mut bytes = 0usize;
        for shard in self.shards.iter() {
            let st = shard.state.lock();
            num_clusters += st.alg.num_clusters();
            bytes += st.alg.approx_memory_bytes();
        }
        QueryStats {
            points_processed: self.points_processed(),
            num_clusters,
            approx_memory_bytes: bytes,
        }
    }

    fn export_state(&self) -> Option<ClustererState<Ecf>> {
        None
    }
}

impl Drop for StreamEngine {
    fn drop(&mut self) {
        if self.global.final_report.lock().is_none() {
            self.stop_workers();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::EngineBuilder;
    use crate::load::LoadPolicy;
    use umicro::{InsertOutcome, UMicroConfig};
    use ustream_common::Timestamp;

    fn pt(x: f64, y: f64, t: Timestamp) -> UncertainPoint {
        UncertainPoint::new(vec![x, y], vec![0.3, 0.3], t, None)
    }

    fn engine(n_micro: usize) -> StreamEngine {
        EngineBuilder::from_config(EngineConfig::new(UMicroConfig::new(n_micro, 2).unwrap()))
            .build()
            .unwrap()
    }

    #[test]
    fn ingests_and_counts() {
        let e = engine(8);
        for t in 1..=500u64 {
            let x = if t % 2 == 0 { 0.0 } else { 20.0 };
            e.push(pt(x, x, t)).unwrap();
        }
        e.flush();
        assert_eq!(e.points_processed(), 500);
        assert!(!e.micro_clusters().is_empty());
        let report = e.shutdown();
        assert_eq!(report.points_processed, 500);
        assert_eq!(report.last_tick, 500);
        assert!(report.snapshots_retained > 0);
        assert_eq!(report.health, HealthStatus::Healthy);
        assert_eq!(report.points_rejected, 0);
    }

    #[test]
    fn macro_query_during_ingestion() {
        let e = engine(8);
        for t in 1..=200u64 {
            let x = if t % 2 == 0 { 0.0 } else { 30.0 };
            e.push(pt(x, -x, t)).unwrap();
        }
        e.flush();
        let mac = e.macro_clusters(2, 3);
        assert_eq!(mac.k(), 2);
        let mut lo = false;
        let mut hi = false;
        for c in &mac.centroids {
            if c[0] < 15.0 {
                lo = true;
            } else {
                hi = true;
            }
        }
        assert!(lo && hi, "centroids: {:?}", mac.centroids);
    }

    #[test]
    fn horizon_query_sees_recent_regime() {
        let e = engine(8);
        for t in 1..=1_024u64 {
            let x = if t <= 768 { 0.0 } else { 50.0 };
            e.push(pt(x, 0.0, t)).unwrap();
        }
        e.flush();
        let window = e.horizon_clusters(128).unwrap();
        let total = window.total_count();
        let new_mass: f64 = window
            .clusters
            .values()
            .filter(|c| ustream_common::AdditiveFeature::centroid(*c)[0] > 25.0)
            .map(ustream_common::AdditiveFeature::count)
            .sum();
        assert!(new_mass / total > 0.9, "{new_mass}/{total}");
        e.shutdown();
    }

    #[test]
    fn evolution_detects_regime_change() {
        let e = engine(12);
        for t in 1..=1_024u64 {
            let x = if t <= 512 { 0.0 } else { 60.0 };
            e.push(pt(x, 0.0, t)).unwrap();
        }
        e.flush();
        // Windows (0,512] vs (512,1024]: complete replacement.
        let report = e.evolution(512, 1.0).unwrap();
        assert!(report.emerged() > 0, "no emerged clusters: {report:?}");
        assert!(
            report.turbulence() > 0.5,
            "regime change should be turbulent: {}",
            report.turbulence()
        );
        e.shutdown();
    }

    #[test]
    fn novelty_alert_fires_on_outlier() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap()).with_novelty_factor(Some(4.0)),
        )
        .build()
        .unwrap();
        // Stable traffic, then one wild outlier.
        for t in 1..=400u64 {
            let x = (t % 7) as f64 * 0.1;
            e.push(pt(x, -x, t)).unwrap();
        }
        e.push(pt(10_000.0, -10_000.0, 401)).unwrap();
        for t in 402..=420u64 {
            e.push(pt(0.2, -0.2, t)).unwrap();
        }
        e.flush();
        let alerts = e.drain_alerts();
        assert!(
            alerts.iter().any(|a| a.timestamp == 401),
            "outlier not flagged: {alerts:?}"
        );
        let report = e.shutdown();
        assert!(report.alerts_raised >= 1);
    }

    #[test]
    fn quantile_baseline_novelty_alerting() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_novelty_factor(Some(4.0))
                .with_novelty_quantile(0.95),
        )
        .build()
        .unwrap();
        for t in 1..=400u64 {
            let x = (t % 7) as f64 * 0.1;
            e.push(pt(x, -x, t)).unwrap();
        }
        e.push(pt(5_000.0, -5_000.0, 401)).unwrap();
        e.flush();
        let alerts = e.drain_alerts();
        assert!(
            alerts.iter().any(|a| a.timestamp == 401),
            "quantile baseline missed the outlier: {alerts:?}"
        );
        // The quantile baseline is far sturdier than the mean against a
        // heavy tail: regular traffic raised no alerts.
        assert!(alerts.len() <= 3, "too many false alerts: {}", alerts.len());
        e.shutdown();
    }

    #[test]
    fn mean_baseline_allocates_no_quantile_sketch() {
        // The default configuration baselines on the mean; the P² sketch
        // must not exist (and therefore cannot cost anything per point).
        let config = EngineConfig::new(UMicroConfig::new(4, 2).unwrap());
        assert!(NoveltyMonitor::new(&config).quantile.is_none());
        let config = config.with_novelty_quantile(0.9);
        assert!(NoveltyMonitor::new(&config).quantile.is_some());
        // Novelty disabled → no sketch either, whatever the baseline says.
        let config = EngineConfig::new(UMicroConfig::new(4, 2).unwrap())
            .with_novelty_factor(None)
            .with_novelty_quantile(0.9);
        assert!(NoveltyMonitor::new(&config).quantile.is_none());
    }

    #[test]
    fn decayed_engine_runs() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_decay_half_life(200.0)
                .with_snapshot_every(8),
        )
        .build()
        .unwrap();
        for t in 1..=300u64 {
            e.push(pt((t % 3) as f64, 0.0, t)).unwrap();
        }
        e.flush();
        let stats = e.stats();
        assert_eq!(stats.points_processed, 300);
        // Snapshot cadence of 8 → roughly 300/8 recordings (retention caps).
        assert!(stats.snapshots_retained > 0);
        e.shutdown();
    }

    #[test]
    fn multi_producer_ingestion() {
        let e = Arc::new(engine(16));
        let mut handles = Vec::new();
        for producer in 0..4u64 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let t = producer * 250 + i + 1;
                    let x = (producer * 25) as f64;
                    e.push(pt(x, x, t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        e.flush();
        assert_eq!(e.points_processed(), 1_000);
        let report = e.shutdown();
        assert_eq!(report.points_processed, 1_000);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let e = engine(4);
        e.push(pt(0.0, 0.0, 1)).unwrap();
        let a = e.shutdown();
        let b = e.shutdown();
        let c = e.stop();
        assert_eq!(a.points_processed, b.points_processed);
        // Regression: the second call must return the *cached* first report,
        // not re-sample a dead engine (which used to flip per-shard `alive`
        // accounting and re-send shutdowns into a closed channel).
        assert_eq!(a.health, b.health);
        assert_eq!(a.per_shard.len(), b.per_shard.len());
        for (x, y) in a.per_shard.iter().zip(&b.per_shard) {
            assert_eq!(x.processed, y.processed);
            assert_eq!(x.alive, y.alive);
        }
        assert_eq!(b.points_processed, c.points_processed);
        assert_eq!(b.load_stage, c.load_stage);
    }

    #[test]
    fn shutdown_drain_flushes_and_reports_deadline() {
        let e = engine(8);
        for t in 1..=500u64 {
            e.push(pt((t % 7) as f64, -((t % 5) as f64), t)).unwrap();
        }
        let outcome = e.shutdown_drain(Duration::from_secs(30));
        assert!(outcome.deadline_met, "generous deadline must be met");
        assert_eq!(outcome.report.points_processed, 500);
        // Admission is closed once draining starts.
        assert!(matches!(
            e.push(pt(0.0, 0.0, 501)),
            Err(UStreamError::EngineStopped)
        ));
    }

    #[test]
    fn shutdown_drain_writes_final_checkpoint() {
        let path = temp_ckpt_path("drain-final");
        let config = EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
            .with_snapshot_every(64)
            .with_auto_checkpoint(1_000_000, &path); // cadence never fires
        let e = EngineBuilder::from_config(config).build().unwrap();
        for t in 1..=200u64 {
            e.push(pt(1.0, 2.0, t)).unwrap();
        }
        let outcome = e.shutdown_drain(Duration::from_secs(30));
        assert_eq!(outcome.report.checkpoints_written, 1);
        let restored = StreamEngine::restore(&path).unwrap();
        assert_eq!(restored.points_processed(), 200);
        restored.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn forced_sampling_keeps_exactly_the_configured_fraction() {
        let config = EngineConfig::new(UMicroConfig::new(16, 2).unwrap())
            .with_load_policy(LoadPolicy::default()); // keep_per_mille = 500
        let e = EngineBuilder::from_config(config).build().unwrap();
        e.force_load_stage(LoadStage::Sample);
        for t in 1..=1_000u64 {
            e.push(pt((t % 3) as f64, 0.0, t)).unwrap();
        }
        e.flush();
        // Deterministic gate: seq % 1000 < 500 admits exactly half.
        assert_eq!(e.points_processed(), 500);
        let report = e.shutdown();
        assert_eq!(report.points_sampled_out, 500);
        assert_eq!(report.sampling_keep_per_mille, 500);
        assert_eq!(report.load_stage, LoadStage::Sample);
        assert_eq!(report.load_transitions.len(), 1);
        assert_eq!(report.load_transitions[0].from, LoadStage::Normal);
        assert_eq!(report.load_transitions[0].to, LoadStage::Sample);
    }

    #[test]
    fn forced_shed_drops_and_counts_then_recovers() {
        let config = EngineConfig::new(UMicroConfig::new(16, 2).unwrap())
            .with_load_policy(LoadPolicy::default());
        let e = EngineBuilder::from_config(config).build().unwrap();
        for t in 1..=100u64 {
            e.push(pt(0.0, 0.0, t)).unwrap();
        }
        e.force_load_stage(LoadStage::Shed);
        for t in 101..=200u64 {
            e.push(pt(0.0, 0.0, t)).unwrap(); // accepted but shed
        }
        e.push_slice(&[pt(0.0, 0.0, 201), pt(0.0, 0.0, 202)])
            .unwrap();
        e.force_load_stage(LoadStage::Normal);
        for t in 203..=250u64 {
            e.push(pt(0.0, 0.0, t)).unwrap();
        }
        e.flush();
        assert_eq!(e.points_processed(), 148);
        let report = e.shutdown();
        assert_eq!(report.points_shed, 102);
        assert_eq!(report.load_stage, LoadStage::Normal);
        assert_eq!(report.load_transitions.len(), 2);
        assert_eq!(report.sampling_keep_per_mille, 1_000);
    }

    #[test]
    fn push_with_timeout_accepts_when_idle_and_stops_when_down() {
        let e = engine(8);
        e.push_with_timeout(pt(1.0, 1.0, 1), Duration::from_millis(100))
            .unwrap();
        e.flush();
        assert_eq!(e.points_processed(), 1);
        e.shutdown();
        assert!(matches!(
            e.push_with_timeout(pt(1.0, 1.0, 2), Duration::from_millis(10)),
            Err(UStreamError::EngineStopped)
        ));
    }

    #[test]
    fn push_with_timeout_reports_deadline_exceeded_on_full_channel() {
        let mut config = EngineConfig::new(UMicroConfig::new(8, 2).unwrap());
        config.channel_capacity = 1;
        let e = EngineBuilder::from_config(config)
            .build_with(|_shard| -> DynClusterer {
                Box::new(Sluggish {
                    inner: Box::new(UMicro::new(UMicroConfig::new(8, 2).unwrap())),
                })
            })
            .unwrap();
        // Saturate: each insert takes ~20ms, capacity 1, so a short deadline
        // cannot win the enqueue race for long.
        let mut saw_deadline = false;
        for t in 1..=50u64 {
            match e.push_with_timeout(pt(0.0, 0.0, t), Duration::from_micros(50)) {
                Ok(()) => {}
                Err(UStreamError::DeadlineExceeded { .. }) => {
                    saw_deadline = true;
                    break;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        assert!(saw_deadline, "a 50µs deadline must eventually trip");
        e.shutdown();
    }

    #[test]
    fn push_after_shutdown_errors_instead_of_panicking() {
        let e = engine(4);
        e.shutdown();
        assert!(matches!(
            e.push(pt(0.0, 0.0, 1)),
            Err(UStreamError::EngineStopped)
        ));
        assert!(matches!(
            e.try_push(pt(0.0, 0.0, 1)),
            Err(TryPushError::Stopped(_))
        ));
        assert!(e.push_slice(&[pt(0.0, 0.0, 1)]).is_err());
    }

    #[test]
    fn sharded_engine_processes_everything() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(16, 2).unwrap())
                .with_shards(4)
                .with_snapshot_every(64),
        )
        .build()
        .unwrap();
        assert_eq!(e.shards(), 4);
        for t in 1..=2_000u64 {
            let x = if t % 2 == 0 { 0.0 } else { 40.0 };
            e.push(pt(x, x, t)).unwrap();
        }
        e.flush();
        assert_eq!(e.points_processed(), 2_000);
        let report = e.shutdown();
        assert_eq!(report.points_processed, 2_000);
        assert_eq!(report.per_shard.len(), 4);
        // Round-robin: every shard saw an even quarter of the stream.
        for s in &report.per_shard {
            assert_eq!(s.processed, 500, "shard {} uneven: {s:?}", s.shard);
            assert_eq!(s.queue_depth, 0);
            assert_eq!(s.restarts, 0);
        }
        assert!(report.merges >= 2_000 / 64);
        assert!(report.mean_merge_micros > 0.0);
    }

    #[test]
    fn sharded_ids_are_namespaced_and_disjoint() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_shards(2)
                .with_snapshot_every(32),
        )
        .build()
        .unwrap();
        for t in 1..=400u64 {
            let x = if t % 2 == 0 { 0.0 } else { 25.0 };
            e.push(pt(x, -x, t)).unwrap();
        }
        e.flush();
        let clusters = e.micro_clusters();
        let mut seen = std::collections::BTreeSet::new();
        for c in &clusters {
            assert!(seen.insert(c.id), "duplicate global id {}", c.id);
        }
        let shards_seen: std::collections::BTreeSet<usize> = clusters
            .iter()
            .map(|c| ustream_snapshot::shard_of_id(c.id))
            .collect();
        assert_eq!(shards_seen.len(), 2, "both shards hold clusters");
        e.shutdown();
    }

    #[test]
    fn sharded_merge_preserves_total_weight() {
        // Exactness of the shard merge: with a budget large enough that no
        // shard evicts, the merged live view carries every clustered point.
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(64, 2).unwrap())
                .with_shards(4)
                .with_snapshot_every(100),
        )
        .build()
        .unwrap();
        for t in 1..=1_000u64 {
            e.push(pt((t % 5) as f64, (t % 3) as f64, t)).unwrap();
        }
        e.flush();
        let total: f64 = e
            .micro_clusters()
            .iter()
            .map(|c| ustream_common::AdditiveFeature::count(&c.ecf))
            .sum();
        assert!(
            (total - 1_000.0).abs() < 1e-6,
            "merged view lost weight: {total}"
        );
        e.shutdown();
    }

    #[test]
    fn push_slice_batches_across_shards() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_shards(2)
                .with_snapshot_every(50),
        )
        .build()
        .unwrap();
        let batch: Vec<UncertainPoint> = (1..=600u64).map(|t| pt((t % 4) as f64, 0.0, t)).collect();
        e.push_slice(&batch).unwrap();
        e.flush();
        assert_eq!(e.points_processed(), 600);
        let report = e.shutdown();
        // Contiguous halves: both shards got exactly half the batch.
        assert_eq!(report.per_shard[0].processed, 300);
        assert_eq!(report.per_shard[1].processed, 300);
    }

    #[test]
    fn try_push_hands_point_back_when_full() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(4, 2).unwrap()).with_snapshot_every(1_000),
        )
        .build()
        .unwrap();
        // The success path, then the deterministic Stopped path with the
        // record handed back intact.
        assert!(e.try_push(pt(0.0, 0.0, 1)).is_ok());
        e.flush();
        e.shutdown();
        match e.try_push(pt(7.0, 7.0, 2)) {
            Err(err) => {
                assert!(!err.is_full());
                let p = err.into_inner();
                assert_eq!(p.values(), &[7.0, 7.0]);
            }
            Ok(()) => panic!("push into a stopped engine must fail"),
        }
    }

    #[test]
    fn custom_clusterer_factory() {
        // start_with lets callers supply their own OnlineClusterer stack.
        let config = EngineConfig::new(UMicroConfig::new(6, 2).unwrap());
        let shard_cfg = {
            let mut c = config.umicro.clone();
            c.n_micro = config.shard_n_micro();
            c
        };
        let e = EngineBuilder::from_config(config)
            .build_with(move |_i| Box::new(UMicro::new(shard_cfg.clone())) as DynClusterer)
            .unwrap();
        for t in 1..=100u64 {
            e.push(pt((t % 2) as f64 * 10.0, 0.0, t)).unwrap();
        }
        e.flush();
        assert_eq!(e.points_processed(), 100);
        e.shutdown();
    }

    // ---- validation / quarantine ----------------------------------------

    #[test]
    fn reject_policy_refuses_nan_points() {
        let e = engine(8); // default policy: Reject
        match e.push(pt(f64::NAN, 0.0, 1)) {
            Err(UStreamError::InvalidPoint(msg)) => {
                assert!(msg.contains("non-finite"), "unexpected message: {msg}");
            }
            other => panic!("NaN push should be rejected, got {other:?}"),
        }
        // try_push hands the record back with the reason.
        match e.try_push(pt(f64::INFINITY, 0.0, 2)) {
            Err(TryPushError::Invalid(p, reason)) => {
                assert!(p.values()[0].is_infinite());
                assert!(reason.contains("non-finite"));
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        e.flush();
        let report = e.stats();
        assert_eq!(report.points_rejected, 2);
        assert_eq!(report.points_processed, 0);
        e.shutdown();
    }

    #[test]
    fn clamp_policy_repairs_nan_points() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(4, 2).unwrap())
                .with_validation(Some(ValidationPolicy::Clamp)),
        )
        .build()
        .unwrap();
        e.push(pt(f64::NAN, 5.0, 1)).unwrap();
        e.push(pt(1.0, 5.0, 2)).unwrap();
        e.flush();
        let report = e.stats();
        assert_eq!(report.points_clamped, 1);
        assert_eq!(report.points_processed, 2);
        // The clamped coordinate entered as 0.0 — everything stays finite.
        for c in e.micro_clusters() {
            let centroid = ustream_common::AdditiveFeature::centroid(&c.ecf);
            assert!(centroid.iter().all(|v| v.is_finite()), "{centroid:?}");
        }
        e.shutdown();
    }

    #[test]
    fn clamp_policy_still_rejects_dimension_mismatch() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(4, 2).unwrap())
                .with_validation(Some(ValidationPolicy::Clamp)),
        )
        .build()
        .unwrap();
        let skinny = UncertainPoint::new(vec![1.0], vec![0.1], 1, None);
        assert!(matches!(e.push(skinny), Err(UStreamError::InvalidPoint(_))));
        assert_eq!(e.stats().points_rejected, 1);
        e.shutdown();
    }

    #[test]
    fn quarantine_policy_diverts_and_counts() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(4, 2).unwrap())
                .with_validation(Some(ValidationPolicy::Quarantine))
                .with_quarantine_capacity(4),
        )
        .build()
        .unwrap();
        e.push(pt(f64::NAN, 0.0, 1)).unwrap(); // diverted, not an error
        e.push(pt(1.0, 1.0, 2)).unwrap();
        e.flush();
        let report = e.stats();
        assert_eq!(report.points_quarantined, 1);
        assert_eq!(report.points_processed, 1);
        let held = e.drain_quarantine();
        assert_eq!(held.len(), 1);
        assert!(held[0].fault.contains("non-finite"), "{}", held[0].fault);
        assert!(held[0].point.values()[0].is_nan());
        assert!(e.drain_quarantine().is_empty());
        e.shutdown();
    }

    #[test]
    fn push_slice_rejects_batches_atomically() {
        let e = engine(8); // Reject policy
        let batch = vec![pt(0.0, 0.0, 1), pt(f64::NAN, 0.0, 2), pt(1.0, 1.0, 3)];
        assert!(matches!(
            e.push_slice(&batch),
            Err(UStreamError::InvalidPoint(_))
        ));
        e.flush();
        // Nothing from the poisoned batch was enqueued.
        assert_eq!(e.points_processed(), 0);
        assert_eq!(e.stats().points_rejected, 1);
        e.shutdown();
    }

    #[test]
    fn monotone_timestamps_enforced_when_asked() {
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(4, 2).unwrap()).with_monotone_timestamps(true),
        )
        .build()
        .unwrap();
        e.push(pt(0.0, 0.0, 100)).unwrap();
        e.flush();
        match e.push(pt(0.0, 0.0, 5)) {
            Err(UStreamError::InvalidPoint(msg)) => {
                assert!(msg.contains("behind the engine clock"), "{msg}");
            }
            other => panic!("stale timestamp should be rejected, got {other:?}"),
        }
        e.shutdown();
    }

    // ---- supervision -----------------------------------------------------

    /// A clusterer that panics on a sentinel record — exercises the worker
    /// supervision without the failpoints feature.
    struct Panicky {
        inner: DynClusterer,
    }

    impl OnlineClusterer for Panicky {
        type Summary = Ecf;

        fn insert(&mut self, p: &UncertainPoint) -> InsertOutcome {
            assert!(p.values()[0] < 600.0, "sentinel poison record");
            self.inner.insert(p)
        }

        fn micro_clusters(&self) -> Vec<(u64, Ecf)> {
            self.inner.micro_clusters()
        }

        fn num_clusters(&self) -> usize {
            self.inner.num_clusters()
        }

        fn points_processed(&self) -> u64 {
            self.inner.points_processed()
        }

        fn isolation(&self, point: &UncertainPoint) -> Option<f64> {
            self.inner.isolation(point)
        }

        fn snapshot_at(&mut self, now: Timestamp) -> ClusterSetSnapshot<Ecf> {
            self.inner.snapshot_at(now)
        }

        fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
            self.inner.macro_cluster(k, seed)
        }

        fn export_state(&self) -> Option<ClustererState<Ecf>> {
            self.inner.export_state()
        }

        fn import_state(&mut self, state: &ClustererState<Ecf>) -> Result<()> {
            self.inner.import_state(state)
        }
    }

    /// A clusterer whose every insert takes ~20ms — saturates a tiny
    /// channel so backpressure paths can be exercised deterministically.
    struct Sluggish {
        inner: DynClusterer,
    }

    impl OnlineClusterer for Sluggish {
        type Summary = Ecf;

        fn insert(&mut self, p: &UncertainPoint) -> InsertOutcome {
            std::thread::sleep(Duration::from_millis(20));
            self.inner.insert(p)
        }

        fn micro_clusters(&self) -> Vec<(u64, Ecf)> {
            self.inner.micro_clusters()
        }

        fn num_clusters(&self) -> usize {
            self.inner.num_clusters()
        }

        fn points_processed(&self) -> u64 {
            self.inner.points_processed()
        }

        fn isolation(&self, point: &UncertainPoint) -> Option<f64> {
            self.inner.isolation(point)
        }

        fn snapshot_at(&mut self, now: Timestamp) -> ClusterSetSnapshot<Ecf> {
            self.inner.snapshot_at(now)
        }

        fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
            self.inner.macro_cluster(k, seed)
        }

        fn export_state(&self) -> Option<ClustererState<Ecf>> {
            self.inner.export_state()
        }

        fn import_state(&mut self, state: &ClustererState<Ecf>) -> Result<()> {
            self.inner.import_state(state)
        }
    }

    #[test]
    fn worker_panic_respawns_and_reports_degraded() {
        let config = EngineConfig::new(UMicroConfig::new(8, 2).unwrap()).with_snapshot_every(8);
        let shard_cfg = {
            let mut c = config.umicro.clone();
            c.n_micro = config.shard_n_micro();
            c
        };
        let e = EngineBuilder::from_config(config)
            .build_with(move |_i| {
                Box::new(Panicky {
                    inner: Box::new(UMicro::new(shard_cfg.clone())),
                }) as DynClusterer
            })
            .unwrap();

        for t in 1..=64u64 {
            e.push(pt((t % 2) as f64, 0.0, t)).unwrap();
        }
        e.flush();
        assert_eq!(e.stats().health, HealthStatus::Healthy);
        let clusters_before = e.micro_clusters().len();
        assert!(clusters_before > 0);

        // The sentinel makes the worker panic mid-insert; the supervisor
        // respawns it seeded from the last merge and keeps draining.
        e.push(pt(666.0, 0.0, 65)).unwrap();
        for t in 66..=128u64 {
            e.push(pt((t % 2) as f64, 0.0, t)).unwrap();
        }
        e.flush(); // barrier replies only after the respawned worker drains

        let report = e.stats();
        assert_eq!(report.health, HealthStatus::Degraded);
        assert_eq!(report.per_shard[0].restarts, 1);
        assert!(report.per_shard[0].alive);
        assert!(
            report.per_shard[0]
                .last_panic
                .as_deref()
                .unwrap_or("")
                .contains("sentinel"),
            "panic payload lost: {:?}",
            report.per_shard[0].last_panic
        );
        // The respawned shard was reseeded from the merged history and kept
        // clustering: the merged view still holds clusters and ingestion
        // continued past the poison record.
        assert!(!e.micro_clusters().is_empty());
        // 64 + 1 poison + 63 tail; the poison record was counted before the
        // insert panicked (it is the at-most-one lost record).
        assert_eq!(e.points_processed(), 128);
        let final_report = e.shutdown();
        assert_eq!(final_report.health, HealthStatus::Degraded);
    }

    // ---- checkpoint / restore -------------------------------------------

    fn temp_ckpt_path(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("ustream-engine-{tag}-{}.ckpt", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn checkpoint_restore_round_trip_is_exact() {
        let path = temp_ckpt_path("roundtrip");
        let config = EngineConfig::new(UMicroConfig::new(8, 2).unwrap()).with_snapshot_every(16);
        let e = EngineBuilder::from_config(config).build().unwrap();
        for t in 1..=256u64 {
            let x = if t % 2 == 0 { 0.0 } else { 30.0 };
            e.push(pt(x, -x, t)).unwrap();
        }
        e.flush();
        e.checkpoint(&path).unwrap();

        let r = StreamEngine::restore(&path).unwrap();
        assert_eq!(r.points_processed(), e.points_processed());
        let (mut a, mut b) = (e.micro_clusters(), r.micro_clusters());
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.ecf, y.ecf, "ECF of cluster {} diverged", x.id);
        }
        // Horizon queries resolve identically from the replayed store.
        let ha = e.horizon_clusters(64).unwrap();
        let hb = r.horizon_clusters(64).unwrap();
        assert_eq!(ha.clusters, hb.clusters);

        // Continuation: both engines see the same tail and stay identical.
        for t in 257..=320u64 {
            let p = pt((t % 3) as f64, (t % 5) as f64, t);
            e.push(p.clone()).unwrap();
            r.push(p).unwrap();
        }
        e.flush();
        r.flush();
        let (mut a, mut b) = (e.micro_clusters(), r.micro_clusters());
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(
                x.ecf, y.ecf,
                "post-restore continuation diverged at {}",
                x.id
            );
        }
        e.shutdown();
        r.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn auto_checkpoint_writes_periodically() {
        let path = temp_ckpt_path("auto");
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(4, 2).unwrap())
                .with_snapshot_every(8)
                .with_auto_checkpoint(50, path.clone()),
        )
        .build()
        .unwrap();
        for t in 1..=200u64 {
            e.push(pt((t % 2) as f64, 0.0, t)).unwrap();
        }
        e.flush();
        let report = e.stats();
        assert!(
            report.checkpoints_written >= 1,
            "no auto checkpoint: {report:?}"
        );
        assert_eq!(report.last_checkpoint_error, None);
        // The written file restores.
        let r = StreamEngine::restore(&path).unwrap();
        assert!(r.points_processed() >= 50);
        e.shutdown();
        r.shutdown();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_of_corrupt_file_errors() {
        let path = temp_ckpt_path("corrupt");
        std::fs::write(&path, b"USTREAMCKPT 1 4 0000000000000000\nzzzz").unwrap();
        match StreamEngine::restore(&path) {
            Err(UStreamError::Checkpoint(msg)) => {
                assert!(msg.contains("checksum"), "{msg}");
            }
            Err(other) => panic!("wrong error kind: {other:?}"),
            Ok(_) => panic!("corrupt checkpoint must fail cleanly"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sharded_checkpoint_restores_all_shards() {
        let path = temp_ckpt_path("sharded");
        let e = EngineBuilder::from_config(
            EngineConfig::new(UMicroConfig::new(16, 2).unwrap())
                .with_shards(4)
                .with_snapshot_every(32),
        )
        .build()
        .unwrap();
        for t in 1..=512u64 {
            let x = if t % 2 == 0 { 0.0 } else { 40.0 };
            e.push(pt(x, x, t)).unwrap();
        }
        e.flush();
        e.checkpoint(&path).unwrap();
        let r = StreamEngine::restore(&path).unwrap();
        assert_eq!(r.shards(), 4);
        assert_eq!(r.points_processed(), 512);
        let report = r.stats();
        for s in &report.per_shard {
            assert_eq!(s.processed, 128, "shard {} lost records", s.shard);
        }
        let (mut a, mut b) = (e.micro_clusters(), r.micro_clusters());
        a.sort_by_key(|c| c.id);
        b.sort_by_key(|c| c.id);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!((x.id, &x.ecf), (y.id, &y.ecf));
        }
        e.shutdown();
        r.shutdown();
        let _ = std::fs::remove_file(&path);
    }
}
