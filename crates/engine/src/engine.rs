//! The engine proper: shard workers, shared state and query API.
//!
//! ## Sharded topology
//!
//! Ingestion is spread across `config.shards` independent workers. Each
//! shard owns a bounded channel, a clusterer (any
//! [`OnlineClusterer<Summary = Ecf>`], boxed), and a novelty monitor; the
//! hot path locks only the shard's own mutex, so shards never contend with
//! each other while clustering. Records are routed round-robin.
//!
//! Because the ECF is additive (Property 2.1 of the paper), folding the
//! shard cluster sets into one global view is *exact*: the periodic merge
//! (every `snapshot_every` records, globally counted) unions the per-shard
//! summaries under namespaced ids ([`ustream_snapshot::namespaced_id`]) and
//! files the result in the pyramidal store, which serves all horizon and
//! evolution queries. With `shards = 1` the engine reproduces the classic
//! single-worker behaviour exactly (shard 0's ids are the identity
//! mapping).
//!
//! Lock ordering (deadlock freedom): a worker's ingest takes its own shard
//! lock, then at most the alert queue lock; the merge takes the horizon
//! lock first and then shard locks one at a time, never while an ingest
//! lock is held by the same thread. No path acquires the horizon lock while
//! holding a shard lock.

use crate::config::{EngineConfig, NoveltyBaseline};
use crate::report::{EngineReport, NoveltyAlert, ShardStats};
use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use umicro::macrocluster::macro_cluster_ecfs;
use umicro::{
    compare_windows, DecayedUMicro, Ecf, EvolutionReport, HorizonAnalyzer, MacroClustering,
    MicroCluster, OnlineClusterer, UMicro,
};
use ustream_common::{P2Quantile, Result, UStreamError, UncertainPoint};
use ustream_snapshot::{merge_namespaced, namespaced_id, ClusterSetSnapshot};

/// The boxed clusterer type each shard runs by default.
pub type DynClusterer = Box<dyn OnlineClusterer<Summary = Ecf>>;

enum Command {
    Point(Box<UncertainPoint>),
    /// A batch routed to this shard in one channel hop.
    Batch(Vec<UncertainPoint>),
    /// Barrier: reply once every previously routed record is clustered.
    Flush(Sender<()>),
    Shutdown,
}

/// Per-shard novelty baseline state.
///
/// The P² quantile sketch is allocated only when the configuration actually
/// baselines on a quantile — under [`NoveltyBaseline::Mean`] no sketch
/// exists and no per-point quantile bookkeeping runs.
struct NoveltyMonitor {
    factor: Option<f64>,
    baseline: NoveltyBaseline,
    mean: f64,
    quantile: Option<P2Quantile>,
    samples: u64,
}

impl NoveltyMonitor {
    fn new(config: &EngineConfig) -> Self {
        let quantile = match (config.novelty_factor, config.novelty_baseline) {
            (Some(_), NoveltyBaseline::Quantile(q)) => Some(P2Quantile::new(q)),
            _ => None,
        };
        Self {
            factor: config.novelty_factor,
            baseline: config.novelty_baseline,
            mean: 0.0,
            quantile,
            samples: 0,
        }
    }

    fn baseline_estimate(&self) -> f64 {
        match self.baseline {
            NoveltyBaseline::Mean => self.mean,
            NoveltyBaseline::Quantile(_) => self
                .quantile
                .as_ref()
                .and_then(P2Quantile::estimate)
                .unwrap_or(0.0),
        }
    }

    fn observe_ordinary(&mut self, isolation: f64) {
        self.samples += 1;
        let n = self.samples as f64;
        self.mean += (isolation - self.mean) / n;
        if let Some(q) = self.quantile.as_mut() {
            q.observe(isolation);
        }
    }
}

/// State a shard worker mutates under its own lock.
struct ShardState {
    alg: DynClusterer,
    created: u64,
    evicted: u64,
    novelty: NoveltyMonitor,
}

/// Lock-free per-shard instrumentation, readable from any thread.
#[derive(Default)]
struct ShardCounters {
    enqueued: AtomicU64,
    processed: AtomicU64,
    alerts: AtomicU64,
}

/// The shareable part of a shard: state + counters, no channel end.
struct ShardHandle {
    state: Mutex<ShardState>,
    counters: ShardCounters,
}

/// State shared by all shards and the query API.
struct Global {
    config: EngineConfig,
    /// Global records-processed ordinal; drives the merge cadence.
    processed: AtomicU64,
    last_tick: AtomicU64,
    alerts_raised: AtomicU64,
    merges: AtomicU64,
    merge_nanos: AtomicU64,
    horizons: Mutex<HorizonAnalyzer>,
    alerts: Mutex<VecDeque<NoveltyAlert>>,
}

/// Clusters one record under an already-held shard lock, maintaining the
/// shard's creation/eviction tallies and novelty monitor. `position` is the
/// record's global ordinal (used in alert records).
fn cluster_one(
    global: &Global,
    shard: &ShardHandle,
    shard_idx: usize,
    st: &mut ShardState,
    p: &UncertainPoint,
    position: u64,
) {
    // Novelty check before insertion (the cluster set the record met),
    // in the clusterer's own geometry.
    let isolation = match st.novelty.factor {
        Some(_) => st.alg.isolation(p),
        None => None,
    };

    let out = st.alg.insert(p);
    if out.created {
        st.created += 1;
    }
    if out.evicted.is_some() {
        st.evicted += 1;
    }

    if let (Some(factor), Some(isolation)) = (st.novelty.factor, isolation) {
        let baseline = st.novelty.baseline_estimate();
        // Warm-up: need a stable baseline before alerting.
        if st.novelty.samples >= 100 && isolation > factor * baseline.max(1e-12) {
            shard.counters.alerts.fetch_add(1, Ordering::Relaxed);
            global.alerts_raised.fetch_add(1, Ordering::Relaxed);
            let mut alerts = global.alerts.lock();
            alerts.push_back(NoveltyAlert {
                timestamp: p.timestamp(),
                position,
                isolation,
                baseline,
                cluster_id: namespaced_id(shard_idx, out.cluster_id),
            });
            while alerts.len() > global.config.max_alerts {
                alerts.pop_front();
            }
        } else {
            // Only non-alerting records update the baseline, so a burst
            // of outliers cannot talk the monitor into accepting them.
            st.novelty.observe_ordinary(isolation);
        }
    }
}

/// Clusters one record on its shard; returns `true` when this record
/// crossed a merge boundary (the caller then runs the merge with no shard
/// lock held).
fn ingest(global: &Global, shard: &ShardHandle, shard_idx: usize, p: &UncertainPoint) -> bool {
    let position = global.processed.fetch_add(1, Ordering::Relaxed) + 1;
    global.last_tick.fetch_max(p.timestamp(), Ordering::Relaxed);

    {
        let mut st = shard.state.lock();
        cluster_one(global, shard, shard_idx, &mut st, p, position);
    }

    shard.counters.processed.fetch_add(1, Ordering::Relaxed);
    position.is_multiple_of(global.config.snapshot_every)
}

/// Clusters a routed batch in sub-chunks: one global-ordinal reservation,
/// one shard-lock acquisition and — when novelty detection is off — one
/// [`OnlineClusterer::insert_batch`] call per sub-chunk, instead of one of
/// each per point. Sub-chunks are capped at `snapshot_every` records so the
/// merge cadence stays within one chunk of the per-point path; any merge
/// boundary the chunk crosses triggers [`merge_and_record`] after the shard
/// lock is released.
fn ingest_batch(
    global: &Global,
    shard: &ShardHandle,
    shard_idx: usize,
    points: &[UncertainPoint],
    all_shards: &[Arc<ShardHandle>],
) {
    let cap = global.config.snapshot_every.clamp(1, 4_096) as usize;
    let mut outcomes = Vec::with_capacity(cap);
    for chunk in points.chunks(cap) {
        let len = chunk.len() as u64;
        let start = global.processed.fetch_add(len, Ordering::Relaxed);
        let end = start + len;
        if let Some(max_tick) = chunk.iter().map(UncertainPoint::timestamp).max() {
            global.last_tick.fetch_max(max_tick, Ordering::Relaxed);
        }

        {
            let mut st = shard.state.lock();
            if st.novelty.factor.is_some() {
                // Novelty needs the pre-insertion isolation of every record,
                // so the chunk still walks point by point — but under a
                // single lock acquisition.
                for (i, p) in chunk.iter().enumerate() {
                    cluster_one(global, shard, shard_idx, &mut st, p, start + i as u64 + 1);
                }
            } else {
                outcomes.clear();
                st.alg.insert_batch(chunk, &mut outcomes);
                for out in &outcomes {
                    if out.created {
                        st.created += 1;
                    }
                    if out.evicted.is_some() {
                        st.evicted += 1;
                    }
                }
            }
        }

        shard.counters.processed.fetch_add(len, Ordering::Relaxed);
        let every = global.config.snapshot_every;
        if end / every != start / every {
            merge_and_record(global, all_shards);
        }
    }
}

/// Folds every shard's cluster set into one namespaced global snapshot and
/// files it in the pyramidal store. Serialised on the horizon lock; shard
/// locks are taken one at a time, so ingestion on other shards stalls only
/// for its own shard's brief snapshot.
fn merge_and_record(global: &Global, shards: &[Arc<ShardHandle>]) {
    let started = Instant::now();
    let mut horizons = global.horizons.lock();
    let now = global.last_tick.load(Ordering::Relaxed);
    let merged = merge_namespaced(
        shards
            .iter()
            .enumerate()
            .map(|(i, h)| (i, h.state.lock().alg.snapshot_at(now))),
    );
    horizons.record_snapshot(now, merged);
    drop(horizons);
    global.merges.fetch_add(1, Ordering::Relaxed);
    global
        .merge_nanos
        .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

/// Why a [`StreamEngine::try_push`] could not enqueue; the record is handed
/// back in both variants.
#[derive(Debug)]
pub enum TryPushError {
    /// Every shard channel is at capacity (backpressure).
    Full(UncertainPoint),
    /// The engine has shut down.
    Stopped(UncertainPoint),
}

impl TryPushError {
    /// Recovers the record that could not be enqueued.
    pub fn into_inner(self) -> UncertainPoint {
        match self {
            TryPushError::Full(p) | TryPushError::Stopped(p) => p,
        }
    }

    /// Whether the failure was backpressure (retry later) rather than
    /// shutdown (permanent).
    pub fn is_full(&self) -> bool {
        matches!(self, TryPushError::Full(_))
    }
}

impl std::fmt::Display for TryPushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryPushError::Full(_) => f.write_str("all shard channels are full"),
            TryPushError::Stopped(_) => f.write_str("engine workers have stopped"),
        }
    }
}

impl std::error::Error for TryPushError {}

/// The embeddable analytics engine. See the crate docs for an example.
///
/// All query methods are callable from any thread while ingestion is in
/// flight; they take shard/horizon locks briefly and never block on the
/// channels.
pub struct StreamEngine {
    txs: Vec<Sender<Command>>,
    shards: Vec<Arc<ShardHandle>>,
    global: Arc<Global>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    router: AtomicU64,
    started: Instant,
}

impl StreamEngine {
    /// Starts the shard workers with the default UMicro clusterers (decayed
    /// when `config.decay_half_life` is set), each holding an even share of
    /// the global `n_micro` budget.
    pub fn start(config: EngineConfig) -> Self {
        let mut shard_umicro = config.umicro.clone();
        shard_umicro.n_micro = config.shard_n_micro();
        let decay = config.decay_half_life;
        Self::start_with(config, move |_shard| -> DynClusterer {
            match decay {
                Some(hl) => Box::new(DecayedUMicro::with_half_life(shard_umicro.clone(), hl)),
                None => Box::new(UMicro::new(shard_umicro.clone())),
            }
        })
    }

    /// Starts the shard workers with caller-supplied clusterers — any
    /// [`OnlineClusterer`] over ECF summaries. The factory is invoked once
    /// per shard index; it is responsible for sizing each shard's budget.
    pub fn start_with(
        config: EngineConfig,
        mut clusterer: impl FnMut(usize) -> DynClusterer,
    ) -> Self {
        let n_shards = config.shards.max(1);
        let global = Arc::new(Global {
            processed: AtomicU64::new(0),
            last_tick: AtomicU64::new(0),
            alerts_raised: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            merge_nanos: AtomicU64::new(0),
            horizons: Mutex::new(HorizonAnalyzer::new(config.pyramid)),
            alerts: Mutex::new(VecDeque::new()),
            config,
        });

        let shards: Vec<Arc<ShardHandle>> = (0..n_shards)
            .map(|i| {
                Arc::new(ShardHandle {
                    state: Mutex::new(ShardState {
                        alg: clusterer(i),
                        created: 0,
                        evicted: 0,
                        novelty: NoveltyMonitor::new(&global.config),
                    }),
                    counters: ShardCounters::default(),
                })
            })
            .collect();

        let mut txs = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let (tx, rx) = bounded::<Command>(global.config.channel_capacity);
            let global = Arc::clone(&global);
            let all_shards = shards.clone();
            let handle = std::thread::Builder::new()
                .name(format!("ustream-shard-{i}"))
                .spawn(move || {
                    let own = &all_shards[i];
                    for cmd in rx {
                        match cmd {
                            Command::Point(p) => {
                                if ingest(&global, own, i, &p) {
                                    merge_and_record(&global, &all_shards);
                                }
                            }
                            Command::Batch(points) => {
                                ingest_batch(&global, own, i, &points, &all_shards);
                            }
                            Command::Flush(reply) => {
                                // Everything routed to this shard before the
                                // flush has been drained by now.
                                let _ = reply.send(());
                            }
                            Command::Shutdown => break,
                        }
                    }
                })
                .expect("spawn engine shard worker");
            txs.push(tx);
            workers.push(handle);
        }

        Self {
            txs,
            shards,
            global,
            workers: Mutex::new(workers),
            router: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// The next shard index in round-robin order.
    fn route(&self) -> usize {
        (self.router.fetch_add(1, Ordering::Relaxed) % self.txs.len() as u64) as usize
    }

    /// Enqueues one record for clustering (blocks only on backpressure).
    ///
    /// Errors with [`UStreamError::EngineStopped`] after shutdown instead of
    /// panicking; the record is dropped in that case — use
    /// [`Self::try_push`] when the caller needs the record back.
    pub fn push(&self, point: UncertainPoint) -> Result<()> {
        let s = self.route();
        self.txs[s]
            .send(Command::Point(Box::new(point)))
            .map_err(|_| UStreamError::EngineStopped)?;
        self.shards[s]
            .counters
            .enqueued
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Non-blocking push: tries every shard once (starting at the round-robin
    /// cursor) and hands the record back if all channels are full or the
    /// engine has stopped.
    pub fn try_push(&self, point: UncertainPoint) -> std::result::Result<(), TryPushError> {
        let n = self.txs.len();
        let start = self.route();
        let mut cmd = Command::Point(Box::new(point));
        for off in 0..n {
            let s = (start + off) % n;
            match self.txs[s].try_send(cmd) {
                Ok(()) => {
                    self.shards[s]
                        .counters
                        .enqueued
                        .fetch_add(1, Ordering::Relaxed);
                    return Ok(());
                }
                Err(TrySendError::Full(c)) => cmd = c,
                Err(TrySendError::Disconnected(c)) => {
                    return Err(TryPushError::Stopped(Self::unwrap_point(c)));
                }
            }
        }
        Err(TryPushError::Full(Self::unwrap_point(cmd)))
    }

    fn unwrap_point(cmd: Command) -> UncertainPoint {
        match cmd {
            Command::Point(p) => *p,
            _ => unreachable!("only points travel through try_push"),
        }
    }

    /// Batch push: splits the slice into one contiguous chunk per shard and
    /// enqueues each chunk in a single channel hop — amortising the per-record
    /// routing and channel cost for bulk producers.
    pub fn push_slice(&self, points: &[UncertainPoint]) -> Result<()> {
        if points.is_empty() {
            return Ok(());
        }
        let n = self.txs.len();
        let chunk = points.len().div_ceil(n);
        let start = self.route();
        for (off, part) in points.chunks(chunk).enumerate() {
            let s = (start + off) % n;
            let len = part.len() as u64;
            self.txs[s]
                .send(Command::Batch(part.to_vec()))
                .map_err(|_| UStreamError::EngineStopped)?;
            self.shards[s]
                .counters
                .enqueued
                .fetch_add(len, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Blocks until every previously pushed record has been clustered on
    /// every shard.
    pub fn flush(&self) {
        let replies: Vec<_> = self
            .txs
            .iter()
            .filter_map(|tx| {
                let (reply_tx, reply_rx) = bounded(1);
                tx.send(Command::Flush(reply_tx)).ok().map(|_| reply_rx)
            })
            .collect();
        for rx in replies {
            let _ = rx.recv();
        }
    }

    /// Records processed so far (across all shards).
    pub fn points_processed(&self) -> u64 {
        self.global.processed.load(Ordering::Relaxed)
    }

    /// Number of shard workers.
    pub fn shards(&self) -> usize {
        self.txs.len()
    }

    /// Snapshot of the live micro-clusters across all shards, with
    /// shard-namespaced ids (cloned out of the engine).
    pub fn micro_clusters(&self) -> Vec<MicroCluster> {
        let mut out = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let st = shard.state.lock();
            for (id, ecf) in st.alg.micro_clusters() {
                out.push(MicroCluster {
                    id: namespaced_id(i, id),
                    ecf,
                });
            }
        }
        out
    }

    /// Macro-clusters of the merged live state.
    pub fn macro_clusters(&self, k: usize, seed: u64) -> MacroClustering {
        if self.shards.len() == 1 {
            // Single shard: delegate so decayed synchronisation and k-means
            // seeding match the unsharded engine exactly.
            return self.shards[0].state.lock().alg.macro_cluster(k, seed);
        }
        let now = self.global.last_tick.load(Ordering::Relaxed);
        let mut pairs: Vec<(u64, Ecf)> = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            let snap = shard.state.lock().alg.snapshot_at(now);
            pairs.extend(
                snap.clusters
                    .into_iter()
                    .map(|(id, ecf)| (namespaced_id(i, id), ecf)),
            );
        }
        macro_cluster_ecfs(pairs.iter().map(|(id, ecf)| (*id, ecf)), k, seed)
    }

    /// Micro-cluster statistics of the trailing window of `h` ticks,
    /// reconstructed from the merged pyramidal snapshots.
    pub fn horizon_clusters(&self, h: u64) -> Result<ClusterSetSnapshot<Ecf>> {
        let now = self.global.last_tick.load(Ordering::Relaxed);
        self.global.horizons.lock().horizon_clusters(now, h)
    }

    /// Macro-clusters of the trailing window of `h` ticks.
    pub fn horizon_macro_clusters(&self, h: u64, k: usize, seed: u64) -> Result<MacroClustering> {
        let now = self.global.last_tick.load(Ordering::Relaxed);
        self.global
            .horizons
            .lock()
            .macro_cluster_horizon(now, h, k, seed)
    }

    /// Evolution between the two most recent windows of `h` ticks each:
    /// `(now − 2h, now − h]` vs `(now − h, now]`.
    pub fn evolution(&self, h: u64, min_weight: f64) -> Result<EvolutionReport> {
        let now = self.global.last_tick.load(Ordering::Relaxed);
        let horizons = self.global.horizons.lock();
        let recent = horizons.horizon_clusters(now, h)?;
        let earlier_end = now.saturating_sub(h);
        // When the earlier window would reach past the stream origin, the
        // whole prefix up to `earlier_end` *is* that window.
        let earlier = match horizons.horizon_clusters(earlier_end, h) {
            Ok(w) => w,
            Err(_) => horizons
                .clusters_at(earlier_end)
                .cloned()
                .ok_or(UStreamError::HorizonUnavailable { requested: h })?,
        };
        Ok(compare_windows(&earlier, &recent, min_weight))
    }

    /// Drains the pending novelty alerts.
    pub fn drain_alerts(&self) -> Vec<NoveltyAlert> {
        self.global.alerts.lock().drain(..).collect()
    }

    /// Current run statistics (without stopping the engine).
    pub fn stats(&self) -> EngineReport {
        self.report()
    }

    fn report(&self) -> EngineReport {
        let elapsed = self.started.elapsed().as_secs_f64().max(1e-9);
        let mut live_clusters = 0;
        let mut created = 0;
        let mut evicted = 0;
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter().enumerate() {
            let st = shard.state.lock();
            let processed = shard.counters.processed.load(Ordering::Relaxed);
            let enqueued = shard.counters.enqueued.load(Ordering::Relaxed);
            let live = st.alg.num_clusters();
            live_clusters += live;
            created += st.created;
            evicted += st.evicted;
            per_shard.push(ShardStats {
                shard: i,
                processed,
                queue_depth: enqueued.saturating_sub(processed),
                live_clusters: live,
                alerts_raised: shard.counters.alerts.load(Ordering::Relaxed),
                points_per_sec: processed as f64 / elapsed,
            });
        }
        let merges = self.global.merges.load(Ordering::Relaxed);
        let merge_nanos = self.global.merge_nanos.load(Ordering::Relaxed);
        EngineReport {
            points_processed: self.global.processed.load(Ordering::Relaxed),
            live_clusters,
            clusters_created: created,
            clusters_evicted: evicted,
            snapshots_retained: self.global.horizons.lock().store().len(),
            alerts_raised: self.global.alerts_raised.load(Ordering::Relaxed),
            last_tick: self.global.last_tick.load(Ordering::Relaxed),
            merges,
            mean_merge_micros: if merges > 0 {
                merge_nanos as f64 / 1_000.0 / merges as f64
            } else {
                0.0
            },
            per_shard,
        }
    }

    /// Stops the workers and returns the final accounting. Subsequent calls
    /// return the report of the already-stopped engine.
    pub fn shutdown(&self) -> EngineReport {
        for tx in &self.txs {
            let _ = tx.send(Command::Shutdown);
        }
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
        self.report()
    }
}

impl Drop for StreamEngine {
    fn drop(&mut self) {
        for tx in &self.txs {
            let _ = tx.send(Command::Shutdown);
        }
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umicro::UMicroConfig;
    use ustream_common::Timestamp;

    fn pt(x: f64, y: f64, t: Timestamp) -> UncertainPoint {
        UncertainPoint::new(vec![x, y], vec![0.3, 0.3], t, None)
    }

    fn engine(n_micro: usize) -> StreamEngine {
        StreamEngine::start(EngineConfig::new(UMicroConfig::new(n_micro, 2).unwrap()))
    }

    #[test]
    fn ingests_and_counts() {
        let e = engine(8);
        for t in 1..=500u64 {
            let x = if t % 2 == 0 { 0.0 } else { 20.0 };
            e.push(pt(x, x, t)).unwrap();
        }
        e.flush();
        assert_eq!(e.points_processed(), 500);
        assert!(!e.micro_clusters().is_empty());
        let report = e.shutdown();
        assert_eq!(report.points_processed, 500);
        assert_eq!(report.last_tick, 500);
        assert!(report.snapshots_retained > 0);
    }

    #[test]
    fn macro_query_during_ingestion() {
        let e = engine(8);
        for t in 1..=200u64 {
            let x = if t % 2 == 0 { 0.0 } else { 30.0 };
            e.push(pt(x, -x, t)).unwrap();
        }
        e.flush();
        let mac = e.macro_clusters(2, 3);
        assert_eq!(mac.k(), 2);
        let mut lo = false;
        let mut hi = false;
        for c in &mac.centroids {
            if c[0] < 15.0 {
                lo = true;
            } else {
                hi = true;
            }
        }
        assert!(lo && hi, "centroids: {:?}", mac.centroids);
    }

    #[test]
    fn horizon_query_sees_recent_regime() {
        let e = engine(8);
        for t in 1..=1_024u64 {
            let x = if t <= 768 { 0.0 } else { 50.0 };
            e.push(pt(x, 0.0, t)).unwrap();
        }
        e.flush();
        let window = e.horizon_clusters(128).unwrap();
        let total = window.total_count();
        let new_mass: f64 = window
            .clusters
            .values()
            .filter(|c| ustream_common::AdditiveFeature::centroid(*c)[0] > 25.0)
            .map(ustream_common::AdditiveFeature::count)
            .sum();
        assert!(new_mass / total > 0.9, "{new_mass}/{total}");
        e.shutdown();
    }

    #[test]
    fn evolution_detects_regime_change() {
        let e = engine(12);
        for t in 1..=1_024u64 {
            let x = if t <= 512 { 0.0 } else { 60.0 };
            e.push(pt(x, 0.0, t)).unwrap();
        }
        e.flush();
        // Windows (0,512] vs (512,1024]: complete replacement.
        let report = e.evolution(512, 1.0).unwrap();
        assert!(report.emerged() > 0, "no emerged clusters: {report:?}");
        assert!(
            report.turbulence() > 0.5,
            "regime change should be turbulent: {}",
            report.turbulence()
        );
        e.shutdown();
    }

    #[test]
    fn novelty_alert_fires_on_outlier() {
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap()).with_novelty_factor(Some(4.0)),
        );
        // Stable traffic, then one wild outlier.
        for t in 1..=400u64 {
            let x = (t % 7) as f64 * 0.1;
            e.push(pt(x, -x, t)).unwrap();
        }
        e.push(pt(10_000.0, -10_000.0, 401)).unwrap();
        for t in 402..=420u64 {
            e.push(pt(0.2, -0.2, t)).unwrap();
        }
        e.flush();
        let alerts = e.drain_alerts();
        assert!(
            alerts.iter().any(|a| a.timestamp == 401),
            "outlier not flagged: {alerts:?}"
        );
        let report = e.shutdown();
        assert!(report.alerts_raised >= 1);
    }

    #[test]
    fn quantile_baseline_novelty_alerting() {
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_novelty_factor(Some(4.0))
                .with_novelty_quantile(0.95),
        );
        for t in 1..=400u64 {
            let x = (t % 7) as f64 * 0.1;
            e.push(pt(x, -x, t)).unwrap();
        }
        e.push(pt(5_000.0, -5_000.0, 401)).unwrap();
        e.flush();
        let alerts = e.drain_alerts();
        assert!(
            alerts.iter().any(|a| a.timestamp == 401),
            "quantile baseline missed the outlier: {alerts:?}"
        );
        // The quantile baseline is far sturdier than the mean against a
        // heavy tail: regular traffic raised no alerts.
        assert!(alerts.len() <= 3, "too many false alerts: {}", alerts.len());
        e.shutdown();
    }

    #[test]
    fn mean_baseline_allocates_no_quantile_sketch() {
        // The default configuration baselines on the mean; the P² sketch
        // must not exist (and therefore cannot cost anything per point).
        let config = EngineConfig::new(UMicroConfig::new(4, 2).unwrap());
        assert!(NoveltyMonitor::new(&config).quantile.is_none());
        let config = config.with_novelty_quantile(0.9);
        assert!(NoveltyMonitor::new(&config).quantile.is_some());
        // Novelty disabled → no sketch either, whatever the baseline says.
        let config = EngineConfig::new(UMicroConfig::new(4, 2).unwrap())
            .with_novelty_factor(None)
            .with_novelty_quantile(0.9);
        assert!(NoveltyMonitor::new(&config).quantile.is_none());
    }

    #[test]
    fn decayed_engine_runs() {
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_decay_half_life(200.0)
                .with_snapshot_every(8),
        );
        for t in 1..=300u64 {
            e.push(pt((t % 3) as f64, 0.0, t)).unwrap();
        }
        e.flush();
        let stats = e.stats();
        assert_eq!(stats.points_processed, 300);
        // Snapshot cadence of 8 → roughly 300/8 recordings (retention caps).
        assert!(stats.snapshots_retained > 0);
        e.shutdown();
    }

    #[test]
    fn multi_producer_ingestion() {
        let e = Arc::new(engine(16));
        let mut handles = Vec::new();
        for producer in 0..4u64 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    let t = producer * 250 + i + 1;
                    let x = (producer * 25) as f64;
                    e.push(pt(x, x, t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        e.flush();
        assert_eq!(e.points_processed(), 1_000);
        let report = e.shutdown();
        assert_eq!(report.points_processed, 1_000);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let e = engine(4);
        e.push(pt(0.0, 0.0, 1)).unwrap();
        let a = e.shutdown();
        let b = e.shutdown();
        assert_eq!(a.points_processed, b.points_processed);
    }

    #[test]
    fn push_after_shutdown_errors_instead_of_panicking() {
        let e = engine(4);
        e.shutdown();
        assert!(matches!(
            e.push(pt(0.0, 0.0, 1)),
            Err(UStreamError::EngineStopped)
        ));
        assert!(matches!(
            e.try_push(pt(0.0, 0.0, 1)),
            Err(TryPushError::Stopped(_))
        ));
        assert!(e.push_slice(&[pt(0.0, 0.0, 1)]).is_err());
    }

    #[test]
    fn sharded_engine_processes_everything() {
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(16, 2).unwrap())
                .with_shards(4)
                .with_snapshot_every(64),
        );
        assert_eq!(e.shards(), 4);
        for t in 1..=2_000u64 {
            let x = if t % 2 == 0 { 0.0 } else { 40.0 };
            e.push(pt(x, x, t)).unwrap();
        }
        e.flush();
        assert_eq!(e.points_processed(), 2_000);
        let report = e.shutdown();
        assert_eq!(report.points_processed, 2_000);
        assert_eq!(report.per_shard.len(), 4);
        // Round-robin: every shard saw an even quarter of the stream.
        for s in &report.per_shard {
            assert_eq!(s.processed, 500, "shard {} uneven: {s:?}", s.shard);
            assert_eq!(s.queue_depth, 0);
        }
        assert!(report.merges >= 2_000 / 64);
        assert!(report.mean_merge_micros > 0.0);
    }

    #[test]
    fn sharded_ids_are_namespaced_and_disjoint() {
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_shards(2)
                .with_snapshot_every(32),
        );
        for t in 1..=400u64 {
            let x = if t % 2 == 0 { 0.0 } else { 25.0 };
            e.push(pt(x, -x, t)).unwrap();
        }
        e.flush();
        let clusters = e.micro_clusters();
        let mut seen = std::collections::BTreeSet::new();
        for c in &clusters {
            assert!(seen.insert(c.id), "duplicate global id {}", c.id);
        }
        let shards_seen: std::collections::BTreeSet<usize> = clusters
            .iter()
            .map(|c| ustream_snapshot::shard_of_id(c.id))
            .collect();
        assert_eq!(shards_seen.len(), 2, "both shards hold clusters");
        e.shutdown();
    }

    #[test]
    fn sharded_merge_preserves_total_weight() {
        // Exactness of the shard merge: with a budget large enough that no
        // shard evicts, the merged live view carries every clustered point.
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(64, 2).unwrap())
                .with_shards(4)
                .with_snapshot_every(100),
        );
        for t in 1..=1_000u64 {
            e.push(pt((t % 5) as f64, (t % 3) as f64, t)).unwrap();
        }
        e.flush();
        let total: f64 = e
            .micro_clusters()
            .iter()
            .map(|c| ustream_common::AdditiveFeature::count(&c.ecf))
            .sum();
        assert!(
            (total - 1_000.0).abs() < 1e-6,
            "merged view lost weight: {total}"
        );
        e.shutdown();
    }

    #[test]
    fn push_slice_batches_across_shards() {
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
                .with_shards(2)
                .with_snapshot_every(50),
        );
        let batch: Vec<UncertainPoint> = (1..=600u64).map(|t| pt((t % 4) as f64, 0.0, t)).collect();
        e.push_slice(&batch).unwrap();
        e.flush();
        assert_eq!(e.points_processed(), 600);
        let report = e.shutdown();
        // Contiguous halves: both shards got exactly half the batch.
        assert_eq!(report.per_shard[0].processed, 300);
        assert_eq!(report.per_shard[1].processed, 300);
    }

    #[test]
    fn try_push_hands_point_back_when_full() {
        let e = StreamEngine::start(
            EngineConfig::new(UMicroConfig::new(4, 2).unwrap()).with_snapshot_every(1_000),
        );
        // The success path, then the deterministic Stopped path with the
        // record handed back intact.
        assert!(e.try_push(pt(0.0, 0.0, 1)).is_ok());
        e.flush();
        e.shutdown();
        match e.try_push(pt(7.0, 7.0, 2)) {
            Err(err) => {
                assert!(!err.is_full());
                let p = err.into_inner();
                assert_eq!(p.values(), &[7.0, 7.0]);
            }
            Ok(()) => panic!("push into a stopped engine must fail"),
        }
    }

    #[test]
    fn custom_clusterer_factory() {
        // start_with lets callers supply their own OnlineClusterer stack.
        let config = EngineConfig::new(UMicroConfig::new(6, 2).unwrap());
        let shard_cfg = {
            let mut c = config.umicro.clone();
            c.n_micro = config.shard_n_micro();
            c
        };
        let e = StreamEngine::start_with(config, move |_i| {
            Box::new(UMicro::new(shard_cfg.clone())) as DynClusterer
        });
        for t in 1..=100u64 {
            e.push(pt((t % 2) as f64 * 10.0, 0.0, t)).unwrap();
        }
        e.flush();
        assert_eq!(e.points_processed(), 100);
        e.shutdown();
    }
}
