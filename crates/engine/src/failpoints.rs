//! Fault-injection failpoints for robustness testing.
//!
//! Only compiled under the `failpoints` cargo feature — production builds
//! carry zero overhead (the hooks in the engine are `#[cfg]`-gated out).
//! Tests arm a named failpoint with a fire count; each engine pass through
//! the hook consumes one firing:
//!
//! ```
//! # #[cfg(feature = "failpoints")] {
//! use ustream_engine::failpoints;
//! failpoints::arm(failpoints::SHARD_WORKER_PANIC, 1);
//! // ... the next record a shard worker dequeues makes it panic ...
//! failpoints::reset_all();
//! # }
//! ```
//!
//! The registry is process-global, so tests that arm failpoints must not run
//! concurrently with tests that assume clean behaviour — the fault-injection
//! suite lives in its own integration-test binary for exactly that reason.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Panic inside a shard worker just before it clusters the next record.
pub const SHARD_WORKER_PANIC: &str = "shard-worker-panic";
/// Flip one byte of the checkpoint payload after checksumming, so the file
/// on disk is corrupt but structurally plausible.
pub const CHECKPOINT_CORRUPT: &str = "checkpoint-corrupt";
/// Stall a shard worker for 50 ms before it processes the next record,
/// simulating a slow consumer backing up its channel.
pub const CHANNEL_STALL: &str = "channel-stall";
/// Hang exactly one shard worker once, for as many milliseconds as the
/// armed count (consumed whole via [`take`]) — long enough for the
/// watchdog to flag the stall and attach a rescue consumer.
pub const WORKER_HANG: &str = "worker-hang";
/// Overwrite the first coordinate of the next pushed point with NaN before
/// validation, simulating a poisoned producer.
pub const INJECT_NAN: &str = "inject-nan";

fn registry() -> &'static Mutex<HashMap<String, u64>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `name` to fire `count` times.
pub fn arm(name: &str, count: u64) {
    registry().lock().insert(name.to_string(), count);
}

/// Disarms `name` (a no-op if it was never armed).
pub fn disarm(name: &str) {
    registry().lock().remove(name);
}

/// Disarms every failpoint.
pub fn reset_all() {
    registry().lock().clear();
}

/// Remaining fire count of `name` (0 when disarmed).
pub fn remaining(name: &str) -> u64 {
    registry().lock().get(name).copied().unwrap_or(0)
}

/// Consumes the *entire* remaining count of `name` at once, disarming it
/// (0 when not armed). Used by failpoints whose armed count is a magnitude
/// — e.g. [`WORKER_HANG`], where the count is a sleep in milliseconds that
/// exactly one thread should serve.
pub fn take(name: &str) -> u64 {
    registry().lock().remove(name).unwrap_or(0)
}

/// Consumes one firing of `name`. Returns `true` — and decrements the
/// count — while the failpoint is armed with a positive count.
pub fn should_fire(name: &str) -> bool {
    let mut reg = registry().lock();
    match reg.get_mut(name) {
        Some(count) if *count > 0 => {
            *count -= 1;
            if *count == 0 {
                reg.remove(name);
            }
            true
        }
        _ => false,
    }
}

/// Replaces the first coordinate with NaN when [`INJECT_NAN`] fires;
/// otherwise hands the point back unchanged.
pub fn maybe_poison(point: ustream_common::UncertainPoint) -> ustream_common::UncertainPoint {
    if !should_fire(INJECT_NAN) {
        return point;
    }
    let mut values = point.values().to_vec();
    if let Some(v) = values.first_mut() {
        *v = f64::NAN;
    }
    ustream_common::UncertainPoint::new(
        values,
        point.errors().to_vec(),
        point.timestamp(),
        point.label(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_counts_are_consumed() {
        reset_all();
        arm("test-fp", 2);
        assert_eq!(remaining("test-fp"), 2);
        assert!(should_fire("test-fp"));
        assert!(should_fire("test-fp"));
        assert!(!should_fire("test-fp"));
        assert_eq!(remaining("test-fp"), 0);
    }

    #[test]
    fn take_consumes_whole_count() {
        reset_all();
        arm("test-take", 750);
        assert_eq!(take("test-take"), 750);
        assert_eq!(take("test-take"), 0);
        assert!(!should_fire("test-take"));
    }

    #[test]
    fn disarm_and_unknown_names() {
        reset_all();
        assert!(!should_fire("never-armed"));
        arm("test-fp-2", 100);
        disarm("test-fp-2");
        assert!(!should_fire("test-fp-2"));
    }

    #[test]
    fn poison_injects_nan_only_when_armed() {
        reset_all();
        let p = ustream_common::UncertainPoint::new(vec![1.0, 2.0], vec![0.1, 0.1], 3, None);
        let clean = maybe_poison(p.clone());
        assert_eq!(clean.values(), &[1.0, 2.0]);
        arm(INJECT_NAN, 1);
        let poisoned = maybe_poison(p);
        assert!(poisoned.values()[0].is_nan());
        assert_eq!(poisoned.values()[1], 2.0);
        assert_eq!(poisoned.timestamp(), 3);
    }
}
