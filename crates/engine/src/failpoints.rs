//! Fault-injection failpoints for robustness testing.
//!
//! Only compiled under the `failpoints` cargo feature — production builds
//! carry zero overhead (the hooks in the engine are `#[cfg]`-gated out).
//! Tests arm a named failpoint with a fire count; each engine pass through
//! the hook consumes one firing:
//!
//! ```
//! # #[cfg(feature = "failpoints")] {
//! use ustream_engine::failpoints;
//! failpoints::arm(failpoints::SHARD_WORKER_PANIC, 1);
//! // ... the next record a shard worker dequeues makes it panic ...
//! failpoints::reset_all();
//! # }
//! ```
//!
//! The registry is process-global, so tests that arm failpoints must not run
//! concurrently with tests that assume clean behaviour — the fault-injection
//! suite lives in its own integration-test binary for exactly that reason.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Panic inside a shard worker just before it clusters the next record.
pub const SHARD_WORKER_PANIC: &str = "shard-worker-panic";
/// Flip one byte of the checkpoint payload after checksumming, so the file
/// on disk is corrupt but structurally plausible.
pub const CHECKPOINT_CORRUPT: &str = "checkpoint-corrupt";
/// Stall a shard worker for 50 ms before it processes the next record,
/// simulating a slow consumer backing up its channel.
pub const CHANNEL_STALL: &str = "channel-stall";
/// Hang exactly one shard worker once, for as many milliseconds as the
/// armed count (consumed whole via [`take`]) — long enough for the
/// watchdog to flag the stall and attach a rescue consumer.
pub const WORKER_HANG: &str = "worker-hang";
/// Overwrite the first coordinate of the next pushed point with NaN before
/// validation, simulating a poisoned producer.
pub const INJECT_NAN: &str = "inject-nan";
/// Silently discard the next outbound distrib frame: the transport reports
/// success without writing a byte, so the sender only learns from the
/// missing ack.
pub const NET_DROP: &str = "net-drop";
/// Write the next outbound distrib frame twice back-to-back, simulating a
/// retransmit race that delivers a duplicate epoch.
pub const NET_DUP: &str = "net-dup";
/// Hold the next outbound distrib frame and emit it *after* the following
/// frame, delivering the two epochs out of order.
pub const NET_REORDER: &str = "net-reorder";
/// Flip one payload byte of the next outbound distrib frame after the
/// checksum is computed, so the receiver sees a structurally plausible but
/// corrupt frame.
pub const NET_CORRUPT: &str = "net-corrupt";
/// Delay the next outbound distrib frame by 25 ms per firing before it is
/// written, simulating link congestion.
pub const NET_DELAY: &str = "net-delay";

/// Crash the coordinator *before* the epoch's WAL record is written (and
/// therefore before any ack): the site sees a dead connection, retries the
/// same epoch against the resumed coordinator, and nothing was committed.
pub const COORD_CRASH_PRE_WAL: &str = "coord-crash-pre-wal";
/// Crash the coordinator *after* the WAL record is durable but *before*
/// the ack is sent — the classic commit-vs-ack window. The resumed
/// coordinator must treat the site's retry of the same epoch as a
/// duplicate (re-ack, never double-apply).
pub const COORD_CRASH_POST_WAL: &str = "coord-crash-post-wal";
/// Tear the next coordinator WAL append: write roughly half the record,
/// then crash. Replay must truncate the WAL at the torn record; the epoch
/// was never acked, so the site retries it.
pub const COORD_WAL_TORN: &str = "coord-wal-torn";
/// Crash the coordinator mid-snapshot: a corrupt generation lands on disk
/// and the WAL is *not* truncated. Recovery must skip (and count) the
/// rotten generation and replay the full WAL on top of the previous one.
pub const COORD_SNAPSHOT_TORN: &str = "coord-snapshot-torn";

/// Per-site partition failpoint name: while armed, every send attempt from
/// that site fails immediately, as if the link to the coordinator were cut.
/// The armed count is the number of attempts that fail before the
/// partition heals.
#[must_use]
pub fn net_partition(site: u64) -> String {
    format!("net-partition-site-{site}")
}

fn registry() -> &'static Mutex<HashMap<String, u64>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `name` to fire `count` more times and returns the count that was
/// already pending. Re-arming is *additive*: two tests (or two layers of
/// one test) that each arm the same point stack their budgets instead of
/// the second silently erasing the first. Callers that want the old
/// replace semantics can `disarm` first; the returned previous count makes
/// that decision — and leak detection across tests — explicit.
pub fn arm(name: &str, count: u64) -> u64 {
    let mut reg = registry().lock();
    let slot = reg.entry(name.to_string()).or_insert(0);
    let previous = *slot;
    *slot = slot.saturating_add(count);
    previous
}

/// Disarms `name` (a no-op if it was never armed).
pub fn disarm(name: &str) {
    registry().lock().remove(name);
}

/// Disarms every failpoint.
pub fn reset_all() {
    registry().lock().clear();
}

/// Remaining fire count of `name` (0 when disarmed).
pub fn remaining(name: &str) -> u64 {
    registry().lock().get(name).copied().unwrap_or(0)
}

/// Consumes the *entire* remaining count of `name` at once, disarming it
/// (0 when not armed). Used by failpoints whose armed count is a magnitude
/// — e.g. [`WORKER_HANG`], where the count is a sleep in milliseconds that
/// exactly one thread should serve.
pub fn take(name: &str) -> u64 {
    registry().lock().remove(name).unwrap_or(0)
}

/// Consumes one firing of `name`. Returns `true` — and decrements the
/// count — while the failpoint is armed with a positive count.
pub fn should_fire(name: &str) -> bool {
    let mut reg = registry().lock();
    match reg.get_mut(name) {
        Some(count) if *count > 0 => {
            *count -= 1;
            if *count == 0 {
                reg.remove(name);
            }
            true
        }
        _ => false,
    }
}

/// Replaces the first coordinate with NaN when [`INJECT_NAN`] fires;
/// otherwise hands the point back unchanged.
pub fn maybe_poison(point: ustream_common::UncertainPoint) -> ustream_common::UncertainPoint {
    if !should_fire(INJECT_NAN) {
        return point;
    }
    let mut values = point.values().to_vec();
    if let Some(v) = values.first_mut() {
        *v = f64::NAN;
    }
    ustream_common::UncertainPoint::new(
        values,
        point.errors().to_vec(),
        point.timestamp(),
        point.label(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fire_counts_are_consumed() {
        reset_all();
        arm("test-fp", 2);
        assert_eq!(remaining("test-fp"), 2);
        assert!(should_fire("test-fp"));
        assert!(should_fire("test-fp"));
        assert!(!should_fire("test-fp"));
        assert_eq!(remaining("test-fp"), 0);
    }

    #[test]
    fn rearming_is_additive_and_reports_previous() {
        reset_all();
        assert_eq!(arm("test-additive", 2), 0);
        assert_eq!(arm("test-additive", 3), 2);
        assert_eq!(remaining("test-additive"), 5);
        disarm("test-additive");
        assert_eq!(arm("test-additive", 1), 0);
        reset_all();
    }

    #[test]
    fn partition_names_are_per_site() {
        assert_eq!(net_partition(0), "net-partition-site-0");
        assert_ne!(net_partition(1), net_partition(2));
    }

    #[test]
    fn take_consumes_whole_count() {
        reset_all();
        arm("test-take", 750);
        assert_eq!(take("test-take"), 750);
        assert_eq!(take("test-take"), 0);
        assert!(!should_fire("test-take"));
    }

    #[test]
    fn disarm_and_unknown_names() {
        reset_all();
        assert!(!should_fire("never-armed"));
        arm("test-fp-2", 100);
        disarm("test-fp-2");
        assert!(!should_fire("test-fp-2"));
    }

    #[test]
    fn poison_injects_nan_only_when_armed() {
        reset_all();
        let p = ustream_common::UncertainPoint::new(vec![1.0, 2.0], vec![0.1, 0.1], 3, None);
        let clean = maybe_poison(p.clone());
        assert_eq!(clean.values(), &[1.0, 2.0]);
        arm(INJECT_NAN, 1);
        let poisoned = maybe_poison(p);
        assert!(poisoned.values()[0].is_nan());
        assert_eq!(poisoned.values()[1], 2.0);
        assert_eq!(poisoned.timestamp(), 3);
    }
}
