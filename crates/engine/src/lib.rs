//! # ustream-engine
//!
//! A high-level, thread-backed analytics engine over the UMicro algorithm —
//! the "interactive and online clustering in a data stream environment" the
//! paper's §II-D motivates, packaged as a component an application can
//! embed:
//!
//! * **concurrent ingestion** — producers push `(X, ψ(X))` records through
//!   a bounded crossbeam channel; a dedicated worker thread runs the
//!   one-pass clustering so producers never block on clustering work
//!   (beyond backpressure);
//! * **pyramidal snapshots** — the worker files micro-cluster snapshots
//!   into the pyramidal time frame at a configurable cadence;
//! * **interactive queries** — at any moment, any thread can ask for the
//!   live micro-clusters, macro-clusters, an arbitrary-horizon view, or an
//!   [`umicro::EvolutionReport`] comparing two adjacent windows;
//! * **novelty alerts** — records whose error-corrected distance to every
//!   known cluster exceeds a configurable multiple of the running isolation
//!   level are surfaced as [`NoveltyAlert`]s.
//!
//! Ingestion is **sharded**: `EngineConfig::with_shards(n)` spreads the
//! stream round-robin across `n` independent workers, each clustering an
//! even share of the global micro-cluster budget behind its own lock. The
//! additive ECF (Property 2.1) makes the periodic fold of shard states into
//! the global snapshot view *exact*, so horizon and evolution queries are
//! unchanged by sharding. Every shard clusterer is a boxed
//! [`umicro::OnlineClusterer`], so the same engine can drive UMicro, the
//! decayed variant, or any custom implementation ([`EngineBuilder::build_with`]).
//!
//! The engine is built to stay up: shard workers are **supervised**
//! (a panicking worker is respawned and reseeded from the last merged
//! snapshot, surfaced via [`EngineReport::health`]), malformed records are
//! **validated** at the producer boundary ([`ValidationPolicy`] decides
//! whether they are rejected, repaired or quarantined), and the complete
//! engine state can be **checkpointed** atomically and restored bit-for-bit
//! ([`StreamEngine::checkpoint`] / [`StreamEngine::restore`]).
//!
//! ```
//! use ustream_engine::EngineBuilder;
//! use umicro::UMicroConfig;
//! use ustream_common::UncertainPoint;
//!
//! let engine = EngineBuilder::new(UMicroConfig::new(16, 2).unwrap())
//!     .shards(2)
//!     .build()
//!     .expect("engine workers spawn");
//! for t in 1..=100u64 {
//!     let x = if t % 2 == 0 { 0.0 } else { 8.0 };
//!     engine
//!         .push(UncertainPoint::new(vec![x, -x], vec![0.3, 0.3], t, None))
//!         .expect("engine accepts records until shutdown");
//! }
//! engine.flush();
//! assert_eq!(engine.points_processed(), 100);
//! let macros = engine.macro_clusters(2, 7);
//! assert_eq!(macros.k(), 2);
//! let report = engine.shutdown();
//! assert_eq!(report.points_processed, 100);
//! assert_eq!(report.per_shard.len(), 2);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod builder;
pub mod checkpoint;
mod config;
mod engine;
#[cfg(feature = "failpoints")]
pub mod failpoints;
mod load;
mod report;
mod validate;

pub use builder::EngineBuilder;
pub use checkpoint::EngineCheckpoint;
pub use config::{EngineConfig, NoveltyBaseline};
pub use engine::{DynClusterer, StreamEngine, TryPushError};
pub use load::{DrainOutcome, LoadPolicy, LoadStage, LoadTransition, WatchdogConfig};
pub use report::{EngineReport, HealthStatus, NoveltyAlert, ShardStats};
pub use umicro::{ClusterQuery, QueryStats};
pub use ustream_snapshot::SnapshotBudget;
pub use validate::{
    BackpressurePolicy, PointFault, Quarantine, QuarantinedPoint, ValidationPolicy,
};
