//! Overload governance: the degradation ladder and watchdog knobs.
//!
//! Under sustained channel pressure the engine climbs a *degradation
//! ladder* rather than blocking producers indefinitely or dying by OOM:
//!
//! 1. [`LoadStage::Normal`] — every admitted point is clustered, merges run
//!    on the configured cadence.
//! 2. [`LoadStage::WidenMerge`] — cross-shard merges and snapshots run
//!    `widen_factor`× less often, trading horizon-query granularity for
//!    ingest throughput. No data is lost.
//! 3. [`LoadStage::Sample`] — uniform probabilistic admission: each point
//!    is kept with probability `keep_per_mille / 1000`. Because shedding is
//!    uniform, the ECF statistics stay unbiased up to the known scale
//!    factor `1000 / keep_per_mille`; the engine records how many points
//!    were sampled out so callers can rescale counts if they need absolute
//!    magnitudes.
//! 4. [`LoadStage::Shed`] — admission control proper: new points are
//!    counted and dropped. The clustering model stops advancing but the
//!    engine survives to report, drain, and checkpoint.
//!
//! Pressure is the mean channel fill fraction across shards
//! (`Σ backlog / (shards × channel_capacity)`). The ladder steps up one
//! stage after `trip_polls` consecutive polls above `high_watermark` and
//! back down after `clear_polls` consecutive polls below `low_watermark` —
//! asymmetric hysteresis so a bursty producer doesn't make the engine
//! oscillate. Every transition is timestamped into the
//! [`EngineReport`](crate::EngineReport).

use serde::{Deserialize, Serialize};

/// One rung of the degradation ladder; ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub enum LoadStage {
    /// Full fidelity: everything admitted is clustered on cadence.
    #[default]
    Normal,
    /// Merges/snapshots run `widen_factor`× less often.
    WidenMerge,
    /// Uniform probabilistic admission at `keep_per_mille / 1000`.
    Sample,
    /// New points are counted and dropped.
    Shed,
}

impl LoadStage {
    /// Compact encoding for an atomic stage cell (the engine's governor and
    /// the serving front-end's per-tenant admission state both store stages
    /// this way).
    pub fn as_u8(self) -> u8 {
        match self {
            LoadStage::Normal => 0,
            LoadStage::WidenMerge => 1,
            LoadStage::Sample => 2,
            LoadStage::Shed => 3,
        }
    }

    /// Inverse of [`Self::as_u8`]; unknown values clamp to `Shed`.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => LoadStage::Normal,
            1 => LoadStage::WidenMerge,
            2 => LoadStage::Sample,
            _ => LoadStage::Shed,
        }
    }

    /// The next rung up (saturates at `Shed`).
    pub fn escalate(self) -> Self {
        match self {
            LoadStage::Normal => LoadStage::WidenMerge,
            LoadStage::WidenMerge => LoadStage::Sample,
            _ => LoadStage::Shed,
        }
    }

    /// The next rung down (saturates at `Normal`).
    pub fn relax(self) -> Self {
        match self {
            LoadStage::Shed => LoadStage::Sample,
            LoadStage::Sample => LoadStage::WidenMerge,
            _ => LoadStage::Normal,
        }
    }
}

impl std::fmt::Display for LoadStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LoadStage::Normal => "normal",
            LoadStage::WidenMerge => "widen-merge",
            LoadStage::Sample => "sample",
            LoadStage::Shed => "shed",
        };
        f.write_str(s)
    }
}

/// Configuration of the degradation ladder. Installing a policy (via
/// [`EngineConfig::with_load_policy`](crate::EngineConfig::with_load_policy))
/// starts the governor thread that polls channel pressure and walks the
/// ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPolicy {
    /// Mean channel fill fraction above which polls count towards
    /// escalation (default 0.8).
    pub high_watermark: f64,
    /// Mean channel fill fraction below which polls count towards
    /// relaxation (default 0.3).
    pub low_watermark: f64,
    /// Consecutive polls above `high_watermark` before stepping up
    /// (default 3).
    pub trip_polls: u32,
    /// Consecutive polls below `low_watermark` before stepping down
    /// (default 5 — slower down than up, by design).
    pub clear_polls: u32,
    /// Merge/snapshot cadence multiplier in [`LoadStage::WidenMerge`] and
    /// above (default 4).
    pub widen_factor: u64,
    /// Admission rate in [`LoadStage::Sample`], per mille (default 500 =
    /// keep half).
    pub keep_per_mille: u64,
}

impl Default for LoadPolicy {
    fn default() -> Self {
        Self {
            high_watermark: 0.8,
            low_watermark: 0.3,
            trip_polls: 3,
            clear_polls: 5,
            widen_factor: 4,
            keep_per_mille: 500,
        }
    }
}

impl LoadPolicy {
    /// Panics unless watermarks are ordered in (0, 1], counts positive,
    /// `widen_factor ≥ 1` and `keep_per_mille` in [1, 1000].
    pub fn validate(&self) {
        assert!(
            self.high_watermark > 0.0 && self.high_watermark <= 1.0,
            "high_watermark must be in (0, 1]"
        );
        assert!(
            self.low_watermark >= 0.0 && self.low_watermark < self.high_watermark,
            "low_watermark must be in [0, high_watermark)"
        );
        assert!(self.trip_polls > 0, "trip_polls must be positive");
        assert!(self.clear_polls > 0, "clear_polls must be positive");
        assert!(self.widen_factor >= 1, "widen_factor must be >= 1");
        assert!(
            (1..=1000).contains(&self.keep_per_mille),
            "keep_per_mille must be in [1, 1000]"
        );
    }
}

/// One timestamped walk of the degradation ladder, kept in order in
/// [`EngineReport::load_transitions`](crate::EngineReport::load_transitions).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadTransition {
    /// Milliseconds since the engine started.
    pub at_ms: u64,
    /// Stage before the transition.
    pub from: LoadStage,
    /// Stage after the transition.
    pub to: LoadStage,
    /// Mean channel fill fraction that drove the transition.
    pub pressure: f64,
}

/// Watchdog configuration: how long a shard may sit on a non-empty backlog
/// without progress before it is declared stalled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// A shard with backlog whose processed counter does not move for this
    /// long is stalled (default 500 ms).
    pub stall_deadline_ms: u64,
    /// Governor poll interval (default 20 ms).
    pub poll_ms: u64,
    /// When true (default), a stalled shard gets a *rescue consumer* — an
    /// extra worker thread attached to the same channel — so the backlog
    /// drains even while the original worker is wedged.
    pub respawn: bool,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            stall_deadline_ms: 500,
            poll_ms: 20,
            respawn: true,
        }
    }
}

impl WatchdogConfig {
    /// Panics unless the deadline and poll interval are positive.
    pub fn validate(&self) {
        assert!(self.stall_deadline_ms > 0, "stall_deadline_ms must be > 0");
        assert!(self.poll_ms > 0, "poll_ms must be > 0");
    }
}

/// Result of [`StreamEngine::shutdown_drain`](crate::StreamEngine::shutdown_drain).
#[derive(Debug, Clone)]
pub struct DrainOutcome {
    /// Whether the flush + final merge + final checkpoint all completed
    /// within the caller's deadline.
    pub deadline_met: bool,
    /// Wall-clock milliseconds the drain took.
    pub drain_millis: u64,
    /// The engine's final report after the drain.
    pub report: crate::EngineReport,
}

impl DrainOutcome {
    /// The drain as a typed result: `Ok(report)` when the deadline was
    /// met, [`UStreamError::DeadlineExceeded`](ustream_common::UStreamError::DeadlineExceeded)
    /// carrying the actual drain time otherwise. Lets callers that treat a
    /// late drain as an error (the serving front-end, CI smoke checks)
    /// propagate it with `?` instead of inspecting the `deadline_met` flag,
    /// and keeps the failure distinguishable from generic backpressure.
    pub fn into_result(self) -> Result<crate::EngineReport, ustream_common::UStreamError> {
        if self.deadline_met {
            Ok(self.report)
        } else {
            Err(ustream_common::UStreamError::DeadlineExceeded {
                waited_ms: self.drain_millis,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_orders_and_saturates() {
        assert!(LoadStage::Normal < LoadStage::WidenMerge);
        assert!(LoadStage::WidenMerge < LoadStage::Sample);
        assert!(LoadStage::Sample < LoadStage::Shed);
        assert_eq!(LoadStage::Shed.escalate(), LoadStage::Shed);
        assert_eq!(LoadStage::Normal.relax(), LoadStage::Normal);
        assert_eq!(
            LoadStage::Normal.escalate().escalate().escalate(),
            LoadStage::Shed
        );
        assert_eq!(LoadStage::Shed.relax().relax().relax(), LoadStage::Normal);
    }

    #[test]
    fn stage_u8_round_trip() {
        for stage in [
            LoadStage::Normal,
            LoadStage::WidenMerge,
            LoadStage::Sample,
            LoadStage::Shed,
        ] {
            assert_eq!(LoadStage::from_u8(stage.as_u8()), stage);
        }
        assert_eq!(LoadStage::from_u8(250), LoadStage::Shed);
    }

    #[test]
    fn policy_serde_round_trip() {
        let p = LoadPolicy {
            keep_per_mille: 250,
            ..LoadPolicy::default()
        };
        p.validate();
        let back = LoadPolicy::from_value(&p.to_value()).unwrap();
        assert_eq!(back, p);
        let w = WatchdogConfig::default();
        w.validate();
        let back = WatchdogConfig::from_value(&w.to_value()).unwrap();
        assert_eq!(back, w);
        let stage = LoadStage::Sample;
        assert_eq!(LoadStage::from_value(&stage.to_value()).unwrap(), stage);
    }

    #[test]
    #[should_panic(expected = "keep_per_mille")]
    fn zero_keep_rate_rejected() {
        LoadPolicy {
            keep_per_mille: 0,
            ..LoadPolicy::default()
        }
        .validate();
    }
}
