//! Engine configuration.

use crate::load::{LoadPolicy, WatchdogConfig};
use crate::validate::{BackpressurePolicy, ValidationPolicy};
use serde::{Deserialize, Serialize};
use umicro::UMicroConfig;
use ustream_snapshot::{PyramidConfig, SnapshotBudget};

/// How the novelty detector baselines "ordinary" isolation levels.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NoveltyBaseline {
    /// Running mean of non-alerting isolations (cheap; sensitive to skew).
    Mean,
    /// A streaming quantile (P² sketch) of non-alerting isolations —
    /// robust to heavy-tailed isolation distributions; `q` is typically
    /// 0.95–0.99.
    Quantile(f64),
}

/// Configuration of a [`crate::StreamEngine`].
///
/// `Deserialize` is hand-written (not derived) so configs serialized before
/// the resilience fields existed — e.g. inside old checkpoints — still
/// parse, with `checkpoint_generations = 1` and no governor.
#[derive(Debug, Clone, Serialize)]
pub struct EngineConfig {
    /// The clustering configuration (budget, dimensionality, similarity,
    /// boundary mode).
    pub umicro: UMicroConfig,
    /// Pyramidal time-frame geometry for the snapshot store.
    pub pyramid: PyramidConfig,
    /// Ticks between snapshots (1 = every tick; larger values trade horizon
    /// resolution for memory/CPU).
    pub snapshot_every: u64,
    /// Optional exponential decay half-life in ticks (§II-E); `None`
    /// disables decay.
    pub decay_half_life: Option<f64>,
    /// Novelty alerting: a record is flagged when its error-corrected
    /// distance to the nearest micro-cluster exceeds `novelty_factor ×` the
    /// baseline isolation. `None` disables the (O(k·d)-per-point) monitor.
    pub novelty_factor: Option<f64>,
    /// Baseline statistic the factor multiplies.
    pub novelty_baseline: NoveltyBaseline,
    /// Capacity of each shard's ingestion channel (backpressure bound).
    pub channel_capacity: usize,
    /// Maximum retained (undrained) novelty alerts.
    pub max_alerts: usize,
    /// Number of shard workers. The micro-cluster budget `umicro.n_micro`
    /// is a *global* budget divided evenly across shards (ceiling division,
    /// at least 1 per shard); records are routed round-robin and each shard
    /// clusters its slice independently, with periodic exact ECF merges
    /// producing the global view. `1` (the default) reproduces the
    /// single-worker engine byte-for-byte.
    pub shards: usize,
    /// What to do with points that fail validation (NaN coordinates,
    /// invalid error vectors, dimension mismatches). `None` disables
    /// producer-side validation entirely — only safe when the producer
    /// guarantees well-formed input (e.g. the synthetic benchmarks).
    pub validation: Option<ValidationPolicy>,
    /// When validating, also require timestamps to be non-decreasing with
    /// respect to the engine clock (`last_tick`). Off by default: many real
    /// streams are mildly out of order and the pyramid tolerates it.
    pub monotone_timestamps: bool,
    /// Capacity of the quarantine buffer under
    /// [`ValidationPolicy::Quarantine`].
    pub quarantine_capacity: usize,
    /// What producers experience when every shard channel is full.
    pub backpressure: BackpressurePolicy,
    /// Automatic checkpoint cadence: every `n` ingested points the engine
    /// writes its full state to [`checkpoint_path`](Self::checkpoint_path).
    /// `None` (default) disables auto-checkpointing.
    pub checkpoint_every: Option<u64>,
    /// Destination for automatic checkpoints; required when
    /// [`checkpoint_every`](Self::checkpoint_every) is set.
    pub checkpoint_path: Option<String>,
    /// Number of rotated checkpoint generations. `1` (default) keeps the
    /// historical single-file behaviour; `n > 1` rotates
    /// `<path>.0 … <path>.{n-1}` plus a manifest, and restore falls back
    /// generation by generation past corrupt files.
    pub checkpoint_generations: u64,
    /// Degradation ladder driven by channel pressure; `None` (default)
    /// never degrades. Setting a policy starts the governor thread.
    pub load_policy: Option<LoadPolicy>,
    /// Stall watchdog over the shard workers; `None` (default) disables it.
    /// Setting a config starts the governor thread.
    pub watchdog: Option<WatchdogConfig>,
    /// Memory budget for the pyramidal snapshot store; `None` (default)
    /// retains the full `α^l + 1` per order.
    pub snapshot_budget: Option<SnapshotBudget>,
}

impl Deserialize for EngineConfig {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let fields = value
            .as_obj()
            .ok_or_else(|| serde::Error::msg("expected object for `EngineConfig`"))?;
        let get = |name: &str| serde::field(fields, name, "EngineConfig");
        // Fields added after the first released config format default when
        // absent, so old checkpoints keep restoring.
        let opt = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        Ok(Self {
            umicro: Deserialize::from_value(get("umicro")?)?,
            pyramid: Deserialize::from_value(get("pyramid")?)?,
            snapshot_every: Deserialize::from_value(get("snapshot_every")?)?,
            decay_half_life: Deserialize::from_value(get("decay_half_life")?)?,
            novelty_factor: Deserialize::from_value(get("novelty_factor")?)?,
            novelty_baseline: Deserialize::from_value(get("novelty_baseline")?)?,
            channel_capacity: Deserialize::from_value(get("channel_capacity")?)?,
            max_alerts: Deserialize::from_value(get("max_alerts")?)?,
            shards: Deserialize::from_value(get("shards")?)?,
            validation: Deserialize::from_value(get("validation")?)?,
            monotone_timestamps: Deserialize::from_value(get("monotone_timestamps")?)?,
            quarantine_capacity: Deserialize::from_value(get("quarantine_capacity")?)?,
            backpressure: Deserialize::from_value(get("backpressure")?)?,
            checkpoint_every: Deserialize::from_value(get("checkpoint_every")?)?,
            checkpoint_path: Deserialize::from_value(get("checkpoint_path")?)?,
            checkpoint_generations: match opt("checkpoint_generations") {
                Some(v) => Deserialize::from_value(v)?,
                None => 1,
            },
            load_policy: match opt("load_policy") {
                Some(v) => Deserialize::from_value(v)?,
                None => None,
            },
            watchdog: match opt("watchdog") {
                Some(v) => Deserialize::from_value(v)?,
                None => None,
            },
            snapshot_budget: match opt("snapshot_budget") {
                Some(v) => Deserialize::from_value(v)?,
                None => None,
            },
        })
    }
}

impl EngineConfig {
    /// Defaults: snapshot every tick, no decay, novelty at 8× the running
    /// isolation level, 4 096-record channel.
    pub fn new(umicro: UMicroConfig) -> Self {
        Self {
            umicro,
            pyramid: PyramidConfig::default(),
            snapshot_every: 1,
            decay_half_life: None,
            novelty_factor: Some(8.0),
            novelty_baseline: NoveltyBaseline::Mean,
            channel_capacity: 4_096,
            max_alerts: 1_024,
            shards: 1,
            validation: Some(ValidationPolicy::Reject),
            monotone_timestamps: false,
            quarantine_capacity: 256,
            backpressure: BackpressurePolicy::Block,
            checkpoint_every: None,
            checkpoint_path: None,
            checkpoint_generations: 1,
            load_policy: None,
            watchdog: None,
            snapshot_budget: None,
        }
    }

    /// Overrides (or disables, with `None`) producer-side validation.
    pub fn with_validation(mut self, policy: Option<ValidationPolicy>) -> Self {
        self.validation = policy;
        self
    }

    /// Requires non-decreasing timestamps (validated against the engine
    /// clock).
    pub fn with_monotone_timestamps(mut self, enforce: bool) -> Self {
        self.monotone_timestamps = enforce;
        self
    }

    /// Overrides the quarantine buffer capacity.
    pub fn with_quarantine_capacity(mut self, capacity: usize) -> Self {
        self.quarantine_capacity = capacity;
        self
    }

    /// Overrides the backpressure policy.
    pub fn with_backpressure(mut self, policy: BackpressurePolicy) -> Self {
        self.backpressure = policy;
        self
    }

    /// Enables automatic checkpoints every `every` points, written to
    /// `path`.
    pub fn with_auto_checkpoint(mut self, every: u64, path: impl Into<String>) -> Self {
        assert!(every > 0, "checkpoint cadence must be positive");
        self.checkpoint_every = Some(every);
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Rotates automatic checkpoints through `generations` files instead
    /// of overwriting one; see [`crate::checkpoint::write_rotated`].
    pub fn with_checkpoint_generations(mut self, generations: u64) -> Self {
        assert!(generations >= 1, "need at least one checkpoint generation");
        assert!(generations <= 64, "checkpoint generations capped at 64");
        self.checkpoint_generations = generations;
        self
    }

    /// Installs the degradation ladder (validated immediately).
    pub fn with_load_policy(mut self, policy: LoadPolicy) -> Self {
        policy.validate();
        self.load_policy = Some(policy);
        self
    }

    /// Installs the stall watchdog (validated immediately).
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        watchdog.validate();
        self.watchdog = Some(watchdog);
        self
    }

    /// Caps the snapshot store's memory; see [`SnapshotBudget`].
    pub fn with_snapshot_budget(mut self, budget: SnapshotBudget) -> Self {
        self.snapshot_budget = Some(budget);
        self
    }

    /// Overrides the shard-worker count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "engine needs at least one shard");
        assert!(shards <= 1 << 16, "shard count exceeds the id namespace");
        self.shards = shards;
        self
    }

    /// The per-shard micro-cluster budget: the global budget split evenly
    /// (ceiling division, at least 1).
    pub fn shard_n_micro(&self) -> usize {
        self.umicro.n_micro.div_ceil(self.shards).max(1)
    }

    /// Overrides the snapshot cadence.
    pub fn with_snapshot_every(mut self, ticks: u64) -> Self {
        assert!(ticks > 0, "snapshot cadence must be positive");
        self.snapshot_every = ticks;
        self
    }

    /// Enables exponential decay.
    pub fn with_decay_half_life(mut self, half_life: f64) -> Self {
        assert!(half_life > 0.0, "half-life must be positive");
        self.decay_half_life = Some(half_life);
        self
    }

    /// Overrides (or disables, with `None`) novelty alerting.
    pub fn with_novelty_factor(mut self, factor: Option<f64>) -> Self {
        if let Some(f) = factor {
            assert!(f > 1.0, "novelty factor must exceed 1");
        }
        self.novelty_factor = factor;
        self
    }

    /// Overrides the pyramid geometry.
    pub fn with_pyramid(mut self, pyramid: PyramidConfig) -> Self {
        self.pyramid = pyramid;
        self
    }

    /// Switches the novelty baseline to a streaming quantile.
    pub fn with_novelty_quantile(mut self, q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1)");
        self.novelty_baseline = NoveltyBaseline::Quantile(q);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> EngineConfig {
        EngineConfig::new(UMicroConfig::new(8, 2).unwrap())
    }

    #[test]
    fn builder_overrides() {
        let c = base()
            .with_snapshot_every(16)
            .with_decay_half_life(500.0)
            .with_novelty_factor(Some(5.0));
        assert_eq!(c.snapshot_every, 16);
        assert_eq!(c.decay_half_life, Some(500.0));
        assert_eq!(c.novelty_factor, Some(5.0));
    }

    #[test]
    fn novelty_can_be_disabled() {
        let c = base().with_novelty_factor(None);
        assert_eq!(c.novelty_factor, None);
    }

    #[test]
    fn quantile_baseline_override() {
        let c = base().with_novelty_quantile(0.99);
        assert_eq!(c.novelty_baseline, NoveltyBaseline::Quantile(0.99));
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn bad_quantile_rejected() {
        let _ = base().with_novelty_quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "cadence must be positive")]
    fn zero_cadence_rejected() {
        let _ = base().with_snapshot_every(0);
    }

    #[test]
    #[should_panic(expected = "must exceed 1")]
    fn tiny_novelty_factor_rejected() {
        let _ = base().with_novelty_factor(Some(0.5));
    }

    #[test]
    fn shard_budget_splits_evenly_with_floor_of_one() {
        assert_eq!(base().shards, 1);
        assert_eq!(base().shard_n_micro(), 8);
        let c = base().with_shards(4);
        assert_eq!(c.shard_n_micro(), 2);
        let c = base().with_shards(3);
        assert_eq!(c.shard_n_micro(), 3); // ceil(8/3)
        let c = base().with_shards(64);
        assert_eq!(c.shard_n_micro(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = base().with_shards(0);
    }

    #[test]
    fn validation_defaults_to_reject() {
        let c = base();
        assert_eq!(c.validation, Some(ValidationPolicy::Reject));
        assert_eq!(c.backpressure, BackpressurePolicy::Block);
        assert!(!c.monotone_timestamps);
        assert_eq!(c.checkpoint_every, None);
    }

    #[test]
    fn robustness_builders() {
        let c = base()
            .with_validation(Some(ValidationPolicy::Quarantine))
            .with_quarantine_capacity(32)
            .with_monotone_timestamps(true)
            .with_backpressure(BackpressurePolicy::DropNewest)
            .with_auto_checkpoint(1_000, "/tmp/engine.ckpt");
        assert_eq!(c.validation, Some(ValidationPolicy::Quarantine));
        assert_eq!(c.quarantine_capacity, 32);
        assert!(c.monotone_timestamps);
        assert_eq!(c.backpressure, BackpressurePolicy::DropNewest);
        assert_eq!(c.checkpoint_every, Some(1_000));
        assert_eq!(c.checkpoint_path.as_deref(), Some("/tmp/engine.ckpt"));
    }

    #[test]
    fn resilience_builders() {
        let c = base()
            .with_checkpoint_generations(3)
            .with_load_policy(LoadPolicy::default())
            .with_watchdog(WatchdogConfig::default())
            .with_snapshot_budget(SnapshotBudget::by_snapshots(64));
        assert_eq!(c.checkpoint_generations, 3);
        assert!(c.load_policy.is_some());
        assert!(c.watchdog.is_some());
        assert_eq!(c.snapshot_budget.unwrap().max_snapshots, Some(64));
    }

    #[test]
    #[should_panic(expected = "at least one checkpoint generation")]
    fn zero_generations_rejected() {
        let _ = base().with_checkpoint_generations(0);
    }

    #[test]
    fn old_configs_without_resilience_fields_still_parse() {
        // A config serialized before the resilience fields existed must
        // deserialize with the defaults (generations=1, no governor).
        let serde::Value::Obj(mut fields) = base().to_value() else {
            panic!("config must serialize to an object");
        };
        fields.retain(|(k, _)| {
            !matches!(
                k.as_str(),
                "checkpoint_generations" | "load_policy" | "watchdog" | "snapshot_budget"
            )
        });
        let back = EngineConfig::from_value(&serde::Value::Obj(fields)).unwrap();
        assert_eq!(back.checkpoint_generations, 1);
        assert!(back.load_policy.is_none());
        assert!(back.watchdog.is_none());
        assert!(back.snapshot_budget.is_none());
    }

    #[test]
    fn config_serde_round_trip() {
        use serde::{Deserialize, Serialize};
        let c = base()
            .with_shards(4)
            .with_decay_half_life(250.0)
            .with_novelty_quantile(0.95)
            .with_validation(Some(ValidationPolicy::Clamp))
            .with_auto_checkpoint(500, "ckpt.bin");
        let v = c.to_value();
        let back = EngineConfig::from_value(&v).unwrap();
        assert_eq!(back.shards, 4);
        assert_eq!(back.decay_half_life, Some(250.0));
        assert_eq!(back.novelty_baseline, NoveltyBaseline::Quantile(0.95));
        assert_eq!(back.validation, Some(ValidationPolicy::Clamp));
        assert_eq!(back.checkpoint_every, Some(500));
        assert_eq!(back.checkpoint_path.as_deref(), Some("ckpt.bin"));
        assert_eq!(back.umicro.n_micro, c.umicro.n_micro);
        assert_eq!(back.snapshot_every, c.snapshot_every);
    }
}
