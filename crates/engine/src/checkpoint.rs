//! Durable engine checkpoints: full state to a single file, atomically.
//!
//! A checkpoint captures everything a [`crate::StreamEngine`] needs to
//! resume as if never interrupted: the complete per-shard clusterer states
//! (via [`ClustererState`], which includes the id allocators and
//! variance-refresh phase, not just the summaries), the retained pyramidal
//! snapshots, the configuration, and the global counters. Restoring from a
//! checkpoint therefore reproduces horizon queries *exactly* — the
//! round-trip property `tests/checkpoint_roundtrip.rs` verifies bit for
//! bit.
//!
//! ## File format
//!
//! One ASCII header line, then a JSON payload:
//!
//! ```text
//! USTREAMCKPT <version> <payload-bytes> <fnv1a64-hex>\n
//! {...}
//! ```
//!
//! The checksum is FNV-1a (64-bit) over the payload, so any torn or
//! bit-flipped write is detected at load time and reported as
//! [`UStreamError::Checkpoint`] — never undefined behaviour, never a
//! half-restored engine. Writes go to `<path>.tmp` first, are fsynced,
//! and then renamed into place (with the parent directory synced after),
//! so a crash mid-write leaves the previous checkpoint intact and a
//! completed write survives power loss.

use crate::config::EngineConfig;
use serde::{Deserialize, Serialize};
use std::fs;
use umicro::{ClustererState, Ecf};
use ustream_common::{Result, Timestamp, UStreamError};
use ustream_snapshot::ClusterSetSnapshot;

/// Magic token opening every checkpoint file.
pub const MAGIC: &str = "USTREAMCKPT";
/// Format version written by this build.
pub const VERSION: u32 = 1;

/// One shard's complete saved state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardCheckpoint {
    /// The clusterer's full mutable state.
    pub state: ClustererState<Ecf>,
    /// Micro-clusters created on this shard so far.
    pub created: u64,
    /// Micro-clusters evicted on this shard so far.
    pub evicted: u64,
    /// Records clustered on this shard so far.
    pub processed: u64,
    /// Novelty alerts raised on this shard so far.
    pub alerts: u64,
}

/// One retained pyramidal snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Capture tick.
    pub time: Timestamp,
    /// The merged, namespaced cluster set at that tick.
    pub clusters: ClusterSetSnapshot<Ecf>,
}

/// The complete persisted engine state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCheckpoint {
    /// Engine configuration at checkpoint time; a restore reuses it.
    pub config: EngineConfig,
    /// Per-shard states, indexed by shard.
    pub shards: Vec<ShardCheckpoint>,
    /// Retained pyramidal snapshots, chronological.
    pub snapshots: Vec<SnapshotEntry>,
    /// Global records-processed ordinal.
    pub points_processed: u64,
    /// Engine clock (latest stream tick observed).
    pub last_tick: Timestamp,
    /// Total novelty alerts raised.
    pub alerts_raised: u64,
    /// Exact merges performed.
    pub merges: u64,
    /// Round-robin router cursor, so routing resumes in phase.
    pub router: u64,
}

/// FNV-1a, 64-bit — tiny, dependency-free, and plenty to catch torn writes
/// and bit flips (this is corruption *detection*, not an adversarial MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Frames `payload` under the generic checksummed header:
/// `<magic> <version> <payload-bytes> <fnv1a64-hex>\n<payload>`.
///
/// This is the byte-level codec every durable artifact in the workspace
/// shares — engine checkpoints here, coordinator snapshots and WAL records
/// in the distributed tier — so torn-write detection has exactly one
/// implementation to audit.
pub fn encode_payload(magic: &str, version: u32, payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "{magic} {version} {} {:016x}\n",
        payload.len(),
        fnv1a64(payload)
    );
    let mut out = header.into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Verifies the generic header of [`encode_payload`] and returns the
/// payload slice. The whole byte slice must be exactly one record; use
/// [`decode_framed`] for concatenated-record streams (the WAL).
///
/// Every failure mode — wrong magic, unsupported version, truncated file,
/// checksum mismatch — comes back as [`UStreamError::Checkpoint`] with a
/// message saying which check failed.
pub fn decode_payload<'a>(magic: &str, version: u32, bytes: &'a [u8]) -> Result<&'a [u8]> {
    let (payload, consumed) = decode_framed(magic, version, bytes)?;
    if consumed != bytes.len() {
        return Err(UStreamError::Checkpoint(format!(
            "{} trailing bytes after the payload",
            bytes.len() - consumed
        )));
    }
    Ok(payload)
}

/// Verifies one [`encode_payload`] record at the *head* of `bytes` and
/// returns `(payload, record_length)`, ignoring whatever follows — later
/// records of an append-only log. The coordinator WAL replays through
/// this, so torn-record detection shares the checkpoint codec's checksum
/// logic instead of re-implementing it.
pub fn decode_framed<'a>(magic: &str, version: u32, bytes: &'a [u8]) -> Result<(&'a [u8], usize)> {
    let newline = bytes
        .iter()
        .take(MAX_HEADER_BYTES)
        .position(|b| *b == b'\n')
        .ok_or_else(|| UStreamError::Checkpoint("missing header line".into()))?;
    let header = std::str::from_utf8(&bytes[..newline])
        .map_err(|_| UStreamError::Checkpoint("header is not UTF-8".into()))?;
    let mut fields = header.split_ascii_whitespace();
    let got_magic = fields.next().unwrap_or_default();
    if got_magic != magic {
        return Err(UStreamError::Checkpoint(format!(
            "bad magic {got_magic:?} (expected a {magic} file)"
        )));
    }
    let got_version: u32 = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| UStreamError::Checkpoint("unparseable version".into()))?;
    if got_version != version {
        return Err(UStreamError::Checkpoint(format!(
            "unsupported {magic} version {got_version} (this build reads {version})"
        )));
    }
    let declared_len: usize = fields
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| UStreamError::Checkpoint("unparseable payload length".into()))?;
    let declared_sum = fields
        .next()
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| UStreamError::Checkpoint("unparseable checksum".into()))?;

    let rest = &bytes[newline + 1..];
    if rest.len() < declared_len {
        return Err(UStreamError::Checkpoint(format!(
            "payload is {} bytes, header declares {declared_len} (truncated write?)",
            rest.len()
        )));
    }
    let payload = &rest[..declared_len];
    let actual_sum = fnv1a64(payload);
    if actual_sum != declared_sum {
        return Err(UStreamError::Checkpoint(format!(
            "checksum mismatch: computed {actual_sum:016x}, header declares {declared_sum:016x} \
             (file corrupt)"
        )));
    }
    Ok((payload, newline + 1 + declared_len))
}

/// Upper bound on a record header's byte length; a header line longer
/// than this (or binary junk with no newline) is corruption, not a
/// record. Keeps [`decode_framed`] from scanning megabytes of garbage
/// for a `\n` that is not there.
const MAX_HEADER_BYTES: usize = 128;

/// Serialises a checkpoint to its on-disk byte form (header + payload).
pub fn encode(ckpt: &EngineCheckpoint) -> Result<Vec<u8>> {
    let payload =
        serde_json::to_string(ckpt).map_err(|e| UStreamError::Checkpoint(e.to_string()))?;
    Ok(encode_payload(MAGIC, VERSION, payload.as_bytes()))
}

/// Parses and verifies the on-disk byte form.
///
/// Every failure mode — wrong magic, unsupported version, truncated file,
/// checksum mismatch, malformed JSON — comes back as
/// [`UStreamError::Checkpoint`] with a message saying which check failed.
pub fn decode(bytes: &[u8]) -> Result<EngineCheckpoint> {
    let payload = decode_payload(MAGIC, VERSION, bytes)?;
    let text = std::str::from_utf8(payload)
        .map_err(|_| UStreamError::Checkpoint("payload is not UTF-8".into()))?;
    let ckpt: EngineCheckpoint = serde_json::from_str(text)
        .map_err(|e| UStreamError::Checkpoint(format!("payload parse: {e}")))?;
    if let Err(msg) = ckpt.validate() {
        return Err(UStreamError::Checkpoint(msg));
    }
    Ok(ckpt)
}

impl EngineCheckpoint {
    /// Structural sanity checks beyond what the parser enforces.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.shards.is_empty() {
            return Err("checkpoint holds no shards".into());
        }
        if self.shards.len() != self.config.shards {
            return Err(format!(
                "checkpoint holds {} shard states but its config declares {}",
                self.shards.len(),
                self.config.shards
            ));
        }
        for (i, shard) in self.shards.iter().enumerate() {
            shard
                .state
                .validate()
                .map_err(|e| format!("shard {i} state: {e}"))?;
        }
        // lint:allow(hot-panic): windows(2) yields exactly-2-element slices
        if self.snapshots.windows(2).any(|w| w[0].time > w[1].time) {
            return Err("snapshots are not chronological".into());
        }
        Ok(())
    }
}

/// Writes `bytes` to `path` atomically *and durably*: the full stream
/// goes to `<path>.tmp`, which is fsynced and then renamed over `path`,
/// followed by an fsync of the parent directory. A crash mid-write leaves
/// the previous file intact; once this returns, the new file survives
/// power loss. The durability matters to callers that delete their redo
/// state when this returns — the coordinator truncates its epoch WAL
/// right after snapshotting through here, so a snapshot that only lives
/// in the page cache would silently break the "every acked epoch
/// survives" invariant.
pub fn write_atomic_bytes(path: &str, bytes: &[u8]) -> Result<()> {
    let tmp = format!("{path}.tmp");
    let mut file = fs::File::create(&tmp)?;
    std::io::Write::write_all(&mut file, bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, path)?;
    // The rename itself lives in the directory entry: without syncing the
    // directory, power loss can roll the whole rename back.
    #[cfg(unix)]
    {
        let parent = std::path::Path::new(path)
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
            .unwrap_or_else(|| std::path::Path::new("."));
        fs::File::open(parent)?.sync_all()?;
    }
    Ok(())
}

/// Writes the checkpoint to `path` atomically: the full byte stream goes to
/// `<path>.tmp`, which is then renamed over `path`.
pub fn write_atomic(path: &str, ckpt: &EngineCheckpoint) -> Result<()> {
    #[allow(unused_mut)]
    let mut bytes = encode(ckpt)?;
    #[cfg(feature = "failpoints")]
    if crate::failpoints::should_fire(crate::failpoints::CHECKPOINT_CORRUPT) {
        if let Some(last) = bytes.last_mut() {
            *last ^= 0xFF;
        }
    }
    write_atomic_bytes(path, &bytes)
}

/// Reads and verifies a checkpoint from `path`.
pub fn read(path: &str) -> Result<EngineCheckpoint> {
    let bytes = fs::read(path)?;
    decode(&bytes)
}

// ---- checkpoint generations -------------------------------------------
//
// With `EngineConfig::with_checkpoint_generations(n)`, auto-checkpoints
// rotate through `n` files `<base>.0 … <base>.{n-1}` plus a manifest
// `<base>.manifest` listing `slot seq` pairs newest-first. A single corrupt
// write (or a corrupt byte on disk) then costs one generation, not the
// whole recovery story: [`read_latest`] walks the manifest newest-first and
// returns the first generation that still decodes, falling back to a slot
// scan when the manifest itself is missing or unreadable.

/// Slots scanned by [`read_latest`] when no manifest is usable.
const MAX_SCAN_SLOTS: u64 = 64;

/// On-disk path of rotation slot `slot` under `base`.
pub fn generation_path(base: &str, slot: u64) -> String {
    format!("{base}.{slot}")
}

/// On-disk path of the rotation manifest under `base`.
pub fn manifest_path(base: &str) -> String {
    format!("{base}.manifest")
}

/// `(slot, seq)` entries newest-first, or `None` when the manifest is
/// missing or malformed (callers then fall back to scanning the slots).
fn read_manifest(base: &str) -> Option<Vec<(u64, u64)>> {
    let text = fs::read_to_string(manifest_path(base)).ok()?;
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_ascii_whitespace();
        let slot: u64 = fields.next()?.parse().ok()?;
        let seq: u64 = fields.next()?.parse().ok()?;
        entries.push((slot, seq));
    }
    (!entries.is_empty()).then_some(entries)
}

fn write_manifest(base: &str, entries: &[(u64, u64)]) -> Result<()> {
    let mut text = String::new();
    for (slot, seq) in entries {
        text.push_str(&format!("{slot} {seq}\n"));
    }
    write_atomic_bytes(&manifest_path(base), text.as_bytes())
}

/// Writes checkpoint number `seq` into its rotation slot
/// (`seq % generations`) and promotes it to the head of the manifest.
///
/// The generation file is written atomically first, the manifest second —
/// a crash between the two leaves a valid file that the slot-scan fallback
/// of [`read_latest`] still finds.
pub fn write_rotated(
    base: &str,
    generations: u64,
    seq: u64,
    ckpt: &EngineCheckpoint,
) -> Result<()> {
    let generations = generations.max(1);
    let slot = seq % generations;
    write_atomic(&generation_path(base, slot), ckpt)?;
    promote_manifest(base, generations, slot, seq)
}

/// The generic-payload counterpart of [`write_rotated`]: any byte stream
/// (already framed by its own [`encode_payload`] header) rotates through
/// the same slot + manifest machinery. The distributed tier's coordinator
/// snapshots persist through this.
pub fn write_rotated_bytes(base: &str, generations: u64, seq: u64, bytes: &[u8]) -> Result<()> {
    let generations = generations.max(1);
    let slot = seq % generations;
    write_atomic_bytes(&generation_path(base, slot), bytes)?;
    promote_manifest(base, generations, slot, seq)
}

fn promote_manifest(base: &str, generations: u64, slot: u64, seq: u64) -> Result<()> {
    let mut entries = read_manifest(base).unwrap_or_default();
    entries.retain(|(s, _)| *s != slot);
    entries.insert(0, (slot, seq));
    entries.truncate(generations as usize);
    write_manifest(base, &entries)
}

/// The newest rotation ordinal the manifest records, when it is readable.
/// A restarted writer continues its rotation from here instead of
/// clobbering the newest surviving generation with its first write.
pub fn latest_manifest_seq(base: &str) -> Option<u64> {
    read_manifest(base).and_then(|entries| entries.iter().map(|(_, seq)| *seq).max())
}

/// What a [`read_latest`]-style recovery scan had to step over — surfaced
/// to callers so a silently rotting generation set is visible in stats
/// instead of being hidden by the fallback succeeding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GenerationRecovery {
    /// Candidate generation files that existed but failed to read or
    /// decode (torn writes, bit rot, version skew). Zero on a clean load.
    pub corrupt_skipped: u64,
    /// Whether a readable manifest drove the scan (false = slot scan).
    pub via_manifest: bool,
    /// Whether the bare `base` path itself was among the candidates
    /// examined (the slot-scan fallback checks it; a manifest hit that
    /// returns early does not).
    pub scanned_bare: bool,
    /// The error of the last corrupt candidate, for diagnostics.
    pub last_error: Option<String>,
}

/// Loads the newest generation under `base` that `decode` accepts,
/// counting every candidate that had to be skipped.
///
/// Walks the manifest newest-first and returns the first generation that
/// decodes; when the manifest is missing or unusable (or lists only
/// corrupt generations), scans `<base>.0 … <base>.{63}` and the bare
/// `base` path and returns the decodable candidate with the highest
/// `ordinal`. Returns `None` with the recovery metadata when nothing
/// decodes — the caller decides whether that is an error.
pub fn read_latest_with<T>(
    base: &str,
    decode: &dyn Fn(&[u8]) -> Result<T>,
    ordinal: &dyn Fn(&T) -> u64,
) -> (Option<T>, GenerationRecovery) {
    fn try_path<T>(
        path: &str,
        decode: &dyn Fn(&[u8]) -> Result<T>,
        rec: &mut GenerationRecovery,
        failed: &mut std::collections::BTreeSet<String>,
    ) -> Option<T> {
        if !std::path::Path::new(path).exists() {
            return None;
        }
        let res = fs::read(path)
            .map_err(UStreamError::Io)
            .and_then(|b| decode(&b));
        match res {
            Ok(v) => Some(v),
            Err(e) => {
                rec.last_error = Some(format!("{path}: {e}"));
                failed.insert(path.to_string());
                None
            }
        }
    }

    let mut rec = GenerationRecovery::default();
    // Distinct corrupt paths: the slot-scan fallback revisits the files the
    // manifest walk already rejected, and one rotten file is one defect.
    let mut failed = std::collections::BTreeSet::new();
    if let Some(entries) = read_manifest(base) {
        rec.via_manifest = true;
        for (slot, _seq) in &entries {
            if let Some(v) = try_path(&generation_path(base, *slot), decode, &mut rec, &mut failed)
            {
                rec.corrupt_skipped = failed.len() as u64;
                return (Some(v), rec);
            }
        }
    }
    let mut best: Option<T> = None;
    let mut candidates: Vec<String> = (0..MAX_SCAN_SLOTS)
        .map(|s| generation_path(base, s))
        .collect();
    candidates.push(base.to_string());
    rec.scanned_bare = true;
    for path in candidates {
        if let Some(v) = try_path(&path, decode, &mut rec, &mut failed) {
            if best.as_ref().is_none_or(|b| ordinal(&v) > ordinal(b)) {
                best = Some(v);
            }
        }
    }
    rec.corrupt_skipped = failed.len() as u64;
    (best, rec)
}

/// [`read_latest`] plus the recovery metadata: how many corrupt
/// generations the scan skipped before finding one that decodes.
pub fn read_latest_traced(base: &str) -> Result<(EngineCheckpoint, GenerationRecovery)> {
    let (best, rec) = read_latest_with(base, &decode, &|ck: &EngineCheckpoint| ck.points_processed);
    match best {
        Some(ck) => Ok((ck, rec)),
        None => Err(match rec.last_error {
            Some(msg) => UStreamError::Checkpoint(msg),
            None => UStreamError::Checkpoint(format!(
                "no checkpoint generation found at {base} (or {base}.N)"
            )),
        }),
    }
}

/// Loads the newest checkpoint generation that still decodes.
///
/// Tries the manifest order (newest first); when the manifest is missing
/// or unusable, scans `<base>.0 … <base>.{63}` and the bare `base` path and
/// returns the valid checkpoint with the highest `points_processed`. Errors
/// only when *no* generation decodes — with the decode error of the last
/// corrupt candidate, so the caller sees why recovery failed. Callers that
/// should *notice* skipped generations use [`read_latest_traced`].
pub fn read_latest(base: &str) -> Result<EngineCheckpoint> {
    read_latest_traced(base).map(|(ck, _)| ck)
}

#[cfg(test)]
mod tests {
    use super::*;
    use umicro::UMicroConfig;

    fn tiny_checkpoint() -> EngineCheckpoint {
        EngineCheckpoint {
            config: EngineConfig::new(UMicroConfig::new(4, 2).unwrap()),
            shards: vec![ShardCheckpoint {
                state: ClustererState {
                    ids: Vec::new(),
                    summaries: Vec::new(),
                    next_id: 0,
                    points_processed: 0,
                    since_refresh: 0,
                    variances: Vec::new(),
                    last_seen: 0,
                },
                created: 0,
                evicted: 0,
                processed: 0,
                alerts: 0,
            }],
            snapshots: Vec::new(),
            points_processed: 0,
            last_tick: 0,
            alerts_raised: 0,
            merges: 0,
            router: 0,
        }
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn encode_decode_round_trip() {
        let ckpt = tiny_checkpoint();
        let bytes = encode(&ckpt).unwrap();
        let back = decode(&bytes).unwrap();
        assert_eq!(back.shards.len(), 1);
        assert_eq!(back.config.umicro.n_micro, 4);
    }

    #[test]
    fn corrupt_payload_detected() {
        let mut bytes = encode(&tiny_checkpoint()).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let err = decode(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("checksum mismatch"),
            "wrong error: {err}"
        );
    }

    #[test]
    fn truncated_payload_detected() {
        let mut bytes = encode(&tiny_checkpoint()).unwrap();
        bytes.truncate(bytes.len() - 10);
        let err = decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("truncated"), "wrong error: {err}");
    }

    #[test]
    fn wrong_magic_detected() {
        let err = decode(b"NOTACKPT 1 0 0\n").unwrap_err();
        assert!(err.to_string().contains("bad magic"), "wrong error: {err}");
    }

    #[test]
    fn future_version_refused() {
        let payload = b"{}";
        let header = format!("{MAGIC} 999 {} {:016x}\n", payload.len(), fnv1a64(payload));
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(payload);
        let err = decode(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("unsupported USTREAMCKPT version"),
            "wrong error: {err}"
        );
    }

    #[test]
    fn garbage_file_is_an_error_not_a_panic() {
        for garbage in [
            &b""[..],
            &b"\n"[..],
            &b"\xff\xfe\x00\x01"[..],
            &b"USTREAMCKPT\n"[..],
            &b"USTREAMCKPT 1 oops zzzz\n"[..],
        ] {
            assert!(decode(garbage).is_err());
        }
    }

    #[test]
    fn shard_count_mismatch_rejected() {
        let mut ckpt = tiny_checkpoint();
        ckpt.config = ckpt.config.with_shards(2);
        let bytes = encode(&ckpt).unwrap();
        let err = decode(&bytes).unwrap_err();
        assert!(
            err.to_string().contains("shard states"),
            "wrong error: {err}"
        );
    }

    #[test]
    fn atomic_write_and_read_back() {
        let dir = std::env::temp_dir();
        let path = dir
            .join(format!("ustream-ckpt-test-{}", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let ckpt = tiny_checkpoint();
        write_atomic(&path, &ckpt).unwrap();
        // No stray temp file left behind.
        assert!(!std::path::Path::new(&format!("{path}.tmp")).exists());
        let back = read(&path).unwrap();
        assert_eq!(back.shards.len(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read("/nonexistent/dir/engine.ckpt").unwrap_err();
        assert!(matches!(err, UStreamError::Io(_)));
    }

    fn temp_base(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("ustream-rot-{tag}-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    fn cleanup_rotation(base: &str) {
        for slot in 0..8 {
            let _ = fs::remove_file(generation_path(base, slot));
        }
        let _ = fs::remove_file(manifest_path(base));
        let _ = fs::remove_file(base);
    }

    fn ckpt_at(points: u64) -> EngineCheckpoint {
        let mut ck = tiny_checkpoint();
        ck.points_processed = points;
        ck
    }

    #[test]
    fn rotation_keeps_n_generations_and_reads_newest() {
        let base = temp_base("keepn");
        cleanup_rotation(&base);
        for seq in 0..6u64 {
            write_rotated(&base, 3, seq, &ckpt_at(seq * 10)).unwrap();
        }
        // Exactly the three slot files exist, plus the manifest.
        for slot in 0..3 {
            assert!(std::path::Path::new(&generation_path(&base, slot)).exists());
        }
        assert!(!std::path::Path::new(&generation_path(&base, 3)).exists());
        let back = read_latest(&base).unwrap();
        assert_eq!(back.points_processed, 50);
        cleanup_rotation(&base);
    }

    #[test]
    fn read_latest_skips_corrupt_newest_generation() {
        let base = temp_base("skipnew");
        cleanup_rotation(&base);
        for seq in 0..3u64 {
            write_rotated(&base, 3, seq, &ckpt_at(seq * 10)).unwrap();
        }
        // Corrupt the newest generation (slot 2 = seq 2) on disk.
        let newest = generation_path(&base, 2);
        let mut bytes = fs::read(&newest).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&newest, bytes).unwrap();
        let back = read_latest(&base).unwrap();
        assert_eq!(back.points_processed, 10, "should fall back to seq 1");
        cleanup_rotation(&base);
    }

    #[test]
    fn read_latest_skips_newest_generation_truncated_mid_header() {
        let base = temp_base("midheader");
        cleanup_rotation(&base);
        for seq in 0..3u64 {
            write_rotated(&base, 3, seq, &ckpt_at(seq * 10)).unwrap();
        }
        // A crash mid-write can leave the newest slot cut off inside the
        // header itself — shorter than the magic, no newline, nothing to
        // checksum. That must cost one generation, not the recovery.
        let newest = generation_path(&base, 2);
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..7]).unwrap();
        let back = read_latest(&base).unwrap();
        assert_eq!(back.points_processed, 10, "should fall back to seq 1");
        cleanup_rotation(&base);
    }

    #[test]
    fn read_latest_scans_slots_when_manifest_is_garbage() {
        let base = temp_base("scan");
        cleanup_rotation(&base);
        for seq in 0..3u64 {
            write_rotated(&base, 3, seq, &ckpt_at(seq * 10)).unwrap();
        }
        fs::write(manifest_path(&base), b"not a manifest\n").unwrap();
        let back = read_latest(&base).unwrap();
        assert_eq!(back.points_processed, 20);
        cleanup_rotation(&base);
    }

    #[test]
    fn read_latest_falls_back_to_bare_base_path() {
        let base = temp_base("bare");
        cleanup_rotation(&base);
        write_atomic(&base, &ckpt_at(7)).unwrap();
        let back = read_latest(&base).unwrap();
        assert_eq!(back.points_processed, 7);
        cleanup_rotation(&base);
    }

    #[test]
    fn read_latest_with_nothing_on_disk_is_an_error() {
        let base = temp_base("none");
        cleanup_rotation(&base);
        assert!(read_latest(&base).is_err());
    }

    #[test]
    fn traced_read_counts_skipped_corrupt_generations() {
        let base = temp_base("traced");
        cleanup_rotation(&base);
        for seq in 0..3u64 {
            write_rotated(&base, 3, seq, &ckpt_at(seq * 10)).unwrap();
        }
        let (_, rec) = read_latest_traced(&base).unwrap();
        assert_eq!(rec.corrupt_skipped, 0, "clean load skips nothing");
        assert!(rec.via_manifest);

        // Rot the two newest generations (slots 2 and 1).
        for slot in [2u64, 1] {
            let path = generation_path(&base, slot);
            let mut bytes = fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            fs::write(&path, bytes).unwrap();
        }
        let (ck, rec) = read_latest_traced(&base).unwrap();
        assert_eq!(ck.points_processed, 0, "only seq 0 survives");
        assert_eq!(rec.corrupt_skipped, 2, "both rotten generations counted");
        assert!(rec.last_error.is_some());
        cleanup_rotation(&base);
    }

    #[test]
    fn traced_read_does_not_double_count_across_manifest_and_scan() {
        let base = temp_base("traced-dedup");
        cleanup_rotation(&base);
        for seq in 0..2u64 {
            write_rotated(&base, 2, seq, &ckpt_at(seq * 10)).unwrap();
        }
        // Rot every generation: the manifest walk fails each, then the
        // slot scan revisits the same files. One rotten file, one count.
        for slot in [0u64, 1] {
            let path = generation_path(&base, slot);
            let mut bytes = fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0x01;
            fs::write(&path, bytes).unwrap();
        }
        let err = read_latest_traced(&base).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        let (best, rec) = read_latest_with(&base, &decode, &|ck| ck.points_processed);
        assert!(best.is_none());
        assert_eq!(rec.corrupt_skipped, 2, "two files, two counts, no dupes");
        cleanup_rotation(&base);
    }

    #[test]
    fn rotated_bytes_round_trip_through_generic_reader() {
        let base = temp_base("bytes");
        cleanup_rotation(&base);
        for seq in 0..4u64 {
            let payload = format!("{{\"ord\":{seq}}}");
            let bytes = encode_payload("UTESTSNAP", 1, payload.as_bytes());
            write_rotated_bytes(&base, 2, seq, &bytes).unwrap();
        }
        assert_eq!(latest_manifest_seq(&base), Some(3));
        let decode_ord = |bytes: &[u8]| -> Result<u64> {
            let payload = decode_payload("UTESTSNAP", 1, bytes)?;
            let text = std::str::from_utf8(payload)
                .map_err(|_| UStreamError::Checkpoint("not utf-8".into()))?;
            text.trim_start_matches("{\"ord\":")
                .trim_end_matches('}')
                .parse()
                .map_err(|_| UStreamError::Checkpoint("bad ord".into()))
        };
        let (best, rec) = read_latest_with(&base, &decode_ord, &|v| *v);
        assert_eq!(best, Some(3));
        assert_eq!(rec.corrupt_skipped, 0);
        cleanup_rotation(&base);
    }
}
