//! Uncertain and deterministic data points.
//!
//! The paper's input model: the `i`-th stream element is the pair
//! `(X_i, ψ(X_i))` where `ψ_j(X_i)` is the *standard deviation* of the error
//! on the `j`-th dimension of `X_i`. Errors have zero mean and are
//! independent across records and dimensions.

use crate::label::ClassLabel;
use crate::time::Timestamp;
use serde::{Deserialize, Serialize};

/// A `d`-dimensional uncertain record: an instantiation plus a per-dimension
/// error standard-deviation vector `ψ`.
///
/// This is the unit of work for [`umicro`](https://crates.io) style
/// algorithms. Deterministic algorithms (CluStream) simply ignore
/// [`UncertainPoint::errors`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertainPoint {
    /// The observed (instantiated) attribute values `x_1 … x_d`.
    values: Box<[f64]>,
    /// The error standard deviations `ψ_1(X) … ψ_d(X)`; all non-negative.
    errors: Box<[f64]>,
    /// Arrival tick on the stream clock.
    timestamp: Timestamp,
    /// Ground-truth class, when known — used only for evaluation.
    label: Option<ClassLabel>,
}

impl UncertainPoint {
    /// Builds a point from value and error vectors.
    ///
    /// # Panics
    /// Panics if the two vectors differ in length or any error is negative
    /// or non-finite; both indicate generator bugs rather than recoverable
    /// conditions.
    pub fn new(
        values: Vec<f64>,
        errors: Vec<f64>,
        timestamp: Timestamp,
        label: Option<ClassLabel>,
    ) -> Self {
        assert_eq!(
            values.len(),
            errors.len(),
            "value/error vectors must have equal dimensionality"
        );
        assert!(
            errors.iter().all(|e| e.is_finite() && *e >= 0.0),
            "error standard deviations must be finite and non-negative"
        );
        Self {
            values: values.into_boxed_slice(),
            errors: errors.into_boxed_slice(),
            timestamp,
            label,
        }
    }

    /// A point with zero uncertainty on every dimension (`ψ = 0`).
    pub fn certain(values: Vec<f64>, timestamp: Timestamp, label: Option<ClassLabel>) -> Self {
        let errors = vec![0.0; values.len()];
        Self::new(values, errors, timestamp, label)
    }

    /// Dimensionality `d`.
    #[inline]
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// The instantiated attribute values.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The error standard-deviation vector `ψ(X)`.
    #[inline]
    pub fn errors(&self) -> &[f64] {
        &self.errors
    }

    /// Arrival tick.
    #[inline]
    pub fn timestamp(&self) -> Timestamp {
        self.timestamp
    }

    /// Ground-truth class, if known.
    #[inline]
    pub fn label(&self) -> Option<ClassLabel> {
        self.label
    }

    /// Re-stamps the point with a new arrival tick (used when replaying a
    /// recorded dataset as a stream).
    pub fn with_timestamp(mut self, t: Timestamp) -> Self {
        self.timestamp = t;
        self
    }

    /// Attaches (or replaces) a ground-truth label.
    pub fn with_label(mut self, label: ClassLabel) -> Self {
        self.label = Some(label);
        self
    }

    /// `true` when every instantiated coordinate is finite.
    ///
    /// [`UncertainPoint::new`] does *not* enforce this (a NaN reading is a
    /// data-quality problem, not a programming error), so ingestion layers
    /// that must keep non-finite values out of additive statistics check
    /// here.
    #[inline]
    pub fn values_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// `true` when every error standard deviation is finite and
    /// non-negative.
    ///
    /// [`UncertainPoint::new`] asserts this, but deserialised points bypass
    /// the constructor, so defensive layers re-check.
    #[inline]
    pub fn errors_valid(&self) -> bool {
        self.errors.iter().all(|e| e.is_finite() && *e >= 0.0)
    }

    /// Sum over dimensions of squared error std-devs, `Σ_j ψ_j(X)²` — the
    /// point's contribution to a cluster's `EF2` vector.
    pub fn error_energy(&self) -> f64 {
        self.errors.iter().map(|e| e * e).sum()
    }

    /// Squared Euclidean distance between the *instantiations* of two points
    /// (errors ignored). Deterministic baselines use this.
    pub fn sq_distance_to(&self, other: &UncertainPoint) -> f64 {
        debug_assert_eq!(self.dims(), other.dims());
        self.values
            .iter()
            .zip(other.values.iter())
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }
}

/// A plain deterministic point — values only. Used by substrates (k-means)
/// that do not care about uncertainty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeterministicPoint {
    /// Attribute values.
    pub values: Vec<f64>,
    /// Multiplicity/weight of the point (1.0 for raw records; k-means
    /// substrates cluster *weighted* representatives).
    pub weight: f64,
}

impl DeterministicPoint {
    /// A unit-weight point.
    pub fn new(values: Vec<f64>) -> Self {
        Self {
            values,
            weight: 1.0,
        }
    }

    /// A weighted point (e.g. a micro-cluster centroid carrying its count).
    pub fn weighted(values: Vec<f64>, weight: f64) -> Self {
        debug_assert!(weight.is_finite() && weight >= 0.0);
        Self { values, weight }
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.values.len()
    }

    /// Squared Euclidean distance to a coordinate slice.
    #[inline]
    pub fn sq_distance_to(&self, other: &[f64]) -> f64 {
        sq_euclidean(&self.values, other)
    }
}

impl From<&UncertainPoint> for DeterministicPoint {
    fn from(p: &UncertainPoint) -> Self {
        DeterministicPoint::new(p.values().to_vec())
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// The single hottest primitive in the workspace; kept free-standing so every
/// crate shares one implementation the compiler can vectorise.
#[inline]
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = UncertainPoint::new(vec![1.0, 2.0], vec![0.1, 0.2], 5, Some(ClassLabel(3)));
        assert_eq!(p.dims(), 2);
        assert_eq!(p.values(), &[1.0, 2.0]);
        assert_eq!(p.errors(), &[0.1, 0.2]);
        assert_eq!(p.timestamp(), 5);
        assert_eq!(p.label(), Some(ClassLabel(3)));
    }

    #[test]
    fn certain_point_has_zero_errors() {
        let p = UncertainPoint::certain(vec![1.0, 2.0, 3.0], 0, None);
        // lint:allow(float-eq): zeros are assigned verbatim by certain(), never computed
        assert!(p.errors().iter().all(|e| *e == 0.0));
        assert_eq!(p.error_energy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn mismatched_errors_panic() {
        let _ = UncertainPoint::new(vec![1.0, 2.0], vec![0.1], 0, None);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_error_panics() {
        let _ = UncertainPoint::new(vec![1.0], vec![-0.5], 0, None);
    }

    #[test]
    fn error_energy_is_sum_of_squares() {
        let p = UncertainPoint::new(vec![0.0, 0.0], vec![3.0, 4.0], 0, None);
        assert!((p.error_energy() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn sq_distance_between_points() {
        let a = UncertainPoint::certain(vec![0.0, 0.0], 0, None);
        let b = UncertainPoint::certain(vec![3.0, 4.0], 0, None);
        assert!((a.sq_distance_to(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn with_timestamp_and_label() {
        let p = UncertainPoint::certain(vec![1.0], 0, None)
            .with_timestamp(9)
            .with_label(ClassLabel(1));
        assert_eq!(p.timestamp(), 9);
        assert_eq!(p.label(), Some(ClassLabel(1)));
    }

    #[test]
    fn deterministic_from_uncertain_drops_errors() {
        let p = UncertainPoint::new(vec![1.0, 2.0], vec![0.5, 0.5], 0, None);
        let d = DeterministicPoint::from(&p);
        assert_eq!(d.values, vec![1.0, 2.0]);
        assert_eq!(d.weight, 1.0);
    }

    #[test]
    fn sq_euclidean_basic() {
        assert_eq!(sq_euclidean(&[0.0, 0.0], &[1.0, 1.0]), 2.0);
        assert_eq!(sq_euclidean(&[], &[]), 0.0);
    }

    #[test]
    fn weighted_point() {
        let d = DeterministicPoint::weighted(vec![1.0], 12.5);
        assert_eq!(d.weight, 12.5);
        assert_eq!(d.dims(), 1);
        assert_eq!(d.sq_distance_to(&[4.0]), 9.0);
    }
}
