//! Additive cluster-feature traits.
//!
//! Both the deterministic CluStream feature vector and the paper's
//! error-based `ECF` satisfy the *additive property* (Property 2.1): all
//! non-temporal components of `ECF(C₁ ∪ C₂)` are the component-wise sum of
//! `ECF(C₁)` and `ECF(C₂)`, and the temporal component is the max. The
//! *subtractive* corollary powers horizon queries over the pyramidal time
//! frame. These traits let the snapshot store and macro-clustering layers be
//! generic over the concrete feature type.

use crate::time::Timestamp;

/// A cluster summary that can be merged with, and subtracted from, another
/// summary of the same dimensionality.
pub trait AdditiveFeature: Clone {
    /// Dimensionality `d` of the summarised space.
    fn dims(&self) -> usize;

    /// Number of points (or total weight, for decayed variants) summarised.
    fn count(&self) -> f64;

    /// Tick of the most recent update (the temporal component `t(C)`).
    fn last_update(&self) -> Timestamp;

    /// Component-wise `self += other`; temporal component becomes the max.
    ///
    /// Implementations must `debug_assert!` equal dimensionality.
    fn merge(&mut self, other: &Self);

    /// Component-wise `self -= other` (the subtractive property used for
    /// horizon reconstruction). The temporal component of `self` is kept.
    ///
    /// Subtraction can leave tiny negative residues from floating-point
    /// cancellation; implementations clamp second-moment entries at zero.
    fn subtract(&mut self, other: &Self);

    /// Whether the summary describes no points (count ≈ 0). Empty summaries
    /// are dropped during horizon reconstruction.
    fn is_empty(&self) -> bool {
        self.count() <= 1e-9
    }

    /// Centroid of the summarised points.
    fn centroid(&self) -> Vec<f64>;
}

/// A feature vector supporting exponential time decay (Definition 2.3 of the
/// paper): all statistics scale by `2^{−λ·Δt}` when `Δt` ticks elapse.
pub trait DecayableFeature: AdditiveFeature {
    /// Multiplies every decayable statistic by `factor ∈ (0, 1]`.
    fn scale(&mut self, factor: f64);

    /// Lazy decay: scales the statistics by `2^{−λ (now − last_touch)}`
    /// where `last_touch` is the tick at which the statistics were last
    /// brought current, and records `now` as the new reference point.
    fn decay_to(&mut self, now: Timestamp, lambda: f64);
}

/// Half-life helper (Definition 2.2): the half-life of a point is `1/λ`, so
/// a desired half-life `h` gives decay rate `λ = 1/h`.
#[inline]
pub fn lambda_for_half_life(half_life: f64) -> f64 {
    assert!(
        half_life.is_finite() && half_life > 0.0,
        "half-life must be positive"
    );
    1.0 / half_life
}

/// The decay factor `2^{−λ Δt}`.
#[inline]
pub fn decay_factor(lambda: f64, elapsed: f64) -> f64 {
    debug_assert!(lambda >= 0.0 && elapsed >= 0.0);
    (-lambda * elapsed).exp2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_life_relation() {
        // After exactly one half-life the weight must halve.
        let lambda = lambda_for_half_life(100.0);
        let f = decay_factor(lambda, 100.0);
        assert!((f - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_elapsed_means_no_decay() {
        assert_eq!(decay_factor(0.01, 0.0), 1.0);
    }

    #[test]
    fn decay_compounds_multiplicatively() {
        let lambda = 0.003;
        let whole = decay_factor(lambda, 70.0);
        let split = decay_factor(lambda, 30.0) * decay_factor(lambda, 40.0);
        assert!((whole - split).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_half_life_panics() {
        let _ = lambda_for_half_life(0.0);
    }
}
