//! Class labels used for evaluation.
//!
//! Labels never participate in clustering decisions: the algorithms are
//! unsupervised. Labels travel alongside points so the evaluation crate can
//! compute cluster purity exactly as the paper does ("the percentage presence
//! of the dominant class label in the different clusters").

use serde::{Deserialize, Serialize};
use std::fmt;

/// A compact class identifier.
///
/// Synthetic generators use the generating-cluster index as the class, real
/// dataset loaders map label strings (e.g. KDD'99 attack categories) onto
/// small integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ClassLabel(pub u32);

impl ClassLabel {
    /// The raw integer id.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ClassLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

impl From<u32> for ClassLabel {
    fn from(v: u32) -> Self {
        ClassLabel(v)
    }
}

impl From<usize> for ClassLabel {
    fn from(v: usize) -> Self {
        ClassLabel(v as u32)
    }
}

/// An interner mapping string labels (dataset files) to [`ClassLabel`]s.
#[derive(Debug, Default, Clone)]
pub struct LabelInterner {
    names: Vec<String>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the label for `name`, interning it on first sight.
    pub fn intern(&mut self, name: &str) -> ClassLabel {
        if let Some(idx) = self.names.iter().position(|n| n == name) {
            return ClassLabel(idx as u32);
        }
        self.names.push(name.to_owned());
        ClassLabel((self.names.len() - 1) as u32)
    }

    /// The name of a previously interned label.
    pub fn name(&self, label: ClassLabel) -> Option<&str> {
        self.names.get(label.0 as usize).map(String::as_str)
    }

    /// Number of distinct labels seen so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_round_trips() {
        let mut i = LabelInterner::new();
        let a = i.intern("normal");
        let b = i.intern("dos");
        let a2 = i.intern("normal");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.name(a), Some("normal"));
        assert_eq!(i.name(b), Some("dos"));
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn interner_unknown_label() {
        let i = LabelInterner::new();
        assert!(i.is_empty());
        assert_eq!(i.name(ClassLabel(3)), None);
    }

    #[test]
    fn label_display_and_conversions() {
        let l: ClassLabel = 7u32.into();
        assert_eq!(l.to_string(), "class#7");
        assert_eq!(l.id(), 7);
        let l2: ClassLabel = 7usize.into();
        assert_eq!(l, l2);
    }
}
