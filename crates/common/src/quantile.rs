//! Streaming quantile estimation (the P² algorithm of Jain & Chlamtac,
//! CACM 1985): tracks a fixed quantile of an unbounded stream with five
//! markers and O(1) memory/update — the right tool for baselining "how
//! isolated are records usually?" without retaining observations.

/// P² estimator for a single quantile `q ∈ (0, 1)`.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated quantile values).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    /// Observations seen; the first five are buffered raw.
    count: usize,
}

impl P2Quantile {
    /// Estimator for quantile `q`.
    ///
    /// # Panics
    /// Panics unless `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0, 1), got {q}");
        Self {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
        }
    }

    /// The tracked quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations folded in so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Folds one observation in.
    pub fn observe(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        if self.count < 5 {
            self.heights[self.count] = x;
            self.count += 1;
            if self.count == 5 {
                self.heights.sort_unstable_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // 1. Find the cell k containing x, adjusting extremes.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.heights[i] <= x && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        // 2. Increment positions of markers above the cell and desired
        //    positions of all markers.
        for i in (k + 1)..5 {
            self.positions[i] += 1.0;
        }
        for i in 0..5 {
            self.desired[i] += self.increments[i];
        }

        // 3. Adjust the interior markers with the parabolic (or linear)
        //    formula when they are off their desired positions.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right = self.positions[i + 1] - self.positions[i];
            let left = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0) {
                let d = d.signum();
                let candidate = self.parabolic(i, d);
                let new_height =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, d)
                    };
                self.heights[i] = new_height;
                self.positions[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + d / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.heights[i]
            + d * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current estimate of the tracked quantile; `None` before any
    /// observation. With fewer than five observations, falls back to the
    /// exact order statistic of the buffer.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut buf: Vec<f64> = self.heights[..self.count].to_vec();
            buf.sort_unstable_by(f64::total_cmp);
            let rank = ((self.count as f64 - 1.0) * self.q).round() as usize;
            return Some(buf[rank.min(self.count - 1)]);
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[rank]
    }

    #[test]
    fn tracks_median_of_uniform_ramp() {
        let mut est = P2Quantile::new(0.5);
        for i in 0..10_001 {
            est.observe(i as f64);
        }
        let got = est.estimate().unwrap();
        assert!(
            (got - 5_000.0).abs() < 150.0,
            "median of 0..10000 ≈ 5000, got {got}"
        );
    }

    #[test]
    fn tracks_p99_of_shuffled_data() {
        // Deterministic pseudo-shuffle via multiplicative hashing.
        let n = 20_000u64;
        let values: Vec<f64> = (0..n)
            .map(|i| ((i.wrapping_mul(2654435761)) % n) as f64)
            .collect();
        let mut est = P2Quantile::new(0.99);
        for &v in &values {
            est.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable_by(f64::total_cmp);
        let truth = exact_quantile(&sorted, 0.99);
        let got = est.estimate().unwrap();
        assert!(
            (got - truth).abs() / truth < 0.02,
            "p99 {truth} vs estimate {got}"
        );
    }

    #[test]
    fn small_sample_exact() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.observe(10.0);
        assert_eq!(est.estimate(), Some(10.0));
        est.observe(20.0);
        est.observe(0.0);
        // Median of {0, 10, 20} = 10.
        assert_eq!(est.estimate(), Some(10.0));
        assert_eq!(est.count(), 3);
    }

    #[test]
    fn skewed_distribution() {
        // 99% of mass at ~1, 1% at ~100: p90 must stay near 1, p999 near 100.
        let mut p90 = P2Quantile::new(0.9);
        let mut p999 = P2Quantile::new(0.999);
        for i in 0..50_000u64 {
            let v = if i % 100 == 7 {
                100.0
            } else {
                1.0 + (i % 10) as f64 * 0.01
            };
            p90.observe(v);
            p999.observe(v);
        }
        assert!(p90.estimate().unwrap() < 5.0);
        assert!(p999.estimate().unwrap() > 50.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn rejects_bad_q() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn monotone_inputs_keep_marker_order() {
        let mut est = P2Quantile::new(0.75);
        for i in (0..5_000).rev() {
            est.observe(i as f64);
        }
        let got = est.estimate().unwrap();
        assert!(
            (got - 3_750.0).abs() < 150.0,
            "p75 of 0..5000 ≈ 3750, got {got}"
        );
        // Heights must remain sorted (internal invariant).
        // (estimate() already depends on it; sanity-check through behaviour.)
        assert!(est.count() == 5_000);
    }
}
