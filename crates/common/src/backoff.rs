//! Bounded exponential backoff with deterministic jitter.
//!
//! Shared by every transport in the workspace that retries over a lossy
//! boundary — the serve client's reconnect path and the distributed tier's
//! delta shipper both use this exact policy so their retry behaviour is
//! tunable (and testable) in one place.
//!
//! The delay for attempt `n` (0-based) is `base · 2^n`, capped at `cap`,
//! then jittered into `[delay/2, delay]` so a fleet of sites that lost the
//! same coordinator does not reconnect in lockstep. Jitter is derived from
//! a caller-supplied seed via splitmix64, never from wall-clock entropy, so
//! fault-injection tests replay identically.

use std::time::Duration;

/// splitmix64 — the workspace's standard cheap deterministic hash.
/// Public here so callers that need a seed-derived stream of pseudo-random
/// words (jitter, sampling) share one implementation.
#[must_use]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential backoff schedule with a hard cap and deterministic jitter.
///
/// The struct only *computes* delays; sleeping is the caller's decision
/// (and happens inside that caller's sanctioned wait point), which keeps
/// this crate free of blocking calls.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    attempt: u32,
    state: u64,
}

impl Backoff {
    /// A schedule starting at `base_ms`, doubling per attempt, capped at
    /// `cap_ms`. `seed` drives the jitter stream; equal seeds replay equal
    /// schedules. A `base_ms` of 0 yields all-zero delays (useful in tests).
    #[must_use]
    pub fn new(base_ms: u64, cap_ms: u64, seed: u64) -> Self {
        Self {
            base_ms,
            cap_ms: cap_ms.max(base_ms),
            attempt: 0,
            state: seed,
        }
    }

    /// Number of delays handed out so far.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Restart the schedule from the first attempt (jitter stream keeps
    /// advancing, so a reset does not replay the same delays).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }

    /// The delay to wait before the next retry, advancing the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(32);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self.base_ms.saturating_mul(1u64 << shift);
        let capped = raw.min(self.cap_ms);
        self.state = splitmix64(self.state);
        // Jitter into [capped/2, capped]: never longer than the cap, never
        // so short the exponential shape is lost.
        let half = capped / 2;
        let jittered = if half == 0 {
            capped
        } else {
            half + self.state % (capped - half + 1)
        };
        Duration::from_millis(jittered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let mut b = Backoff::new(10, 80, 42);
        let mut prev_cap = 0u64;
        for _ in 0..8 {
            let d = b.next_delay().as_millis() as u64;
            assert!(d <= 80, "delay {d} must respect the cap");
            prev_cap = prev_cap.max(d);
        }
        // After enough doublings the schedule saturates near the cap.
        assert!(prev_cap >= 40, "jittered delays must approach the cap");
    }

    #[test]
    fn jitter_stays_in_half_open_band() {
        let mut b = Backoff::new(100, 1000, 7);
        let d0 = b.next_delay().as_millis() as u64;
        assert!((50..=100).contains(&d0), "first delay {d0} outside band");
    }

    #[test]
    fn equal_seeds_replay_equal_schedules() {
        let mut a = Backoff::new(5, 500, 99);
        let mut b = Backoff::new(5, 500, 99);
        for _ in 0..6 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Backoff::new(64, 4096, 1);
        let mut b = Backoff::new(64, 4096, 2);
        let same = (0..6).filter(|_| a.next_delay() == b.next_delay()).count();
        assert!(same < 6, "independent seeds should not replay identically");
    }

    #[test]
    fn zero_base_is_all_zero() {
        let mut b = Backoff::new(0, 0, 3);
        for _ in 0..4 {
            assert_eq!(b.next_delay(), Duration::ZERO);
        }
    }

    #[test]
    fn reset_restarts_the_exponential() {
        let mut b = Backoff::new(10, 10_000, 11);
        for _ in 0..5 {
            let _ = b.next_delay();
        }
        b.reset();
        assert_eq!(b.attempts(), 0);
        let d = b.next_delay().as_millis() as u64;
        assert!(d <= 10, "post-reset delay {d} must be back at the base");
    }
}
