//! Small numerical/statistical helpers shared across crates:
//! streaming mean/variance (Welford), per-dimension running statistics, and
//! an inverse normal CDF used by CluStream's relevance stamps and the
//! uncertainty-boundary confidence machinery.

/// Numerically stable streaming mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: f64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1.0;
        let delta = x - self.mean;
        self.mean += delta / self.n;
        self.m2 += delta * (x - self.mean);
    }

    /// Folds a weighted observation in (weight > 0).
    #[inline]
    pub fn push_weighted(&mut self, x: f64, w: f64) {
        debug_assert!(w > 0.0);
        self.n += w;
        let delta = x - self.mean;
        self.mean += w * delta / self.n;
        self.m2 += w * delta * (x - self.mean);
    }

    /// Number of observations (or total weight).
    #[inline]
    pub fn count(&self) -> f64 {
        self.n
    }

    /// Sample mean; 0 when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance; 0 when fewer than two observations.
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2.0 {
            0.0
        } else {
            (self.m2 / self.n).max(0.0)
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Per-dimension running statistics over a vector stream.
#[derive(Debug, Clone)]
pub struct DimStats {
    dims: Vec<RunningStats>,
}

impl DimStats {
    /// Accumulator for `d`-dimensional data.
    pub fn new(d: usize) -> Self {
        Self {
            dims: vec![RunningStats::new(); d],
        }
    }

    /// Folds one record in.
    pub fn push(&mut self, values: &[f64]) {
        debug_assert_eq!(values.len(), self.dims.len());
        for (s, v) in self.dims.iter_mut().zip(values) {
            s.push(*v);
        }
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension means.
    pub fn means(&self) -> Vec<f64> {
        self.dims.iter().map(RunningStats::mean).collect()
    }

    /// Per-dimension population standard deviations (the `σ_i⁰` of the
    /// paper's noise model).
    pub fn std_devs(&self) -> Vec<f64> {
        self.dims.iter().map(RunningStats::std_dev).collect()
    }

    /// Per-dimension variances.
    pub fn variances(&self) -> Vec<f64> {
        self.dims.iter().map(RunningStats::variance).collect()
    }
}

/// Inverse CDF of the standard normal distribution (Acklam's rational
/// approximation, |relative error| < 1.15e-9 over (0, 1)).
///
/// CluStream uses this to estimate the arrival time of the `m/(2n)`-th
/// percentile point of a micro-cluster under a normal assumption.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "inverse_normal_cdf requires p in (0, 1), got {p}"
    );

    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// CDF of the standard normal (via `erf`-free Abramowitz–Stegun 7.1.26
/// polynomial, |error| < 7.5e-8). Used by tests to cross-check the inverse.
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let poly = t
        * (0.319381530
            + t * (-0.356563782 + t * (1.781477937 + t * (-1.821255978 + t * 1.330274429))));
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let tail = pdf * poly;
    if x >= 0.0 {
        1.0 - tail
    } else {
        tail
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 8.0);
    }

    #[test]
    fn running_stats_empty_and_single() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        s.push(3.0);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn weighted_equals_repeated() {
        let mut a = RunningStats::new();
        for _ in 0..5 {
            a.push(2.0);
        }
        a.push(8.0);
        let mut b = RunningStats::new();
        b.push_weighted(2.0, 5.0);
        b.push_weighted(8.0, 1.0);
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.variance() - b.variance()).abs() < 1e-12);
    }

    #[test]
    fn dim_stats_tracks_each_dimension() {
        let mut d = DimStats::new(2);
        d.push(&[0.0, 10.0]);
        d.push(&[2.0, 10.0]);
        d.push(&[4.0, 10.0]);
        let means = d.means();
        assert!((means[0] - 2.0).abs() < 1e-12);
        assert!((means[1] - 10.0).abs() < 1e-12);
        let sds = d.std_devs();
        assert!(sds[0] > 0.0);
        assert_eq!(sds[1], 0.0);
        assert_eq!(d.dims(), 2);
        assert_eq!(d.variances().len(), 2);
    }

    #[test]
    fn inverse_normal_cdf_known_values() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.8413447) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn inverse_is_inverse_of_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = inverse_normal_cdf(p);
            let back = normal_cdf(x);
            assert!(
                (back - p).abs() < 1e-6,
                "round-trip failed at p={p}: x={x}, back={back}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "requires p in (0, 1)")]
    fn inverse_normal_cdf_rejects_bounds() {
        let _ = inverse_normal_cdf(0.0);
    }
}
