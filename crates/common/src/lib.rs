//! # ustream-common
//!
//! Core abstractions shared by every crate in the *uncertain-streams*
//! workspace: uncertain data points with per-dimension error vectors, class
//! labels, stream sources, timestamps, additive cluster-feature traits and
//! small numerical helpers.
//!
//! The vocabulary follows the ICDE 2008 paper *"A Framework for Clustering
//! Uncertain Data Streams"* (Aggarwal & Yu): a stream delivers pairs
//! `(X_i, ψ(X_i))` where `X_i` is a `d`-dimensional record and `ψ_j(X_i)` is
//! the standard deviation of the error on dimension `j`.

pub mod backoff;
pub mod error;
pub mod feature;
pub mod label;
pub mod ordered;
pub mod point;
pub mod quantile;
pub mod stats;
pub mod stream;
pub mod time;

pub use backoff::Backoff;
pub use error::UStreamError;
pub use feature::{AdditiveFeature, DecayableFeature};
pub use label::ClassLabel;
pub use point::{DeterministicPoint, UncertainPoint};
pub use quantile::P2Quantile;
pub use stream::{DataStream, VecStream};
pub use time::Timestamp;

/// Convenient `Result` alias used across the workspace.
pub type Result<T> = std::result::Result<T, UStreamError>;
