//! Stream sources.
//!
//! A data stream is modelled as an iterator of [`UncertainPoint`]s with a
//! known dimensionality. Records can be visited at most once — algorithms in
//! this workspace consume streams strictly forward, mirroring the one-pass
//! constraint the paper emphasises.

use crate::point::UncertainPoint;

/// A one-pass source of uncertain records.
///
/// Blanket-implemented details: a `DataStream` is just an
/// `Iterator<Item = UncertainPoint>` that also announces its dimensionality
/// up front so consumers can pre-allocate their summary structures.
pub trait DataStream: Iterator<Item = UncertainPoint> {
    /// Dimensionality `d` of every record the stream will yield.
    fn dims(&self) -> usize;

    /// A hint of the total number of records, when known (generators know,
    /// live streams do not).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Adapter: yields only the first `n` records.
    fn take_points(self, n: usize) -> TakeStream<Self>
    where
        Self: Sized,
    {
        TakeStream {
            dims: self.dims(),
            inner: self,
            remaining: n,
        }
    }
}

impl<S: DataStream + ?Sized> DataStream for Box<S> {
    fn dims(&self) -> usize {
        (**self).dims()
    }

    fn len_hint(&self) -> Option<usize> {
        (**self).len_hint()
    }
}

/// An in-memory stream over a recorded vector of points; primarily used by
/// tests, examples and dataset replays.
#[derive(Debug, Clone)]
pub struct VecStream {
    points: std::vec::IntoIter<UncertainPoint>,
    dims: usize,
    remaining: usize,
}

impl VecStream {
    /// Wraps a vector of points. All points must share one dimensionality.
    ///
    /// # Panics
    /// Panics if points disagree on dimensionality.
    pub fn new(points: Vec<UncertainPoint>) -> Self {
        let dims = points.first().map(|p| p.dims()).unwrap_or(0);
        assert!(
            points.iter().all(|p| p.dims() == dims),
            "all points in a VecStream must share one dimensionality"
        );
        let remaining = points.len();
        Self {
            points: points.into_iter(),
            dims,
            remaining,
        }
    }
}

impl Iterator for VecStream {
    type Item = UncertainPoint;

    fn next(&mut self) -> Option<UncertainPoint> {
        let p = self.points.next();
        if p.is_some() {
            self.remaining -= 1;
        }
        p
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl DataStream for VecStream {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

/// Adapter returned by [`DataStream::take_points`].
#[derive(Debug, Clone)]
pub struct TakeStream<S> {
    inner: S,
    dims: usize,
    remaining: usize,
}

impl<S: DataStream> Iterator for TakeStream<S> {
    type Item = UncertainPoint;

    fn next(&mut self) -> Option<UncertainPoint> {
        if self.remaining == 0 {
            return None;
        }
        let p = self.inner.next();
        if p.is_some() {
            self.remaining -= 1;
        }
        p
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let (lo, hi) = self.inner.size_hint();
        (
            lo.min(self.remaining),
            Some(hi.map_or(self.remaining, |h| h.min(self.remaining))),
        )
    }
}

impl<S: DataStream> DataStream for TakeStream<S> {
    fn dims(&self) -> usize {
        self.dims
    }

    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint().map(|n| n.min(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(n: usize) -> Vec<UncertainPoint> {
        (0..n)
            .map(|i| UncertainPoint::certain(vec![i as f64, 0.0], i as u64, None))
            .collect()
    }

    #[test]
    fn vec_stream_yields_in_order() {
        let mut s = VecStream::new(pts(3));
        assert_eq!(s.dims(), 2);
        assert_eq!(s.len_hint(), Some(3));
        assert_eq!(s.next().unwrap().values()[0], 0.0);
        assert_eq!(s.len_hint(), Some(2));
        assert_eq!(s.next().unwrap().values()[0], 1.0);
        assert_eq!(s.next().unwrap().values()[0], 2.0);
        assert!(s.next().is_none());
    }

    #[test]
    fn empty_vec_stream() {
        let mut s = VecStream::new(vec![]);
        assert_eq!(s.dims(), 0);
        assert!(s.next().is_none());
    }

    #[test]
    #[should_panic(expected = "share one dimensionality")]
    fn mixed_dims_panic() {
        let _ = VecStream::new(vec![
            UncertainPoint::certain(vec![1.0], 0, None),
            UncertainPoint::certain(vec![1.0, 2.0], 1, None),
        ]);
    }

    #[test]
    fn take_points_limits() {
        let s = VecStream::new(pts(10)).take_points(4);
        assert_eq!(s.dims(), 2);
        assert_eq!(s.len_hint(), Some(4));
        let v: Vec<_> = s.collect();
        assert_eq!(v.len(), 4);
        assert_eq!(v[3].values()[0], 3.0);
    }

    #[test]
    fn take_points_larger_than_stream() {
        let s = VecStream::new(pts(2)).take_points(100);
        assert_eq!(s.count(), 2);
    }

    #[test]
    fn size_hints_agree() {
        let s = VecStream::new(pts(5)).take_points(3);
        assert_eq!(s.size_hint(), (3, Some(3)));
    }
}
