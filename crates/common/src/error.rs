//! Workspace-wide error type.

use std::fmt;

/// Errors surfaced by the uncertain-streams crates.
///
/// The stream-clustering hot path is deliberately error-free (dimension
/// mismatches there are programming errors and use debug assertions);
/// `UStreamError` covers the fallible edges: configuration validation,
/// dataset loading and snapshot persistence.
#[derive(Debug)]
pub enum UStreamError {
    /// A point or feature vector had a different dimensionality than the
    /// structure it was combined with.
    DimensionMismatch {
        /// Dimensionality expected by the receiving structure.
        expected: usize,
        /// Dimensionality of the offending input.
        actual: usize,
    },
    /// A configuration parameter was outside its valid domain.
    InvalidConfig(String),
    /// A dataset file could not be read or parsed.
    Dataset(String),
    /// An I/O error bubbled up from persistence or loading.
    Io(std::io::Error),
    /// Snapshot (de)serialisation failed.
    Serde(String),
    /// The requested horizon has no stored snapshot that covers it.
    HorizonUnavailable {
        /// The horizon the caller asked for (in clock ticks).
        requested: u64,
    },
    /// A record was pushed at an engine whose workers have stopped
    /// (shutdown already ran or a worker died).
    EngineStopped,
    /// A stream point failed validation (non-finite coordinate, invalid
    /// error vector, dimension mismatch, or policy violation) and the active
    /// `ValidationPolicy` rejects such points.
    InvalidPoint(String),
    /// The engine's ingestion channels are full and the active backpressure
    /// policy surfaces overload to the producer instead of blocking.
    Backpressure,
    /// A bounded-wait operation (`push_with_timeout`, `shutdown_drain`, a
    /// deadline-wrapped socket read/write) ran out of time. Unlike
    /// [`UStreamError::Backpressure`] — which reports instantaneous channel
    /// fullness and is always worth retrying — a deadline miss means the
    /// caller's own time budget is spent; retrying only makes sense against
    /// a fresh deadline.
    DeadlineExceeded {
        /// How long the operation waited before giving up, in milliseconds.
        waited_ms: u64,
    },
    /// A checkpoint file is malformed, truncated, corrupted (checksum
    /// mismatch), or has an unsupported version.
    Checkpoint(String),
    /// A bounded retry loop (reconnecting client, delta shipper) exhausted
    /// its attempt budget without one success. Carries the terminal failure
    /// so callers can distinguish "peer gone" from "peer rejecting".
    RetriesExhausted {
        /// How many attempts were made before giving up.
        attempts: u32,
        /// Rendering of the error from the final attempt.
        last_error: String,
    },
}

impl fmt::Display for UStreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UStreamError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            UStreamError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            UStreamError::Dataset(msg) => write!(f, "dataset error: {msg}"),
            UStreamError::Io(e) => write!(f, "io error: {e}"),
            UStreamError::Serde(msg) => write!(f, "serde error: {msg}"),
            UStreamError::HorizonUnavailable { requested } => {
                write!(f, "no snapshot available for horizon {requested}")
            }
            UStreamError::EngineStopped => {
                write!(
                    f,
                    "engine workers have stopped; no further records accepted"
                )
            }
            UStreamError::InvalidPoint(msg) => write!(f, "invalid point: {msg}"),
            UStreamError::Backpressure => {
                write!(f, "engine ingestion channels are full (backpressure)")
            }
            UStreamError::DeadlineExceeded { waited_ms } => {
                write!(f, "deadline exceeded after {waited_ms} ms")
            }
            UStreamError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            UStreamError::RetriesExhausted {
                attempts,
                last_error,
            } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempts: {last_error}"
                )
            }
        }
    }
}

impl std::error::Error for UStreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UStreamError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for UStreamError {
    fn from(e: std::io::Error) -> Self {
        UStreamError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = UStreamError::DimensionMismatch {
            expected: 3,
            actual: 5,
        };
        assert_eq!(e.to_string(), "dimension mismatch: expected 3, got 5");
    }

    #[test]
    fn display_invalid_config() {
        let e = UStreamError::InvalidConfig("n_micro must be positive".into());
        assert!(e.to_string().contains("n_micro must be positive"));
    }

    #[test]
    fn display_horizon() {
        let e = UStreamError::HorizonUnavailable { requested: 42 };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn io_error_converts_and_sources() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: UStreamError = io.into();
        assert!(matches!(e, UStreamError::Io(_)));
        use std::error::Error;
        assert!(e.source().is_some());
    }

    #[test]
    fn display_deadline_exceeded() {
        let e = UStreamError::DeadlineExceeded { waited_ms: 250 };
        assert_eq!(e.to_string(), "deadline exceeded after 250 ms");
    }

    #[test]
    fn display_retries_exhausted() {
        let e = UStreamError::RetriesExhausted {
            attempts: 4,
            last_error: "connection refused".into(),
        };
        assert_eq!(
            e.to_string(),
            "retries exhausted after 4 attempts: connection refused"
        );
    }

    #[test]
    fn non_io_errors_have_no_source() {
        use std::error::Error;
        let e = UStreamError::Serde("bad".into());
        assert!(e.source().is_none());
    }
}
