//! Stream-clock abstractions.
//!
//! The paper's algorithms operate on a discrete stream clock: the `i`-th
//! record arrives at tick `T_i` (usually `T_i = i`). Snapshots of the
//! pyramidal time frame are taken at integer ticks, while exponential decay
//! works on tick *differences* interpreted as real numbers.

/// A point on the stream clock, measured in ticks since the stream started.
///
/// Ticks are arrival indices in every generator shipped with this workspace,
/// but nothing prevents a caller from using wall-clock milliseconds.
pub type Timestamp = u64;

/// A monotone clock driven by the caller; used by algorithms that must know
/// "now" (decay, snapshotting) without owning time themselves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamClock {
    now: Timestamp,
}

impl StreamClock {
    /// Creates a clock at tick zero.
    pub fn new() -> Self {
        Self { now: 0 }
    }

    /// Creates a clock at a specific tick.
    pub fn at(now: Timestamp) -> Self {
        Self { now }
    }

    /// The current tick.
    #[inline]
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advances the clock by one tick and returns the new time.
    #[inline]
    pub fn tick(&mut self) -> Timestamp {
        self.now += 1;
        self.now
    }

    /// Moves the clock forward to `t`. Ignored if `t` is in the past, so the
    /// clock stays monotone even with out-of-order timestamp hints.
    #[inline]
    pub fn advance_to(&mut self, t: Timestamp) {
        if t > self.now {
            self.now = t;
        }
    }
}

/// Elapsed ticks between two timestamps as a float, saturating at zero when
/// `later < earlier` (out-of-order arrivals never produce negative decay
/// exponents).
#[inline]
pub fn elapsed(later: Timestamp, earlier: Timestamp) -> f64 {
    later.saturating_sub(earlier) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_ticks() {
        let mut c = StreamClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn clock_at_and_advance() {
        let mut c = StreamClock::at(10);
        c.advance_to(5); // ignored: would move backwards
        assert_eq!(c.now(), 10);
        c.advance_to(20);
        assert_eq!(c.now(), 20);
    }

    #[test]
    fn elapsed_saturates() {
        assert_eq!(elapsed(10, 4), 6.0);
        assert_eq!(elapsed(4, 10), 0.0);
        assert_eq!(elapsed(7, 7), 0.0);
    }
}
