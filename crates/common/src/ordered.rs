//! Rank-ordered locks: the runtime half of the workspace lock discipline.
//!
//! The static half lives in `ustream-lint` (`lock-order` /
//! `blocking-under-lock`), which reasons over token streams and therefore
//! cannot see through closures invoked under a caller-held lock, guards
//! moved into collections, or dynamically-chosen lock sets. This module
//! closes those blind spots at runtime: every [`OrderedMutex`] /
//! [`OrderedRwLock`] carries a `(rank, index)` position in the canonical
//! workspace lock order, and — under `cfg(test)` or the `lock-audit`
//! feature — each thread records the stack of positions it currently
//! holds. Acquiring a lock whose position does not strictly exceed every
//! held position panics immediately with the witness stack, turning a
//! latent deadlock into a deterministic test failure.
//!
//! The canonical order (documented in DESIGN.md §12):
//!
//! | rank | lock                                      |
//! |-----:|-------------------------------------------|
//! |   10 | `serve::bucket` (index = bucket position) |
//! |   20 | `distrib::sites`                          |
//! |   30 | `distrib::horizons`                       |
//! |   40 | `distrib::wal`                            |
//!
//! Same-rank locks are ordered by `index`, which is how the serve
//! registry's lock-all sweep (ascending bucket index) stays legal while
//! any two buckets taken in the wrong order trip the audit.
//!
//! Outside test/audit builds the wrappers compile down to the plain
//! `parking_lot` primitives plus three dormant fields — no thread-local
//! traffic, no branches on the lock path.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Canonical ranks for the workspace lock order. Leave gaps so future
/// locks can slot between existing ones without renumbering.
pub mod ranks {
    /// A tenant-registry bucket in `ustream-serve` (per-bucket `index`).
    pub const SERVE_BUCKET: u32 = 10;
    /// The coordinator's site-view map in `ustream-distrib`.
    pub const DISTRIB_SITES: u32 = 20;
    /// The coordinator's merged horizon tracker in `ustream-distrib`.
    pub const DISTRIB_HORIZONS: u32 = 30;
    /// The coordinator's write-ahead log handle in `ustream-distrib`.
    pub const DISTRIB_WAL: u32 = 40;
}

#[cfg(any(test, feature = "lock-audit"))]
mod audit {
    use std::cell::RefCell;

    thread_local! {
        /// Positions this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<(u32, u32, &'static str)>> =
            const { RefCell::new(Vec::new()) };
    }

    /// Proof of a recorded acquisition; dropping it un-records the hold.
    /// Guards may be dropped out of acquisition order, so release removes
    /// the most recent matching entry rather than popping the top.
    pub struct Token {
        rank: u32,
        index: u32,
        name: &'static str,
    }

    pub fn acquire(rank: u32, index: u32, name: &'static str) -> Token {
        HELD.with(|cell| {
            let mut held = cell.borrow_mut();
            let ceiling = held.iter().map(|&(r, i, _)| (r, i)).max();
            if let Some((r, i)) = ceiling {
                if (rank, index) <= (r, i) {
                    let stack = held
                        .iter()
                        .map(|&(r, i, n)| format!("`{n}` ({r}.{i})"))
                        .collect::<Vec<_>>()
                        .join(" -> ");
                    drop(held); // release the borrow before unwinding
                    panic!(
                        "lock-order inversion: thread acquired `{name}` \
                         ({rank}.{index}) while holding [{stack}]; \
                         acquisitions must strictly ascend the workspace \
                         order serve::bucket(10) -> distrib::sites(20) -> \
                         distrib::horizons(30) -> distrib::wal(40)"
                    );
                }
            }
            held.push((rank, index, name));
        });
        Token { rank, index, name }
    }

    impl Drop for Token {
        fn drop(&mut self) {
            HELD.with(|cell| {
                let mut held = cell.borrow_mut();
                if let Some(at) = held
                    .iter()
                    .rposition(|&(r, i, n)| r == self.rank && i == self.index && n == self.name)
                {
                    held.remove(at);
                }
            });
        }
    }
}

/// A [`parking_lot::Mutex`] pinned to a position in the workspace lock
/// order. `lock()` panics (in audited builds) if this position does not
/// strictly exceed every lock the calling thread already holds.
pub struct OrderedMutex<T: ?Sized> {
    name: &'static str,
    rank: u32,
    index: u32,
    inner: parking_lot::Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Creates a mutex at `(rank, 0)` in the lock order.
    pub const fn new(name: &'static str, rank: u32, value: T) -> Self {
        Self::with_index(name, rank, 0, value)
    }

    /// Creates a mutex at `(rank, index)` — use a distinct index for each
    /// member of a same-rank family (e.g. registry buckets).
    pub const fn with_index(name: &'static str, rank: u32, index: u32, value: T) -> Self {
        Self {
            name,
            rank,
            index,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedMutex<T> {
    /// The human-readable lock name used in audit witnesses.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// This lock's `(rank, index)` position in the workspace order.
    pub fn position(&self) -> (u32, u32) {
        (self.rank, self.index)
    }

    /// Acquires the lock, auditing the acquisition order in
    /// test / `lock-audit` builds.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(any(test, feature = "lock-audit"))]
        let token = audit::acquire(self.rank, self.index, self.name);
        OrderedMutexGuard {
            inner: self.inner.lock(),
            #[cfg(any(test, feature = "lock-audit"))]
            _token: token,
        }
    }

    /// Mutable access without locking (requires exclusive borrow), so no
    /// ordering audit applies.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("index", &self.index)
            .field("inner", &self.inner)
            .finish()
    }
}

/// RAII guard for [`OrderedMutex`]; releases the audit record on drop.
pub struct OrderedMutexGuard<'a, T: ?Sized> {
    inner: parking_lot::MutexGuard<'a, T>,
    #[cfg(any(test, feature = "lock-audit"))]
    _token: audit::Token,
}

impl<T: ?Sized> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A [`parking_lot::RwLock`] pinned to a position in the workspace lock
/// order. Read and write guards participate identically in the audit: a
/// held read guard forbids acquiring any lower-or-equal position.
pub struct OrderedRwLock<T: ?Sized> {
    name: &'static str,
    rank: u32,
    index: u32,
    inner: parking_lot::RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Creates a lock at `(rank, 0)` in the lock order.
    pub const fn new(name: &'static str, rank: u32, value: T) -> Self {
        Self::with_index(name, rank, 0, value)
    }

    /// Creates a lock at `(rank, index)` in the lock order.
    pub const fn with_index(name: &'static str, rank: u32, index: u32, value: T) -> Self {
        Self {
            name,
            rank,
            index,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> OrderedRwLock<T> {
    /// The human-readable lock name used in audit witnesses.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// This lock's `(rank, index)` position in the workspace order.
    pub fn position(&self) -> (u32, u32) {
        (self.rank, self.index)
    }

    /// Acquires a shared read guard, auditing the acquisition order.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        #[cfg(any(test, feature = "lock-audit"))]
        let token = audit::acquire(self.rank, self.index, self.name);
        OrderedReadGuard {
            inner: self.inner.read(),
            #[cfg(any(test, feature = "lock-audit"))]
            _token: token,
        }
    }

    /// Acquires an exclusive write guard, auditing the acquisition order.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        #[cfg(any(test, feature = "lock-audit"))]
        let token = audit::acquire(self.rank, self.index, self.name);
        OrderedWriteGuard {
            inner: self.inner.write(),
            #[cfg(any(test, feature = "lock-audit"))]
            _token: token,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("index", &self.index)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared read guard for [`OrderedRwLock`].
pub struct OrderedReadGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    #[cfg(any(test, feature = "lock-audit"))]
    _token: audit::Token,
}

impl<T: ?Sized> Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write guard for [`OrderedRwLock`].
pub struct OrderedWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    #[cfg(any(test, feature = "lock-audit"))]
    _token: audit::Token,
}

impl<T: ?Sized> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::ranks;
    use super::{OrderedMutex, OrderedRwLock};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn ascending_acquisition_is_allowed() {
        let sites = OrderedMutex::new("distrib::sites", ranks::DISTRIB_SITES, 1);
        let wal = OrderedMutex::new("distrib::wal", ranks::DISTRIB_WAL, 2);
        let a = sites.lock();
        let b = wal.lock();
        assert_eq!(*a + *b, 3);
    }

    #[test]
    fn same_rank_ascending_index_is_allowed() {
        let b0 = OrderedMutex::with_index("serve::bucket", ranks::SERVE_BUCKET, 0, ());
        let b1 = OrderedMutex::with_index("serve::bucket", ranks::SERVE_BUCKET, 1, ());
        let _g0 = b0.lock();
        let _g1 = b1.lock();
    }

    #[test]
    fn inverted_acquisition_panics_with_witness() {
        let sites = OrderedMutex::new("distrib::sites", ranks::DISTRIB_SITES, ());
        let wal = OrderedMutex::new("distrib::wal", ranks::DISTRIB_WAL, ());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _w = wal.lock();
            let _s = sites.lock(); // 20 after 40: inversion
        }))
        .expect_err("inverted acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| String::from("<non-string panic>"));
        assert!(msg.contains("lock-order inversion"), "got: {msg}");
        assert!(msg.contains("`distrib::sites` (20.0)"), "got: {msg}");
        assert!(msg.contains("`distrib::wal` (40.0)"), "got: {msg}");
    }

    #[test]
    fn same_rank_descending_index_panics() {
        let b0 = OrderedMutex::with_index("serve::bucket", ranks::SERVE_BUCKET, 0, ());
        let b1 = OrderedMutex::with_index("serve::bucket", ranks::SERVE_BUCKET, 1, ());
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _g1 = b1.lock();
            let _g0 = b0.lock();
        }))
        .expect_err("descending same-rank index must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| String::from("<non-string panic>"));
        assert!(msg.contains("(10.1)"), "got: {msg}");
    }

    #[test]
    fn reacquiring_the_same_position_panics() {
        let wal = OrderedMutex::new("distrib::wal", ranks::DISTRIB_WAL, ());
        let _g = wal.lock();
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _again = wal.lock(); // would self-deadlock; audit fires first
        }))
        .expect_err("re-entrant acquisition must panic");
        drop(err);
    }

    #[test]
    fn out_of_order_drop_unwinds_the_record() {
        let sites = OrderedMutex::new("distrib::sites", ranks::DISTRIB_SITES, ());
        let horizons = OrderedMutex::new("distrib::horizons", ranks::DISTRIB_HORIZONS, ());
        let wal = OrderedMutex::new("distrib::wal", ranks::DISTRIB_WAL, ());
        let s = sites.lock();
        let h = horizons.lock();
        drop(s); // released before the later acquisition
        let w = wal.lock();
        drop(h);
        drop(w);
        // All records gone: re-starting from the bottom must be legal.
        let _s = sites.lock();
    }

    #[test]
    fn release_restores_lower_ranks() {
        let sites = OrderedMutex::new("distrib::sites", ranks::DISTRIB_SITES, ());
        let wal = OrderedMutex::new("distrib::wal", ranks::DISTRIB_WAL, ());
        {
            let _w = wal.lock();
        }
        // The wal guard is gone, so rank 20 is reachable again.
        let _s = sites.lock();
    }

    #[test]
    fn rwlock_guards_participate_in_the_order() {
        let horizons = OrderedRwLock::new("distrib::horizons", ranks::DISTRIB_HORIZONS, 7);
        let sites = OrderedMutex::new("distrib::sites", ranks::DISTRIB_SITES, ());
        let r = horizons.read();
        assert_eq!(*r, 7);
        let err = catch_unwind(AssertUnwindSafe(|| {
            let _s = sites.lock(); // 20 under a held 30 read guard
        }))
        .expect_err("read guards must pin the order too");
        drop(err);
        drop(r);
        let mut w = horizons.write();
        *w = 8;
        assert_eq!(*w, 8);
    }

    #[test]
    fn audit_state_is_per_thread() {
        use std::sync::Arc;
        let wal = Arc::new(OrderedMutex::new("distrib::wal", ranks::DISTRIB_WAL, ()));
        let sites = Arc::new(OrderedMutex::new(
            "distrib::sites",
            ranks::DISTRIB_SITES,
            (),
        ));
        let _w = wal.lock();
        // Another thread holds nothing, so it may start from the bottom
        // even while this thread sits at the top of the order.
        let (s2, w2) = (Arc::clone(&sites), Arc::clone(&wal));
        std::thread::spawn(move || {
            let _s = s2.lock();
            drop(_s);
            drop(w2);
        })
        .join()
        .expect("sibling thread must not trip the audit");
    }
}
