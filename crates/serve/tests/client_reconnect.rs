//! Reconnect-with-backoff behaviour of [`ServeClient`]: idempotent
//! requests survive a dropped connection, retries are bounded with a typed
//! terminal error, and non-idempotent requests never resend.

use std::net::TcpListener;
use std::time::Duration;
use ustream_common::UStreamError;
use ustream_serve::io::{read_frame, write_frame};
use ustream_serve::{
    decode_request, encode_response, ReconnectPolicy, Request, Response, ServeClient, WirePoint,
    DEFAULT_MAX_FRAME_BYTES,
};

/// A zero-delay policy so tests never actually sleep.
fn instant_policy(max_attempts: u32) -> ReconnectPolicy {
    ReconnectPolicy {
        max_attempts,
        base_backoff_ms: 0,
        max_backoff_ms: 0,
        seed: 1,
    }
}

#[test]
fn idempotent_request_survives_a_dropped_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        // First session: accept and slam the door before replying.
        let (first, _) = listener.accept().unwrap();
        drop(first);
        // Second session: answer one ping properly.
        let (mut second, _) = listener.accept().unwrap();
        let payload = read_frame(&mut second, DEFAULT_MAX_FRAME_BYTES, Duration::from_secs(5))
            .unwrap()
            .expect("reconnected client must resend the request");
        assert!(matches!(decode_request(&payload).unwrap(), Request::Ping));
        let frame = encode_response(&Response::Pong, DEFAULT_MAX_FRAME_BYTES).unwrap();
        write_frame(&mut second, &frame, Duration::from_secs(5)).unwrap();
    });

    let mut client =
        ServeClient::connect_with(addr, Duration::from_secs(5), DEFAULT_MAX_FRAME_BYTES)
            .unwrap()
            .with_reconnect(instant_policy(3));
    client.ping().expect("ping must succeed via reconnect");
    server.join().unwrap();
}

#[test]
fn exhausted_retries_surface_a_typed_error() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let (mut client, accepted) = {
        let client = ServeClient::connect_with(addr, Duration::from_millis(300), 1024)
            .unwrap()
            .with_reconnect(instant_policy(2));
        let (accepted, _) = listener.accept().unwrap();
        (client, accepted)
    };
    // Kill the server side entirely: the live connection dies and every
    // reconnect lands on a closed listener.
    drop(accepted);
    drop(listener);

    match client.ping() {
        Err(UStreamError::RetriesExhausted {
            attempts,
            last_error,
        }) => {
            assert_eq!(attempts, 3, "initial try + 2 reconnects");
            assert!(!last_error.is_empty());
        }
        other => panic!("expected RetriesExhausted, got {other:?}"),
    }
}

#[test]
fn without_a_policy_failures_pass_through_untyped() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut client = ServeClient::connect_with(addr, Duration::from_millis(300), 1024).unwrap();
    let (accepted, _) = listener.accept().unwrap();
    drop(accepted);
    drop(listener);
    assert!(
        matches!(
            client.ping(),
            Err(UStreamError::Io(_)) | Err(UStreamError::DeadlineExceeded { .. })
        ),
        "no policy means no RetriesExhausted wrapper"
    );
}

#[test]
fn non_idempotent_requests_never_retry() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let mut client = ServeClient::connect_with(addr, Duration::from_millis(300), 1024)
        .unwrap()
        .with_reconnect(instant_policy(3));
    let (accepted, _) = listener.accept().unwrap();
    drop(accepted);
    drop(listener);

    let point = WirePoint {
        values: vec![1.0],
        errors: vec![0.1],
        timestamp: 1,
    };
    match client.ingest("t", vec![point]) {
        Err(UStreamError::RetriesExhausted { .. }) => {
            panic!("ingest is not idempotent and must not be retried")
        }
        Err(_) => {}
        Ok(_) => panic!("ingest against a dead server cannot succeed"),
    }
}
