//! Property tests for the serving wire protocol.
//!
//! Two families:
//!
//! 1. **Round-trip**: every `Request`/`Response` variant, with randomised
//!    payloads, survives encode → frame → decode bit-for-bit.
//! 2. **Malformed-frame fuzz**: random bytes, truncations at every cut
//!    point, single-bit corruption and hostile length prefixes must come
//!    back as typed `FrameError`s — never a panic, never an allocation
//!    driven by an unvalidated length. CI runs this alongside the
//!    fault-injection (failpoints) step.

use proptest::collection::vec as pvec;
use proptest::prelude::*;
use ustream_serve::protocol::{
    decode_frame, decode_request, decode_response, encode_request, encode_response, ErrorCode,
    FrameError, Request, Response, TenantSpec, WireCluster, WirePoint, WireServerStats,
    WireTenantStats, DEFAULT_MAX_FRAME_BYTES, HEADER_LEN,
};

const MAX: usize = DEFAULT_MAX_FRAME_BYTES;

fn arb_name() -> impl Strategy<Value = String> {
    (0u64..10_000).prop_map(|n| format!("tenant-{n}"))
}

/// Wire points are *unvalidated* on purpose: mismatched lengths reach the
/// decoder and must round-trip (validation happens at admission, not in
/// the codec).
fn arb_point() -> impl Strategy<Value = WirePoint> {
    (
        pvec(-1e6..1e6f64, 1..5),
        pvec(0.0..100.0f64, 1..5),
        0u64..1_000_000,
    )
        .prop_map(|(values, errors, timestamp)| WirePoint {
            values,
            errors,
            timestamp,
        })
}

fn arb_spec() -> impl Strategy<Value = TenantSpec> {
    (
        (1usize..64, 1usize..8, 1u64..1000),
        (2u64..5, 1u32..8, 0u8..8),
        (0.1..1e4f64, 1usize..100, 1u64..1_000_000),
    )
        .prop_map(
            |((n_micro, dims, snapshot_every), (alpha, l, opts), (hl, max_snaps, max_bytes))| {
                TenantSpec {
                    n_micro,
                    dims,
                    snapshot_every,
                    alpha,
                    l,
                    decay_half_life: (opts & 1 != 0).then_some(hl),
                    max_snapshots: (opts & 2 != 0).then_some(max_snaps),
                    max_snapshot_bytes: (opts & 4 != 0).then_some(max_bytes),
                }
            },
        )
}

fn arb_request() -> impl Strategy<Value = Request> {
    (
        (0u8..10, arb_name(), arb_spec()),
        (pvec(arb_point(), 0..8), 0u64..10_000, 1usize..16),
        0u64..u64::MAX,
    )
        .prop_map(
            |((idx, name, spec), (points, horizon, k), seed)| match idx {
                0 => Request::Ping,
                1 => Request::CreateTenant { name, spec },
                2 => Request::RemoveTenant { name },
                3 => Request::Ingest { name, points },
                4 => Request::HorizonClusters { name, horizon },
                5 => Request::MacroCluster { name, k, seed },
                6 => Request::TenantStats { name },
                7 => Request::ServerStats,
                8 => Request::Checkpoint,
                _ => Request::Shutdown,
            },
        )
}

fn arb_cluster() -> impl Strategy<Value = WireCluster> {
    (0u64..1000, pvec(-1e6..1e6f64, 1..5), 0.0..1e9f64).prop_map(|(id, centroid, weight)| {
        WireCluster {
            id,
            centroid,
            weight,
        }
    })
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    (0u8..9).prop_map(|i| match i {
        0 => ErrorCode::NoSuchTenant,
        1 => ErrorCode::TenantExists,
        2 => ErrorCode::InvalidRequest,
        3 => ErrorCode::HorizonUnavailable,
        4 => ErrorCode::InvalidPoint,
        5 => ErrorCode::Overloaded,
        6 => ErrorCode::Shed,
        7 => ErrorCode::Deadline,
        _ => ErrorCode::Internal,
    })
}

fn arb_tenant_stats() -> impl Strategy<Value = WireTenantStats> {
    (
        (0u64..1_000_000, 0usize..1000, 0u64..1_000_000_000),
        (0u8..4, 0u64..1_000_000, 0u64..1_000_000),
        (0u64..1_000_000, 0u64..1_000_000, 0usize..100),
        0u64..1_000_000,
    )
        .prop_map(
            |(
                (points_processed, num_clusters, approx_memory_bytes),
                (stage, accepted, sampled_out),
                (shed, rejected, snapshots_retained),
                last_tick,
            )| WireTenantStats {
                points_processed,
                num_clusters,
                approx_memory_bytes,
                stage,
                accepted,
                sampled_out,
                shed,
                rejected,
                snapshots_retained,
                last_tick,
            },
        )
}

fn arb_response() -> impl Strategy<Value = Response> {
    (
        (0u8..11, pvec(arb_cluster(), 0..8), arb_tenant_stats()),
        (
            pvec(pvec(-1e6..1e6f64, 1..4), 0..6),
            pvec(0.0..1e9f64, 0..6),
            0.0..1e12f64,
        ),
        (
            (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000_000),
            arb_error_code(),
            arb_name(),
        ),
    )
        .prop_map(
            |((idx, clusters, tstats), (centroids, weights, ssq), ((a, b, c), code, message))| {
                match idx {
                    0 => Response::Pong,
                    1 => Response::Created,
                    2 => Response::Removed,
                    3 => Response::Ingested {
                        accepted: a,
                        sampled_out: b,
                        shed: c,
                        rejected: a.min(b),
                        stage: (c % 4) as u8,
                    },
                    4 => Response::Clusters {
                        clusters,
                        total_weight: ssq,
                    },
                    5 => Response::Macro {
                        centroids,
                        weights,
                        ssq,
                    },
                    6 => Response::TenantStats { stats: tstats },
                    7 => Response::ServerStats {
                        stats: WireServerStats {
                            tenants: a,
                            frames: b,
                            points: c,
                            jobs_rejected: a.min(c),
                            workers: (b % 64) as usize,
                            queue_capacity: (c % 4096) as usize,
                            kernel_backend: if a % 2 == 0 {
                                String::from("scalar")
                            } else {
                                String::from("avx2")
                            },
                        },
                    },
                    8 => Response::CheckpointWritten { bytes: a },
                    9 => Response::ShuttingDown,
                    _ => Response::Error { code, message },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request variant survives encode → frame → decode exactly.
    #[test]
    fn request_round_trip(req in arb_request()) {
        let frame = encode_request(&req, MAX).unwrap();
        let payload = decode_frame(&frame, MAX).unwrap();
        let back = decode_request(payload).unwrap();
        prop_assert_eq!(back, req);
    }

    /// Every response variant survives encode → frame → decode exactly —
    /// including the float payloads (centroids, weights, ssq), which must
    /// round-trip bit-for-bit through the JSON body.
    #[test]
    fn response_round_trip(resp in arb_response()) {
        let frame = encode_response(&resp, MAX).unwrap();
        let payload = decode_frame(&frame, MAX).unwrap();
        let back = decode_response(payload).unwrap();
        prop_assert_eq!(back, resp);
    }

    /// Arbitrary byte soup is a typed error (or, vanishingly unlikely, a
    /// valid frame) — never a panic.
    #[test]
    fn random_bytes_never_panic(bytes in pvec((0u16..256).prop_map(|b| b as u8), 0..200)) {
        let _ = decode_frame(&bytes, MAX);
    }

    /// A valid frame truncated anywhere strictly before its end is a
    /// `Truncated` error with honest byte counts.
    #[test]
    fn truncation_is_always_detected(req in arb_request(), frac in 0.0..1.0f64) {
        let frame = encode_request(&req, MAX).unwrap();
        let cut = ((frame.len() as f64) * frac) as usize;
        prop_assert!(cut < frame.len());
        match decode_frame(&frame[..cut], MAX) {
            Err(FrameError::Truncated { needed, have }) => {
                prop_assert!(have < needed);
            }
            Err(other) => prop_assert!(false, "expected Truncated, got {}", other),
            Ok(_) => prop_assert!(false, "truncated frame decoded"),
        }
    }

    /// Any single-bit flip anywhere in a frame is detected: in the header
    /// it breaks magic/version/length/checksum parsing, in the payload it
    /// breaks the fnv1a64 checksum. No flip can yield `Ok`.
    #[test]
    fn single_bit_corruption_is_always_detected(
        req in arb_request(),
        pos in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        let mut frame = encode_request(&req, MAX).unwrap();
        let idx = ((frame.len() as f64) * pos) as usize % frame.len();
        frame[idx] ^= 1 << bit;
        prop_assert!(decode_frame(&frame, MAX).is_err(), "flip at {} bit {} decoded", idx, bit);
    }

    /// A hostile length prefix beyond the frame bound is rejected before
    /// any allocation, regardless of what follows the header.
    #[test]
    fn hostile_length_prefix_is_rejected(declared in 0u64..u64::from(u32::MAX)) {
        let small_max = 4096usize;
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(b"USRV");
        header.push(1); // version
        header.push(0); // flags
        header.extend_from_slice(&(declared as u32).to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes()); // bogus checksum
        let res = decode_frame(&header, small_max);
        if declared as usize > small_max {
            match res {
                Err(FrameError::Oversized { declared: d, max }) => {
                    prop_assert_eq!(d, declared as usize);
                    prop_assert_eq!(max, small_max);
                }
                other => prop_assert!(false, "expected Oversized, got {:?}", other.err()),
            }
        } else {
            // In-bounds length with no payload bytes: truncated, checksum
            // failure, or (declared == 0 with matching checksum) a decode —
            // but never a panic.
            let _ = res;
        }
    }
}

/// Deterministic exhaustive sweep (not property-based): every cut point of
/// a real frame, byte-by-byte, is a typed error.
#[test]
fn exhaustive_cut_points_of_a_real_request() {
    let req = Request::CreateTenant {
        name: "edge".into(),
        spec: TenantSpec::new(16, 3),
    };
    let frame = encode_request(&req, MAX).unwrap();
    for cut in 0..frame.len() {
        assert!(
            decode_frame(&frame[..cut], MAX).is_err(),
            "cut at {cut} decoded"
        );
    }
    assert!(decode_frame(&frame, MAX).is_ok());
}
