//! The serving front-end: acceptor, bounded worker pool, and per-tenant
//! admission governor.
//!
//! Topology (thread-per-core with MPMC handoff — the vendored crossbeam
//! channel is cloneable on both ends, so every worker pulls from one
//! bounded queue):
//!
//! ```text
//!  conn threads ──Job{request, reply}──▶ bounded MPMC ──▶ worker pool
//!       ▲                                                   │
//!       └────────────── reply channel (cap 1) ◀─────────────┘
//!  governor thread: polls every tenant's rate vs. quota, walks ladders
//! ```
//!
//! Each connection thread reads one frame at a time and waits for the
//! reply before reading the next, so responses on a connection are always
//! in request order. The queue bound is the server's backpressure: when
//! `try_send` reports full, the connection answers `Overloaded`
//! immediately instead of letting a hot client grow an unbounded backlog.

use crate::io::{read_frame, write_frame};
use crate::protocol::{
    decode_request, encode_response, ErrorCode, Request, Response, WireServerStats,
};
use crate::registry::{RegistryError, TenantRegistry};
use crate::tenant::AdmissionPolicy;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use ustream_common::{Result, UStreamError};

/// Tunables for one server instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing requests (default 4).
    pub workers: usize,
    /// Bound of the request queue; a full queue answers `Overloaded`
    /// (default 256).
    pub queue_capacity: usize,
    /// Lock shards in the tenant registry (default 16).
    pub buckets: usize,
    /// Largest accepted/emitted frame (default 8 MiB).
    pub max_frame_bytes: usize,
    /// Socket read timeout; doubles as the idle poll so connection
    /// threads notice a shutdown within this bound (default 500 ms).
    pub read_deadline_ms: u64,
    /// Socket write timeout for responses (default 5 000 ms).
    pub write_deadline_ms: u64,
    /// How long a connection waits for a worker's reply before answering
    /// `deadline` (default 30 000 ms).
    pub reply_deadline_ms: u64,
    /// Governor poll interval (default 100 ms).
    pub governor_poll_ms: u64,
    /// Per-tenant admission policy (quota + ladder).
    pub admission: AdmissionPolicy,
    /// Where `Request::Checkpoint` and the final drain checkpoint land;
    /// `None` disables persistence.
    pub checkpoint_path: Option<PathBuf>,
    /// Restore the whole tenant map from this `USRVMAP` checkpoint at
    /// boot; `None` starts empty.
    pub restore_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_capacity: 256,
            buckets: 16,
            max_frame_bytes: crate::protocol::DEFAULT_MAX_FRAME_BYTES,
            read_deadline_ms: 500,
            write_deadline_ms: 5_000,
            reply_deadline_ms: 30_000,
            governor_poll_ms: 100,
            admission: AdmissionPolicy::default(),
            checkpoint_path: None,
            restore_path: None,
        }
    }
}

impl ServeConfig {
    /// First invalid-field description, if any.
    fn problem(&self) -> Option<String> {
        if self.workers == 0 {
            return Some("workers must be positive".into());
        }
        if self.queue_capacity == 0 {
            return Some("queue_capacity must be positive".into());
        }
        if self.read_deadline_ms == 0 || self.write_deadline_ms == 0 || self.reply_deadline_ms == 0
        {
            return Some("deadlines must be positive".into());
        }
        if self.governor_poll_ms == 0 {
            return Some("governor_poll_ms must be positive".into());
        }
        None
    }
}

/// One queued request plus the channel its answer goes back on.
struct Job {
    req: Request,
    reply: Sender<Response>,
}

/// State shared by every thread of one server instance.
struct ServerState {
    config: ServeConfig,
    registry: TenantRegistry,
    /// Set once by `shutdown_drain` (or a wire `Shutdown`); every loop
    /// polls it.
    stop: AtomicBool,
    /// A client asked for shutdown over the wire; the host (CLI) decides
    /// when to act on it.
    shutdown_requested: AtomicBool,
    /// Live connection threads.
    conns: AtomicUsize,
    /// Jobs handed to the pool but not yet answered.
    inflight: AtomicUsize,
    /// Total frames served.
    frames: AtomicU64,
    /// Total points offered to admission across all tenants.
    points: AtomicU64,
    /// Jobs refused because the queue was full.
    jobs_rejected: AtomicU64,
}

impl ServerState {
    fn stopping(&self) -> bool {
        // relaxed-ok: stop is a level flag polled in loops; no ordering
        // dependency on other state.
        self.stop.load(Ordering::Relaxed)
    }

    fn stats(&self) -> WireServerStats {
        WireServerStats {
            tenants: self.registry.len() as u64,
            // relaxed-ok: monotone statistics counters, read for reporting.
            frames: self.frames.load(Ordering::Relaxed),
            // relaxed-ok: monotone statistics counters, read for reporting.
            points: self.points.load(Ordering::Relaxed),
            // relaxed-ok: monotone statistics counters, read for reporting.
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            workers: self.config.workers,
            queue_capacity: self.config.queue_capacity,
            kernel_backend: umicro::kernel::simd::active().name().to_string(),
        }
    }

    /// Executes one request against the registry (worker-thread context).
    fn execute(&self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::CreateTenant { name, spec } => match self.registry.create(&name, spec) {
                Ok(()) => Response::Created,
                Err(e) => registry_error(e),
            },
            Request::RemoveTenant { name } => {
                if self.registry.remove(&name) {
                    Response::Removed
                } else {
                    registry_error(RegistryError::NoSuchTenant)
                }
            }
            Request::Ingest { name, points } => {
                let offered = points.len() as u64;
                self.points.fetch_add(offered, Ordering::Relaxed); // relaxed-ok: monotone statistics counter
                let policy = *self.registry.policy();
                match self
                    .registry
                    .with_tenant(&name, |t| t.ingest(points, &policy))
                {
                    Ok(out) => Response::Ingested {
                        accepted: out.accepted,
                        sampled_out: out.sampled_out,
                        shed: out.shed,
                        rejected: out.rejected,
                        stage: out.stage.as_u8(),
                    },
                    Err(e) => registry_error(e),
                }
            }
            Request::HorizonClusters { name, horizon } => {
                match self
                    .registry
                    .with_tenant(&name, |t| t.horizon_clusters(horizon))
                {
                    Ok(Ok((clusters, total_weight))) => Response::Clusters {
                        clusters,
                        total_weight,
                    },
                    Ok(Err(e)) => horizon_error(e),
                    Err(e) => registry_error(e),
                }
            }
            Request::MacroCluster { name, k, seed } => {
                if k == 0 {
                    return Response::Error {
                        code: ErrorCode::InvalidRequest,
                        message: "k must be positive".into(),
                    };
                }
                match self
                    .registry
                    .with_tenant(&name, |t| t.macro_cluster(k, seed))
                {
                    Ok(mac) => Response::Macro {
                        centroids: mac.centroids,
                        weights: mac.weights,
                        ssq: mac.ssq,
                    },
                    Err(e) => registry_error(e),
                }
            }
            Request::TenantStats { name } => {
                match self.registry.with_tenant(&name, |t| t.stats()) {
                    Ok(stats) => Response::TenantStats { stats },
                    Err(e) => registry_error(e),
                }
            }
            Request::ServerStats => Response::ServerStats {
                stats: self.stats(),
            },
            Request::Checkpoint => match &self.config.checkpoint_path {
                Some(path) => match self.registry.checkpoint(path) {
                    Ok(bytes) => Response::CheckpointWritten { bytes },
                    Err(e) => Response::Error {
                        code: ErrorCode::Internal,
                        message: format!("checkpoint failed: {e}"),
                    },
                },
                None => Response::Error {
                    code: ErrorCode::InvalidRequest,
                    message: "server has no checkpoint path configured".into(),
                },
            },
            Request::Shutdown => {
                // relaxed-ok: level flag; the host polls it.
                self.shutdown_requested.store(true, Ordering::Relaxed);
                Response::ShuttingDown
            }
        }
    }
}

fn registry_error(e: RegistryError) -> Response {
    let (code, message) = match &e {
        RegistryError::NoSuchTenant => (ErrorCode::NoSuchTenant, e.to_string()),
        RegistryError::TenantExists => (ErrorCode::TenantExists, e.to_string()),
        RegistryError::Invalid(cause) => (ErrorCode::InvalidRequest, cause.to_string()),
    };
    Response::Error { code, message }
}

fn horizon_error(e: UStreamError) -> Response {
    let code = match e {
        UStreamError::HorizonUnavailable { .. } => ErrorCode::HorizonUnavailable,
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// A running server; dropping the handle leaves the threads serving, so
/// call [`ServeHandle::shutdown_drain`] for a clean stop.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    job_tx: Sender<Job>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    governor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and spins up the
    /// acceptor, worker pool and governor.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServeConfig) -> Result<Server> {
        if let Some(problem) = config.problem() {
            return Err(UStreamError::InvalidConfig(problem));
        }
        let registry = match &config.restore_path {
            Some(path) => TenantRegistry::restore(path, config.buckets, config.admission)?,
            None => TenantRegistry::new(config.buckets, config.admission)?,
        };
        let listener = TcpListener::bind(addr).map_err(UStreamError::Io)?;
        let local = listener.local_addr().map_err(UStreamError::Io)?;
        listener.set_nonblocking(true).map_err(UStreamError::Io)?;

        let (job_tx, job_rx) = bounded::<Job>(config.queue_capacity);
        let state = Arc::new(ServerState {
            config,
            registry,
            stop: AtomicBool::new(false),
            shutdown_requested: AtomicBool::new(false),
            conns: AtomicUsize::new(0),
            inflight: AtomicUsize::new(0),
            frames: AtomicU64::new(0),
            points: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
        });

        let mut workers = Vec::with_capacity(state.config.workers);
        for i in 0..state.config.workers {
            let rx = job_rx.clone();
            let st = Arc::clone(&state);
            let handle = std::thread::Builder::new()
                .name(format!("usrv-worker-{i}"))
                .spawn(move || run_worker(&rx, &st))
                .map_err(UStreamError::Io)?;
            workers.push(handle);
        }

        let governor = {
            let st = Arc::clone(&state);
            std::thread::Builder::new()
                .name("usrv-governor".into())
                .spawn(move || run_governor(&st))
                .map_err(UStreamError::Io)?
        };

        let acceptor = {
            let st = Arc::clone(&state);
            let tx = job_tx.clone();
            std::thread::Builder::new()
                .name("usrv-acceptor".into())
                .spawn(move || run_acceptor(&listener, &st, &tx))
                .map_err(UStreamError::Io)?
        };

        Ok(Server {
            state,
            addr: local,
            job_tx,
            acceptor: Some(acceptor),
            workers,
            governor: Some(governor),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Aggregate server statistics.
    pub fn stats(&self) -> WireServerStats {
        self.state.stats()
    }

    /// Whether a client sent `Request::Shutdown` over the wire.
    pub fn shutdown_requested(&self) -> bool {
        // relaxed-ok: level flag set once, polled by the host loop.
        self.state.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Direct registry access for hosts embedding the server (tests, the
    /// bench harness, the CLI's pre-seeding path).
    pub fn registry(&self) -> &TenantRegistry {
        &self.state.registry
    }

    /// Writes an atomic whole-tenant-map checkpoint now.
    pub fn checkpoint(&self) -> Result<u64> {
        match &self.state.config.checkpoint_path {
            Some(path) => self.state.registry.checkpoint(path),
            None => Err(UStreamError::InvalidConfig(
                "server has no checkpoint path configured".into(),
            )),
        }
    }

    /// Stops accepting, drains queued work, joins every thread, flushes a
    /// final snapshot per tenant, and writes the final checkpoint (when a
    /// path is configured).
    ///
    /// Fails with [`UStreamError::DeadlineExceeded`] when live connections
    /// or queued jobs outlast `deadline`; the stop flag stays set, so a
    /// retry with a longer deadline finishes the job.
    pub fn shutdown_drain(mut self, deadline: Duration) -> Result<WireServerStats> {
        let started = Instant::now();
        // relaxed-ok: level flag; every loop polls it within one timeout.
        self.state.stop.store(true, Ordering::Relaxed);

        // Wait out live connections and in-flight jobs.
        loop {
            // relaxed-ok: gauge counters polled in a loop.
            let conns = self.state.conns.load(Ordering::Relaxed);
            // relaxed-ok: gauge counters polled in a loop.
            let inflight = self.state.inflight.load(Ordering::Relaxed);
            if conns == 0 && inflight == 0 {
                break;
            }
            if started.elapsed() >= deadline {
                return Err(UStreamError::DeadlineExceeded {
                    waited_ms: started.elapsed().as_millis() as u64,
                });
            }
            // lint:allow(no-sleep): drain poll loop, bounded by the caller's deadline
            std::thread::sleep(Duration::from_millis(5));
        }

        drop(self.job_tx);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.governor.take() {
            let _ = h.join();
        }

        self.state.registry.flush_all();
        if let Some(path) = &self.state.config.checkpoint_path {
            self.state.registry.checkpoint(path)?;
        }
        if started.elapsed() >= deadline {
            return Err(UStreamError::DeadlineExceeded {
                waited_ms: started.elapsed().as_millis() as u64,
            });
        }
        Ok(self.state.stats())
    }
}

/// Accept loop: non-blocking accept with a short sleep, so the stop flag
/// is honoured within milliseconds and no thread blocks in `accept`.
fn run_acceptor(listener: &TcpListener, state: &Arc<ServerState>, job_tx: &Sender<Job>) {
    while !state.stopping() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // relaxed-ok: gauge counter; drain re-polls until zero.
                state.conns.fetch_add(1, Ordering::Relaxed);
                let st = Arc::clone(state);
                let tx = job_tx.clone();
                let spawned =
                    std::thread::Builder::new()
                        .name("usrv-conn".into())
                        .spawn(move || {
                            run_conn(stream, &st, &tx);
                            // relaxed-ok: gauge counter; drain re-polls until zero.
                            st.conns.fetch_sub(1, Ordering::Relaxed);
                        });
                if spawned.is_err() {
                    // relaxed-ok: gauge counter; undo the optimistic add.
                    state.conns.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // lint:allow(no-sleep): non-blocking accept poll, keeps shutdown latency ~5 ms
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE); back off briefly.
                // lint:allow(no-sleep): accept-error backoff.
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

/// Per-connection loop: read frame → enqueue job → await reply → write
/// frame. Strictly sequential per connection, so response order matches
/// request order.
fn run_conn(mut stream: TcpStream, state: &Arc<ServerState>, job_tx: &Sender<Job>) {
    let cfg = &state.config;
    let read_deadline = Duration::from_millis(cfg.read_deadline_ms);
    let write_deadline = Duration::from_millis(cfg.write_deadline_ms);
    let reply_deadline = Duration::from_millis(cfg.reply_deadline_ms);
    loop {
        let payload = match read_frame(&mut stream, cfg.max_frame_bytes, read_deadline) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean close at a frame boundary
            Err(UStreamError::DeadlineExceeded { .. }) => {
                // Idle connection: keep listening unless the server is
                // shutting down.
                if state.stopping() {
                    return;
                }
                continue;
            }
            Err(_) => return, // truncated / corrupt / dead socket
        };
        // relaxed-ok: monotone statistics counter.
        state.frames.fetch_add(1, Ordering::Relaxed);

        let response = match decode_request(&payload) {
            Ok(req) => dispatch(req, state, job_tx, reply_deadline),
            Err(e) => Response::Error {
                code: ErrorCode::InvalidRequest,
                message: e.to_string(),
            },
        };

        if !respond(&mut stream, &response, cfg.max_frame_bytes, write_deadline) {
            return;
        }
    }
}

/// Hands a request to the worker pool and waits for the answer.
fn dispatch(
    req: Request,
    state: &Arc<ServerState>,
    job_tx: &Sender<Job>,
    reply_deadline: Duration,
) -> Response {
    let (reply_tx, reply_rx) = bounded::<Response>(1);
    match job_tx.try_send(Job {
        req,
        reply: reply_tx,
    }) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            // relaxed-ok: monotone statistics counter.
            state.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            return Response::Error {
                code: ErrorCode::Overloaded,
                message: "request queue is full; retry with backoff".into(),
            };
        }
        Err(TrySendError::Disconnected(_)) => {
            return Response::Error {
                code: ErrorCode::Internal,
                message: "worker pool is gone".into(),
            };
        }
    }
    // relaxed-ok: gauge counter; the worker decrements after replying.
    state.inflight.fetch_add(1, Ordering::Relaxed);
    match reply_rx.recv_timeout(reply_deadline) {
        Ok(resp) => resp,
        Err(_) => Response::Error {
            code: ErrorCode::Deadline,
            message: format!("no worker reply within {} ms", reply_deadline.as_millis()),
        },
    }
}

/// Encodes and writes one response frame; `false` means the connection is
/// beyond saving.
fn respond(stream: &mut TcpStream, response: &Response, max: usize, deadline: Duration) -> bool {
    let frame = match encode_response(response, max) {
        Ok(f) => f,
        Err(_) => {
            // Response larger than the frame bound (a huge cluster list):
            // degrade to a typed error the client can act on.
            let fallback = Response::Error {
                code: ErrorCode::Internal,
                message: format!("response exceeds the {max}-byte frame bound"),
            };
            match encode_response(&fallback, max) {
                Ok(f) => f,
                Err(_) => return false,
            }
        }
    };
    write_frame(stream, &frame, deadline).is_ok()
}

/// Worker loop: execute jobs until the queue closes and the stop flag is
/// up.
fn run_worker(job_rx: &Receiver<Job>, state: &Arc<ServerState>) {
    loop {
        match job_rx.recv_timeout(Duration::from_millis(100)) {
            Ok(job) => {
                let response = state.execute(job.req);
                // A connection that gave up waiting dropped its receiver;
                // that is its problem, not ours.
                let _ = job.reply.send(response);
                // relaxed-ok: gauge counter paired with dispatch's add.
                state.inflight.fetch_sub(1, Ordering::Relaxed);
            }
            Err(RecvTimeoutError::Timeout) => {
                if state.stopping() {
                    return;
                }
            }
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Governor loop: every poll interval, measure each tenant's ingest rate
/// against its quota and walk the degradation ladder.
fn run_governor(state: &Arc<ServerState>) {
    let poll = Duration::from_millis(state.config.governor_poll_ms);
    let mut last = Instant::now();
    while !state.stopping() {
        // lint:allow(no-sleep): governor cadence, a config knob; stop flag re-checked every tick
        std::thread::sleep(poll);
        let now = Instant::now();
        let elapsed = now.duration_since(last).as_secs_f64();
        last = now;
        let _transitions = state.registry.governor_sweep(elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ServeClient;
    use crate::protocol::{TenantSpec, WirePoint};

    fn test_config() -> ServeConfig {
        ServeConfig {
            workers: 2,
            queue_capacity: 64,
            buckets: 4,
            read_deadline_ms: 100,
            ..ServeConfig::default()
        }
    }

    fn boot() -> (Server, ServeClient) {
        let server = Server::bind("127.0.0.1:0", test_config()).unwrap();
        let client = ServeClient::connect(server.addr()).unwrap();
        (server, client)
    }

    fn points(dims: usize, from: u64, n: u64) -> Vec<WirePoint> {
        (from..from + n)
            .map(|t| WirePoint {
                values: (0..dims).map(|d| (t % 10) as f64 + d as f64).collect(),
                errors: vec![0.1; dims],
                timestamp: t,
            })
            .collect()
    }

    #[test]
    fn full_session_over_the_wire() {
        let (server, mut client) = boot();
        assert!(matches!(
            client.request(&Request::Ping).unwrap(),
            Response::Pong
        ));

        let spec = TenantSpec {
            snapshot_every: 32,
            ..TenantSpec::new(8, 2)
        };
        assert!(matches!(
            client
                .request(&Request::CreateTenant {
                    name: "acme".into(),
                    spec: spec.clone(),
                })
                .unwrap(),
            Response::Created
        ));
        match client
            .request(&Request::CreateTenant {
                name: "acme".into(),
                spec,
            })
            .unwrap()
        {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::TenantExists),
            other => panic!("expected TenantExists, got {other:?}"),
        }

        match client
            .request(&Request::Ingest {
                name: "acme".into(),
                points: points(2, 1, 500),
            })
            .unwrap()
        {
            Response::Ingested { accepted, .. } => assert_eq!(accepted, 500),
            other => panic!("expected Ingested, got {other:?}"),
        }

        match client
            .request(&Request::HorizonClusters {
                name: "acme".into(),
                horizon: 100,
            })
            .unwrap()
        {
            Response::Clusters {
                clusters,
                total_weight,
            } => {
                assert!(!clusters.is_empty());
                assert!(total_weight > 0.0);
            }
            other => panic!("expected Clusters, got {other:?}"),
        }

        match client
            .request(&Request::MacroCluster {
                name: "acme".into(),
                k: 3,
                seed: 42,
            })
            .unwrap()
        {
            Response::Macro {
                centroids, weights, ..
            } => {
                assert_eq!(centroids.len(), 3);
                assert_eq!(weights.len(), 3);
            }
            other => panic!("expected Macro, got {other:?}"),
        }

        match client
            .request(&Request::TenantStats {
                name: "acme".into(),
            })
            .unwrap()
        {
            Response::TenantStats { stats } => {
                assert_eq!(stats.points_processed, 500);
                assert!(stats.num_clusters > 0);
            }
            other => panic!("expected TenantStats, got {other:?}"),
        }

        match client.request(&Request::ServerStats).unwrap() {
            Response::ServerStats { stats } => {
                assert_eq!(stats.tenants, 1);
                assert!(stats.frames >= 6);
            }
            other => panic!("expected ServerStats, got {other:?}"),
        }

        drop(client);
        let stats = server.shutdown_drain(Duration::from_secs(10)).unwrap();
        assert_eq!(stats.points, 500);
    }

    #[test]
    fn unknown_tenant_and_bad_requests_get_typed_errors() {
        let (server, mut client) = boot();
        match client
            .request(&Request::Ingest {
                name: "ghost".into(),
                points: points(2, 1, 3),
            })
            .unwrap()
        {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoSuchTenant),
            other => panic!("expected NoSuchTenant, got {other:?}"),
        }
        match client
            .request(&Request::MacroCluster {
                name: "ghost".into(),
                k: 0,
                seed: 1,
            })
            .unwrap()
        {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::InvalidRequest),
            other => panic!("expected InvalidRequest, got {other:?}"),
        }
        drop(client);
        server.shutdown_drain(Duration::from_secs(10)).unwrap();
    }

    #[test]
    fn removing_one_tenant_mid_stream_leaves_the_others_untouched() {
        let (server, mut client) = boot();
        for name in ["keep-a", "victim", "keep-b"] {
            client
                .create_tenant(
                    name,
                    TenantSpec {
                        snapshot_every: 32,
                        ..TenantSpec::new(8, 2)
                    },
                )
                .unwrap();
        }
        // Interleave batches across all three, kill "victim" mid-stream,
        // keep streaming to the survivors.
        for round in 0u64..6 {
            for name in ["keep-a", "victim", "keep-b"] {
                if round >= 3 && name == "victim" {
                    continue;
                }
                let resp = client
                    .request(&Request::Ingest {
                        name: name.into(),
                        points: points(2, round * 100 + 1, 100),
                    })
                    .unwrap();
                if round == 3 && name == "keep-a" {
                    // Kill the victim between survivor batches.
                    assert!(matches!(
                        client
                            .request(&Request::RemoveTenant {
                                name: "victim".into()
                            })
                            .unwrap(),
                        Response::Removed
                    ));
                }
                match resp {
                    Response::Ingested { accepted, .. } => assert_eq!(accepted, 100),
                    other => panic!("expected Ingested, got {other:?}"),
                }
            }
        }
        // Survivors answer every query with all six rounds of data.
        for name in ["keep-a", "keep-b"] {
            match client
                .request(&Request::TenantStats { name: name.into() })
                .unwrap()
            {
                Response::TenantStats { stats } => {
                    assert_eq!(stats.points_processed, 600, "{name} lost data");
                }
                other => panic!("expected TenantStats, got {other:?}"),
            }
            match client
                .request(&Request::MacroCluster {
                    name: name.into(),
                    k: 2,
                    seed: 7,
                })
                .unwrap()
            {
                Response::Macro { centroids, .. } => assert_eq!(centroids.len(), 2),
                other => panic!("expected Macro, got {other:?}"),
            }
        }
        // The victim is really gone.
        match client
            .request(&Request::TenantStats {
                name: "victim".into(),
            })
            .unwrap()
        {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NoSuchTenant),
            other => panic!("expected NoSuchTenant, got {other:?}"),
        }
        drop(client);
        server.shutdown_drain(Duration::from_secs(10)).unwrap();
    }

    #[test]
    fn wire_checkpoint_survives_a_server_restart() {
        let mut path = std::env::temp_dir();
        path.push(format!("usrv_restart_{}.ckpt", std::process::id()));
        let config = ServeConfig {
            checkpoint_path: Some(path.clone()),
            ..test_config()
        };

        let server = Server::bind("127.0.0.1:0", config.clone()).unwrap();
        let mut client = ServeClient::connect(server.addr()).unwrap();
        client
            .create_tenant(
                "durable",
                TenantSpec {
                    snapshot_every: 32,
                    ..TenantSpec::new(8, 2)
                },
            )
            .unwrap();
        client
            .request(&Request::Ingest {
                name: "durable".into(),
                points: points(2, 1, 400),
            })
            .unwrap();
        match client.request(&Request::Checkpoint).unwrap() {
            Response::CheckpointWritten { bytes } => assert!(bytes > 0),
            other => panic!("expected CheckpointWritten, got {other:?}"),
        }
        drop(client);
        server.shutdown_drain(Duration::from_secs(10)).unwrap();

        // A fresh server restores the whole tenant map from the file.
        let registry =
            crate::registry::TenantRegistry::restore(&path, config.buckets, config.admission)
                .unwrap();
        let stats = registry.with_tenant("durable", |t| t.stats()).unwrap();
        assert_eq!(stats.points_processed, 400);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shutdown_request_over_the_wire_sets_the_host_flag() {
        let (server, mut client) = boot();
        assert!(!server.shutdown_requested());
        assert!(matches!(
            client.request(&Request::Shutdown).unwrap(),
            Response::ShuttingDown
        ));
        assert!(server.shutdown_requested());
        drop(client);
        server.shutdown_drain(Duration::from_secs(10)).unwrap();
    }

    #[test]
    fn drain_deadline_miss_is_typed() {
        let server = Server::bind("127.0.0.1:0", test_config()).unwrap();
        // Hold a raw TCP connection open (never sends a frame, never
        // closes): the conn thread stays alive past a zero-ish deadline.
        let _hold = std::net::TcpStream::connect(server.addr()).unwrap();
        // Give the acceptor time to register the connection.
        std::thread::sleep(Duration::from_millis(200));
        let err = server.shutdown_drain(Duration::from_millis(1)).unwrap_err();
        assert!(
            matches!(err, UStreamError::DeadlineExceeded { .. }),
            "expected DeadlineExceeded, got {err}"
        );
    }

    #[test]
    fn invalid_config_is_rejected_up_front() {
        let bad = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        assert!(Server::bind("127.0.0.1:0", bad).is_err());
        let bad = ServeConfig {
            admission: AdmissionPolicy {
                quota_points_per_sec: 0,
                ..AdmissionPolicy::default()
            },
            ..ServeConfig::default()
        };
        assert!(Server::bind("127.0.0.1:0", bad).is_err());
    }
}
