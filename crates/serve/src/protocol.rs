//! The wire protocol: length-prefixed, checksummed frames carrying JSON
//! request/response payloads.
//!
//! ## Frame layout
//!
//! Every message on the wire is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"USRV"
//! 4       1     version (this build speaks 1)
//! 5       1     flags (reserved, must be 0)
//! 6       4     payload length, u32 little-endian
//! 10      8     FNV-1a 64 checksum of the payload, u64 little-endian
//! 18      n     payload: one JSON-encoded Request or Response
//! ```
//!
//! The checksum is the same [`fnv1a64`] the engine's checkpoint file format
//! uses — corruption *detection*, not authentication. The length field is
//! bounded by the receiver's configured maximum before any allocation
//! happens, so a hostile or corrupt length prefix cannot OOM the server.
//! Every malformed-frame condition decodes to a typed [`FrameError`];
//! nothing in this module panics on wire input.

use serde::{Deserialize, Serialize};
use ustream_engine::checkpoint::fnv1a64;

/// Magic bytes opening every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"USRV";
/// Protocol version written and accepted by this build.
pub const PROTOCOL_VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 18;
/// Default ceiling on payload bytes; configurable per server/client.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Everything that can be wrong with a frame, as data — the connection
/// loop maps these to error responses or disconnects without panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The version byte names a protocol this build does not speak.
    BadVersion(u8),
    /// The flags byte carried bits this build does not understand.
    BadFlags(u8),
    /// The declared payload length exceeds the configured ceiling.
    Oversized {
        /// Length the header declared.
        declared: usize,
        /// The receiver's ceiling.
        max: usize,
    },
    /// Fewer bytes were available than the header (or its declared
    /// payload) requires.
    Truncated {
        /// Bytes needed to finish the header or payload.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The payload checksum did not match the header.
    Checksum {
        /// Checksum the header declared.
        declared: u64,
        /// Checksum of the payload as received.
        actual: u64,
    },
    /// The payload was not valid JSON for the expected message type.
    Payload(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})")
            }
            FrameError::BadFlags(b) => write!(f, "unsupported frame flags {b:#04x}"),
            FrameError::Oversized { declared, max } => {
                write!(f, "frame declares {declared} payload bytes, ceiling is {max}")
            }
            FrameError::Truncated { needed, have } => {
                write!(f, "frame truncated: need {needed} bytes, have {have}")
            }
            FrameError::Checksum { declared, actual } => write!(
                f,
                "payload checksum mismatch: header says {declared:016x}, payload hashes to {actual:016x}"
            ),
            FrameError::Payload(msg) => write!(f, "malformed payload: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for ustream_common::UStreamError {
    fn from(e: FrameError) -> Self {
        ustream_common::UStreamError::Serde(format!("wire frame: {e}"))
    }
}

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Declared payload length in bytes (already bounded by the ceiling).
    pub payload_len: usize,
    /// Declared FNV-1a 64 checksum of the payload.
    pub checksum: u64,
}

/// Parses and validates the fixed-size header; `max` bounds the declared
/// payload length before the caller allocates anything.
pub fn parse_header(bytes: &[u8], max: usize) -> Result<FrameHeader, FrameError> {
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::Truncated {
            needed: HEADER_LEN,
            have: bytes.len(),
        });
    }
    let mut magic = [0u8; 4];
    magic.copy_from_slice(&bytes[..4]);
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    if bytes[4] != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(bytes[4]));
    }
    if bytes[5] != 0 {
        return Err(FrameError::BadFlags(bytes[5]));
    }
    let mut len = [0u8; 4];
    len.copy_from_slice(&bytes[6..10]);
    let payload_len = u32::from_le_bytes(len) as usize;
    if payload_len > max {
        return Err(FrameError::Oversized {
            declared: payload_len,
            max,
        });
    }
    let mut sum = [0u8; 8];
    sum.copy_from_slice(&bytes[10..18]);
    Ok(FrameHeader {
        payload_len,
        checksum: u64::from_le_bytes(sum),
    })
}

/// Verifies a received payload against its parsed header.
pub fn verify_payload(header: &FrameHeader, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() != header.payload_len {
        return Err(FrameError::Truncated {
            needed: header.payload_len,
            have: payload.len(),
        });
    }
    let actual = fnv1a64(payload);
    if actual != header.checksum {
        return Err(FrameError::Checksum {
            declared: header.checksum,
            actual,
        });
    }
    Ok(())
}

/// Wraps a payload into one complete frame (header + payload bytes).
pub fn encode_frame(payload: &[u8], max: usize) -> Result<Vec<u8>, FrameError> {
    if payload.len() > max || payload.len() > u32::MAX as usize {
        return Err(FrameError::Oversized {
            declared: payload.len(),
            max: max.min(u32::MAX as usize),
        });
    }
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&FRAME_MAGIC);
    out.push(PROTOCOL_VERSION);
    out.push(0); // flags
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Decodes one complete frame from a contiguous buffer, returning the
/// verified payload bytes. The single entry point the fuzz tests hammer:
/// any byte soup must come back as a [`FrameError`], never a panic.
pub fn decode_frame(bytes: &[u8], max: usize) -> Result<&[u8], FrameError> {
    let header = parse_header(bytes, max)?;
    let payload = &bytes[HEADER_LEN..];
    verify_payload(&header, payload)?;
    Ok(payload)
}

/// One uncertain record on the wire: instantiated values plus the
/// per-dimension error standard deviations `ψ(X)` and the arrival tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WirePoint {
    /// The observed attribute values.
    pub values: Vec<f64>,
    /// The error standard deviations; must be finite and non-negative.
    pub errors: Vec<f64>,
    /// Arrival tick on the tenant's stream clock.
    pub timestamp: u64,
}

impl WirePoint {
    /// Validates and converts into an [`ustream_common::UncertainPoint`].
    ///
    /// The constructor over there *panics* on malformed error vectors —
    /// appropriate for in-process generator bugs, fatal for a network
    /// server — so every check happens here first and malformed records
    /// come back as `Err` strings the server maps to an error response.
    pub fn into_point(self) -> Result<ustream_common::UncertainPoint, String> {
        if self.values.is_empty() {
            return Err("point has no dimensions".into());
        }
        if self.values.len() != self.errors.len() {
            return Err(format!(
                "value/error dimensionality mismatch: {} vs {}",
                self.values.len(),
                self.errors.len()
            ));
        }
        if !self.values.iter().all(|v| v.is_finite()) {
            return Err("non-finite attribute value".into());
        }
        if !self.errors.iter().all(|e| e.is_finite() && *e >= 0.0) {
            return Err("error standard deviations must be finite and non-negative".into());
        }
        Ok(ustream_common::UncertainPoint::new(
            self.values,
            self.errors,
            self.timestamp,
            None,
        ))
    }
}

/// Per-tenant clustering configuration supplied at tenant creation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Micro-cluster budget for this tenant's clusterer.
    pub n_micro: usize,
    /// Dimensionality every ingested point must match.
    pub dims: usize,
    /// Half-life for the decayed UMicro variant; `None` runs undecayed.
    pub decay_half_life: Option<f64>,
    /// Ticks between pyramidal snapshots of the tenant's cluster set.
    pub snapshot_every: u64,
    /// Pyramid base α.
    pub alpha: u64,
    /// Pyramid order count l.
    pub l: u32,
    /// Snapshot-count ceiling for the tenant's pyramid (budget).
    pub max_snapshots: Option<usize>,
    /// Snapshot-byte ceiling for the tenant's pyramid (budget).
    pub max_snapshot_bytes: Option<u64>,
}

impl TenantSpec {
    /// A spec with the workspace's default snapshot geometry (α = 2,
    /// l = 6, snapshot every 256 ticks, no budget, undecayed).
    pub fn new(n_micro: usize, dims: usize) -> Self {
        Self {
            n_micro,
            dims,
            decay_half_life: None,
            snapshot_every: 256,
            alpha: 2,
            l: 6,
            max_snapshots: None,
            max_snapshot_bytes: None,
        }
    }
}

/// Every operation a client can ask of the server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`].
    Ping,
    /// Creates a tenant with its own clusterer and pyramid.
    CreateTenant {
        /// Tenant name (the multiplexing key; must be unique).
        name: String,
        /// Clustering configuration for the tenant.
        spec: TenantSpec,
    },
    /// Removes a tenant and drops its state.
    RemoveTenant {
        /// Tenant to remove.
        name: String,
    },
    /// Appends a batch of records to a tenant's stream.
    Ingest {
        /// Target tenant.
        name: String,
        /// Records in arrival order.
        points: Vec<WirePoint>,
    },
    /// Micro-clusters of the trailing window `(now − horizon, now]`.
    HorizonClusters {
        /// Target tenant.
        name: String,
        /// Window length in stream ticks.
        horizon: u64,
    },
    /// On-demand offline macro-clustering of the live micro-clusters.
    MacroCluster {
        /// Target tenant.
        name: String,
        /// Number of macro-clusters.
        k: usize,
        /// k-means seed, for reproducible answers.
        seed: u64,
    },
    /// Per-tenant health and accounting.
    TenantStats {
        /// Target tenant.
        name: String,
    },
    /// Whole-server accounting.
    ServerStats,
    /// Writes an atomic checkpoint of the entire tenant map to the
    /// server's configured checkpoint path.
    Checkpoint,
    /// Asks the server to stop accepting work and drain.
    Shutdown,
}

/// Machine-readable error class carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The named tenant does not exist.
    NoSuchTenant,
    /// A tenant with that name already exists.
    TenantExists,
    /// The request was structurally invalid (bad spec, bad frame payload).
    InvalidRequest,
    /// No stored snapshot covers the requested horizon.
    HorizonUnavailable,
    /// A record failed validation and was rejected.
    InvalidPoint,
    /// The server's worker queue is full; retry with backoff.
    Overloaded,
    /// The tenant's admission ladder is at `Shed`; the batch was dropped.
    Shed,
    /// The operation missed its deadline.
    Deadline,
    /// Anything else; the message carries details.
    Internal,
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::NoSuchTenant => "no-such-tenant",
            ErrorCode::TenantExists => "tenant-exists",
            ErrorCode::InvalidRequest => "invalid-request",
            ErrorCode::HorizonUnavailable => "horizon-unavailable",
            ErrorCode::InvalidPoint => "invalid-point",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Shed => "shed",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// One micro-cluster in a query answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireCluster {
    /// Stable cluster id.
    pub id: u64,
    /// Cluster centroid.
    pub centroid: Vec<f64>,
    /// Point count (or decayed weight) of the cluster.
    pub weight: f64,
}

/// Per-tenant statistics and admission state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireTenantStats {
    /// Points absorbed into the tenant's model.
    pub points_processed: u64,
    /// Live micro-clusters.
    pub num_clusters: usize,
    /// Estimated resident bytes of the tenant's model.
    pub approx_memory_bytes: u64,
    /// Admission-ladder stage (`LoadStage::as_u8` encoding).
    pub stage: u8,
    /// Records accepted at admission (before validation).
    pub accepted: u64,
    /// Records dropped by `Sample`-stage probabilistic admission.
    pub sampled_out: u64,
    /// Records dropped by `Shed`-stage admission control.
    pub shed: u64,
    /// Records rejected by validation (NaN values, bad ψ, wrong dims).
    pub rejected: u64,
    /// Snapshots currently retained in the tenant's pyramid.
    pub snapshots_retained: usize,
    /// Latest stream tick the tenant has observed.
    pub last_tick: u64,
}

/// Whole-server statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireServerStats {
    /// Live tenants.
    pub tenants: u64,
    /// Frames successfully decoded since boot.
    pub frames: u64,
    /// Points accepted across all tenants since boot.
    pub points: u64,
    /// Requests bounced with `Overloaded` (worker queue full).
    pub jobs_rejected: u64,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Capacity of the bounded worker queue.
    pub queue_capacity: usize,
    /// Name of the kernel SIMD backend live in the serving process
    /// (`scalar`, `portable`, `avx2`, `avx512`, `neon`) — lets operators
    /// confirm which compute path production traffic is on.
    pub kernel_backend: String,
}

/// Every answer the server can give.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The tenant was created.
    Created,
    /// The tenant was removed.
    Removed,
    /// Ingest accounting for one batch.
    Ingested {
        /// Records absorbed into the model.
        accepted: u64,
        /// Records dropped by `Sample`-stage admission.
        sampled_out: u64,
        /// Records dropped by `Shed`-stage admission.
        shed: u64,
        /// Records rejected by validation.
        rejected: u64,
        /// The tenant's admission stage after the batch
        /// (`LoadStage::as_u8` encoding).
        stage: u8,
    },
    /// Micro-clusters of a horizon window.
    Clusters {
        /// The window's micro-clusters.
        clusters: Vec<WireCluster>,
        /// Total weight across the window.
        total_weight: f64,
    },
    /// A macro-clustering.
    Macro {
        /// Macro-cluster centroids (`k × d`).
        centroids: Vec<Vec<f64>>,
        /// Total micro-cluster weight under each centroid.
        weights: Vec<f64>,
        /// Weighted SSQ of micro-centroids about their macro centroids.
        ssq: f64,
    },
    /// Per-tenant statistics.
    TenantStats {
        /// The statistics.
        stats: WireTenantStats,
    },
    /// Whole-server statistics.
    ServerStats {
        /// The statistics.
        stats: WireServerStats,
    },
    /// A checkpoint was written.
    CheckpointWritten {
        /// Bytes in the checkpoint file.
        bytes: u64,
    },
    /// The server acknowledged a shutdown request and is draining.
    ShuttingDown,
    /// The request failed.
    Error {
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Serialises any serde message into a complete USRV frame — the shared
/// codec entry point. The serving front-end's requests/responses and the
/// distributed tier's delta frames (`ustream-distrib`) all go through this
/// pair, so the length-prefix + fnv1a64 checksum discipline is enforced in
/// exactly one place.
pub fn encode_message<T: serde::Serialize>(msg: &T, max: usize) -> Result<Vec<u8>, FrameError> {
    let json = serde_json::to_string(msg).map_err(|e| FrameError::Payload(e.to_string()))?;
    encode_frame(json.as_bytes(), max)
}

/// Parses a verified frame payload as a typed serde message (the inverse
/// of [`encode_message`]).
pub fn decode_message<T: serde::de::DeserializeOwned>(payload: &[u8]) -> Result<T, FrameError> {
    let text = std::str::from_utf8(payload).map_err(|_| FrameError::Payload("not UTF-8".into()))?;
    serde_json::from_str(text).map_err(|e| FrameError::Payload(e.to_string()))
}

/// Serialises a request into a complete frame.
pub fn encode_request(req: &Request, max: usize) -> Result<Vec<u8>, FrameError> {
    encode_message(req, max)
}

/// Parses a verified frame payload as a request.
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    decode_message(payload)
}

/// Serialises a response into a complete frame.
pub fn encode_response(resp: &Response, max: usize) -> Result<Vec<u8>, FrameError> {
    encode_message(resp, max)
}

/// Parses a verified frame payload as a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, FrameError> {
    decode_message(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let payload = b"{\"Ping\":null}";
        let frame = encode_frame(payload, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(frame.len(), HEADER_LEN + payload.len());
        let back = decode_frame(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn truncated_header_and_payload_are_typed_errors() {
        let frame = encode_frame(b"abcdef", 1024).unwrap();
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut], 1024).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut frame = encode_frame(b"x", 1024).unwrap();
        frame[0] = b'Z';
        assert!(matches!(
            decode_frame(&frame, 1024).unwrap_err(),
            FrameError::BadMagic(_)
        ));
    }

    #[test]
    fn bad_version_and_flags_detected() {
        let mut frame = encode_frame(b"x", 1024).unwrap();
        frame[4] = 9;
        assert_eq!(
            decode_frame(&frame, 1024).unwrap_err(),
            FrameError::BadVersion(9)
        );
        let mut frame = encode_frame(b"x", 1024).unwrap();
        frame[5] = 0x80;
        assert_eq!(
            decode_frame(&frame, 1024).unwrap_err(),
            FrameError::BadFlags(0x80)
        );
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        let mut frame = encode_frame(b"x", 1024).unwrap();
        frame[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&frame, 1024).unwrap_err(),
            FrameError::Oversized { max: 1024, .. }
        ));
        // Encoding refuses over-limit payloads symmetrically.
        assert!(matches!(
            encode_frame(&[0u8; 32], 16).unwrap_err(),
            FrameError::Oversized {
                declared: 32,
                max: 16
            }
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut frame = encode_frame(b"hello world", 1024).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x01;
        assert!(matches!(
            decode_frame(&frame, 1024).unwrap_err(),
            FrameError::Checksum { .. }
        ));
    }

    #[test]
    fn request_and_response_round_trip_through_frames() {
        let req = Request::Ingest {
            name: "acme".into(),
            points: vec![WirePoint {
                values: vec![1.0, 2.0],
                errors: vec![0.1, 0.2],
                timestamp: 7,
            }],
        };
        let frame = encode_request(&req, DEFAULT_MAX_FRAME_BYTES).unwrap();
        let payload = decode_frame(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(decode_request(payload).unwrap(), req);

        let resp = Response::Ingested {
            accepted: 1,
            sampled_out: 0,
            shed: 0,
            rejected: 0,
            stage: 0,
        };
        let frame = encode_response(&resp, DEFAULT_MAX_FRAME_BYTES).unwrap();
        let payload = decode_frame(&frame, DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(decode_response(payload).unwrap(), resp);
    }

    #[test]
    fn malformed_json_payload_is_an_error_not_a_panic() {
        let frame = encode_frame(b"{not json", 1024).unwrap();
        let payload = decode_frame(&frame, 1024).unwrap();
        assert!(matches!(
            decode_request(payload).unwrap_err(),
            FrameError::Payload(_)
        ));
        let frame = encode_frame(&[0xff, 0xfe], 1024).unwrap();
        let payload = decode_frame(&frame, 1024).unwrap();
        assert!(matches!(
            decode_request(payload).unwrap_err(),
            FrameError::Payload(_)
        ));
    }

    #[test]
    fn wire_point_validation_rejects_what_the_constructor_panics_on() {
        let bad_psi = WirePoint {
            values: vec![1.0],
            errors: vec![-0.5],
            timestamp: 1,
        };
        assert!(bad_psi.into_point().is_err());
        let mismatched = WirePoint {
            values: vec![1.0, 2.0],
            errors: vec![0.1],
            timestamp: 1,
        };
        assert!(mismatched.into_point().is_err());
        let nan = WirePoint {
            values: vec![f64::NAN],
            errors: vec![0.1],
            timestamp: 1,
        };
        assert!(nan.into_point().is_err());
        let empty = WirePoint {
            values: vec![],
            errors: vec![],
            timestamp: 1,
        };
        assert!(empty.into_point().is_err());
        let good = WirePoint {
            values: vec![1.0, 2.0],
            errors: vec![0.1, 0.0],
            timestamp: 3,
        };
        let p = good.into_point().unwrap();
        assert_eq!(p.timestamp(), 3);
        assert_eq!(p.dims(), 2);
    }

    #[test]
    fn error_code_display_is_kebab() {
        assert_eq!(ErrorCode::NoSuchTenant.to_string(), "no-such-tenant");
        assert_eq!(ErrorCode::Overloaded.to_string(), "overloaded");
    }
}
