//! Multi-tenant serving front-end for uncertain-stream clustering.
//!
//! This crate puts a network face on the workspace's clustering engine:
//! many independent tenants — each with its own [`umicro`] clusterer,
//! pyramidal snapshot store and degradation-ladder rung — multiplexed
//! over one TCP listener and a bounded worker pool.
//!
//! The pieces, bottom-up:
//!
//! - [`protocol`] — the `USRV` length-prefixed binary frame (same
//!   fnv1a64 checksum discipline as the engine's `USTREAMCKPT` files)
//!   and the serde request/response types of the unified query API:
//!   ingest batch, horizon clusters, on-demand macro-clustering,
//!   per-tenant stats and health.
//! - [`io`] — deadline-wrapped socket reads/writes; the only module
//!   allowed to touch blocking I/O primitives (the repo's `blocking-io`
//!   lint rule enforces this).
//! - [`tenant`] — per-tenant state: clusterer, horizon analyzer with
//!   snapshot budget, and per-tenant admission control that reuses the
//!   engine's [`ustream_engine::LoadStage`] ladder, so one hot tenant
//!   degrades itself instead of starving its neighbours.
//! - [`registry`] — the sharded tenant map with an atomic whole-map
//!   `USRVMAP` checkpoint (tmp + rename, all buckets locked).
//! - [`server`] — acceptor, MPMC worker pool, and the governor thread
//!   that walks each tenant's ladder against its ingest quota.
//! - [`client`] — the blocking client the CLI load driver and the
//!   serving benchmark drive the server with.
//!
//! Quick start (in-process):
//!
//! ```
//! use ustream_serve::{Server, ServeConfig, ServeClient, TenantSpec, WirePoint};
//! use std::time::Duration;
//!
//! let server = Server::bind("127.0.0.1:0", ServeConfig::default()).unwrap();
//! let mut client = ServeClient::connect(server.addr()).unwrap();
//! client.create_tenant("acme", TenantSpec::new(16, 2)).unwrap();
//! let batch: Vec<WirePoint> = (1..=64)
//!     .map(|t| WirePoint {
//!         values: vec![t as f64, -(t as f64)],
//!         errors: vec![0.1, 0.1],
//!         timestamp: t,
//!     })
//!     .collect();
//! let (accepted, _dropped) = client.ingest("acme", batch).unwrap();
//! assert_eq!(accepted, 64);
//! let stats = client.tenant_stats("acme").unwrap();
//! assert_eq!(stats.points_processed, 64);
//! drop(client);
//! server.shutdown_drain(Duration::from_secs(10)).unwrap();
//! ```

pub mod client;
pub mod io;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod tenant;

pub use client::{ReconnectPolicy, ServeClient};
pub use protocol::{
    decode_frame, decode_message, decode_request, decode_response, encode_frame, encode_message,
    encode_request, encode_response, ErrorCode, FrameError, Request, Response, TenantSpec,
    WireCluster, WirePoint, WireServerStats, WireTenantStats, DEFAULT_MAX_FRAME_BYTES,
};
pub use registry::{RegistryError, TenantRegistry};
pub use server::{ServeConfig, Server};
pub use tenant::{AdmissionPolicy, IngestOutcome, Tenant, TenantCheckpoint};
