//! Deadline-wrapped socket I/O — the *only* module allowed to touch the
//! blocking read/write primitives.
//!
//! Every read and write in the serving front-end goes through
//! [`read_frame`] / [`write_frame`], which arm the socket's OS-level
//! read/write timeouts before touching the stream. A peer that stalls
//! mid-frame therefore costs at most the configured deadline, surfaced as
//! [`UStreamError::DeadlineExceeded`] — never a wedged connection thread.
//! The repo's `blocking-io` lint rule enforces the funnel: raw
//! `read_exact`/`write_all` calls anywhere else in `crates/serve` are
//! findings.

use crate::protocol::{parse_header, verify_payload, FrameError, HEADER_LEN};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};
use ustream_common::UStreamError;

/// Maps a timed-out socket operation to the typed deadline error; other
/// I/O failures pass through as [`UStreamError::Io`].
fn map_io(e: std::io::Error, started: Instant) -> UStreamError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            UStreamError::DeadlineExceeded {
                waited_ms: started.elapsed().as_millis() as u64,
            }
        }
        _ => UStreamError::Io(e),
    }
}

/// Fills `buf` completely from the stream.
///
/// Returns `Ok(false)` when the peer closed the connection cleanly before
/// the *first* byte (the normal end of a session); a close mid-buffer is a
/// truncated frame and comes back as an error. This is a hand-rolled loop
/// rather than `read_exact` because `read_exact` cannot distinguish those
/// two cases.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    started: Instant,
) -> Result<bool, UStreamError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(FrameError::Truncated {
                    needed: buf.len(),
                    have: filled,
                }
                .into());
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(map_io(e, started)),
        }
    }
    Ok(true)
}

/// Reads one complete frame, enforcing `deadline` via the socket's read
/// timeout and `max` via the header's length bound.
///
/// Returns `Ok(None)` on a clean peer close at a frame boundary.
pub fn read_frame(
    stream: &mut TcpStream,
    max: usize,
    deadline: Duration,
) -> Result<Option<Vec<u8>>, UStreamError> {
    let started = Instant::now();
    stream
        .set_read_timeout(Some(deadline))
        .map_err(UStreamError::Io)?;
    let mut header = [0u8; HEADER_LEN];
    if !read_full(stream, &mut header, started)? {
        return Ok(None);
    }
    let parsed = parse_header(&header, max).map_err(UStreamError::from)?;
    let mut payload = vec![0u8; parsed.payload_len];
    if !read_full(stream, &mut payload, started)? {
        return Err(UStreamError::from(FrameError::Truncated {
            needed: parsed.payload_len,
            have: 0,
        }));
    }
    verify_payload(&parsed, &payload).map_err(UStreamError::from)?;
    Ok(Some(payload))
}

/// Writes one pre-encoded frame, enforcing `deadline` via the socket's
/// write timeout.
pub fn write_frame(
    stream: &mut TcpStream,
    frame: &[u8],
    deadline: Duration,
) -> Result<(), UStreamError> {
    let started = Instant::now();
    stream
        .set_write_timeout(Some(deadline))
        .map_err(UStreamError::Io)?;
    let mut written = 0usize;
    while written < frame.len() {
        match stream.write(&frame[written..]) {
            Ok(0) => {
                return Err(UStreamError::Io(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "peer stopped accepting bytes mid-frame",
                )))
            }
            Ok(n) => written += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(map_io(e, started)),
        }
    }
    stream.flush().map_err(|e| map_io(e, started))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::encode_frame;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn frame_crosses_a_real_socket() {
        let (mut client, mut server) = pair();
        let frame = encode_frame(b"payload bytes", 1024).unwrap();
        write_frame(&mut client, &frame, Duration::from_secs(5)).unwrap();
        let got = read_frame(&mut server, 1024, Duration::from_secs(5))
            .unwrap()
            .unwrap();
        assert_eq!(got, b"payload bytes");
    }

    #[test]
    fn clean_close_reads_as_none() {
        let (client, mut server) = pair();
        drop(client);
        assert!(read_frame(&mut server, 1024, Duration::from_secs(5))
            .unwrap()
            .is_none());
    }

    #[test]
    fn close_mid_frame_is_a_truncation_error() {
        let (mut client, mut server) = pair();
        let frame = encode_frame(b"abcdefgh", 1024).unwrap();
        use std::io::Write as _;
        client.write_all(&frame[..frame.len() - 3]).unwrap();
        drop(client);
        let err = read_frame(&mut server, 1024, Duration::from_secs(5)).unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
    }

    #[test]
    fn stalled_peer_hits_the_deadline() {
        let (_client, mut server) = pair();
        let started = Instant::now();
        let err = read_frame(&mut server, 1024, Duration::from_millis(50)).unwrap_err();
        assert!(
            matches!(err, UStreamError::DeadlineExceeded { .. }),
            "{err}"
        );
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
