//! Blocking client for the serving protocol.
//!
//! One [`ServeClient`] wraps one TCP connection. Requests are strictly
//! request/response (the server answers in order), so the client is a
//! thin frame-codec wrapper plus typed convenience helpers. The CLI's
//! load driver and the serving benchmark both drive the server through
//! this type, so the protocol's only consumers go through one code path.

use crate::io::{read_frame, write_frame};
use crate::protocol::{
    decode_response, encode_request, ErrorCode, Request, Response, TenantSpec, WirePoint,
    WireServerStats, WireTenantStats, DEFAULT_MAX_FRAME_BYTES,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use ustream_common::{Result, UStreamError};

/// A connected protocol client.
pub struct ServeClient {
    stream: TcpStream,
    max_frame_bytes: usize,
    deadline: Duration,
}

/// Turns a typed wire error into a `UStreamError` for helpers that
/// promise a decoded payload.
fn wire_error(code: ErrorCode, message: String) -> UStreamError {
    UStreamError::Serde(format!("server error [{code}]: {message}"))
}

impl ServeClient {
    /// Connects with the default 30 s I/O deadline and 8 MiB frame bound.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        Self::connect_with(addr, Duration::from_secs(30), DEFAULT_MAX_FRAME_BYTES)
    }

    /// Connects with explicit per-operation deadline and frame bound.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        deadline: Duration,
        max_frame_bytes: usize,
    ) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(UStreamError::Io)?;
        stream.set_nodelay(true).map_err(UStreamError::Io)?;
        Ok(Self {
            stream,
            max_frame_bytes,
            deadline,
        })
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        let frame = encode_request(req, self.max_frame_bytes).map_err(UStreamError::from)?;
        write_frame(&mut self.stream, &frame, self.deadline)?;
        let payload = read_frame(&mut self.stream, self.max_frame_bytes, self.deadline)?
            .ok_or_else(|| {
                UStreamError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection before replying",
                ))
            })?;
        decode_response(&payload).map_err(UStreamError::from)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Creates a tenant.
    pub fn create_tenant(&mut self, name: &str, spec: TenantSpec) -> Result<()> {
        match self.request(&Request::CreateTenant {
            name: name.to_string(),
            spec,
        })? {
            Response::Created => Ok(()),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("Created", &other)),
        }
    }

    /// Removes a tenant and all its state.
    pub fn remove_tenant(&mut self, name: &str) -> Result<()> {
        match self.request(&Request::RemoveTenant {
            name: name.to_string(),
        })? {
            Response::Removed => Ok(()),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("Removed", &other)),
        }
    }

    /// Ingests a batch; returns `(accepted, dropped)` where `dropped`
    /// counts sampled + shed + rejected records.
    pub fn ingest(&mut self, name: &str, points: Vec<WirePoint>) -> Result<(u64, u64)> {
        match self.request(&Request::Ingest {
            name: name.to_string(),
            points,
        })? {
            Response::Ingested {
                accepted,
                sampled_out,
                shed,
                rejected,
                ..
            } => Ok((accepted, sampled_out + shed + rejected)),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    /// Per-tenant statistics.
    pub fn tenant_stats(&mut self, name: &str) -> Result<WireTenantStats> {
        match self.request(&Request::TenantStats {
            name: name.to_string(),
        })? {
            Response::TenantStats { stats } => Ok(stats),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("TenantStats", &other)),
        }
    }

    /// Aggregate server statistics.
    pub fn server_stats(&mut self) -> Result<WireServerStats> {
        match self.request(&Request::ServerStats)? {
            Response::ServerStats { stats } => Ok(stats),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("ServerStats", &other)),
        }
    }

    /// Asks the server host to shut down (the server finishes in-flight
    /// work first).
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> UStreamError {
    UStreamError::Serde(format!("expected {wanted} response, got {got:?}"))
}
