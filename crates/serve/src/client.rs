//! Blocking client for the serving protocol.
//!
//! One [`ServeClient`] wraps one TCP connection. Requests are strictly
//! request/response (the server answers in order), so the client is a
//! thin frame-codec wrapper plus typed convenience helpers. The CLI's
//! load driver and the serving benchmark both drive the server through
//! this type, so the protocol's only consumers go through one code path.

use crate::io::{read_frame, write_frame};
use crate::protocol::{
    decode_response, encode_request, ErrorCode, Request, Response, TenantSpec, WirePoint,
    WireServerStats, WireTenantStats, DEFAULT_MAX_FRAME_BYTES,
};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;
use ustream_common::{Backoff, Result, UStreamError};

/// Bounded reconnect-with-backoff policy for *idempotent* requests.
///
/// When a transport failure (socket error, deadline miss, peer close)
/// interrupts an idempotent request — `ping`, `tenant_stats`,
/// `server_stats` — the client redials the server and resends, up to
/// `max_attempts` reconnects with jittered exponential backoff between
/// them (the same [`Backoff`] schedule the distrib transport uses).
/// Non-idempotent requests (`ingest`, tenant create/remove, `shutdown`)
/// never retry: a resend after an ambiguous failure could double-apply.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Reconnect attempts after the initial failure before giving up.
    pub max_attempts: u32,
    /// First backoff delay, in milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff cap, in milliseconds.
    pub max_backoff_ms: u64,
    /// Jitter seed; equal seeds replay equal schedules.
    pub seed: u64,
}

impl Default for ReconnectPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_ms: 50,
            max_backoff_ms: 2_000,
            seed: 0x5eed,
        }
    }
}

/// A connected protocol client.
pub struct ServeClient {
    stream: TcpStream,
    peer: SocketAddr,
    max_frame_bytes: usize,
    deadline: Duration,
    reconnect: Option<ReconnectPolicy>,
}

/// Turns a typed wire error into a `UStreamError` for helpers that
/// promise a decoded payload.
fn wire_error(code: ErrorCode, message: String) -> UStreamError {
    UStreamError::Serde(format!("server error [{code}]: {message}"))
}

impl ServeClient {
    /// Connects with the default 30 s I/O deadline and 8 MiB frame bound.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        Self::connect_with(addr, Duration::from_secs(30), DEFAULT_MAX_FRAME_BYTES)
    }

    /// Connects with explicit per-operation deadline and frame bound.
    pub fn connect_with<A: ToSocketAddrs>(
        addr: A,
        deadline: Duration,
        max_frame_bytes: usize,
    ) -> Result<Self> {
        let stream = TcpStream::connect(addr).map_err(UStreamError::Io)?;
        stream.set_nodelay(true).map_err(UStreamError::Io)?;
        let peer = stream.peer_addr().map_err(UStreamError::Io)?;
        Ok(Self {
            stream,
            peer,
            max_frame_bytes,
            deadline,
            reconnect: None,
        })
    }

    /// Enables bounded reconnect-with-backoff for idempotent requests.
    pub fn with_reconnect(mut self, policy: ReconnectPolicy) -> Self {
        self.reconnect = Some(policy);
        self
    }

    /// Sets or clears the reconnect policy on an existing client.
    pub fn set_reconnect(&mut self, policy: Option<ReconnectPolicy>) {
        self.reconnect = policy;
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        let frame = encode_request(req, self.max_frame_bytes).map_err(UStreamError::from)?;
        write_frame(&mut self.stream, &frame, self.deadline)?;
        let payload = read_frame(&mut self.stream, self.max_frame_bytes, self.deadline)?
            .ok_or_else(|| {
                UStreamError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection before replying",
                ))
            })?;
        decode_response(&payload).map_err(UStreamError::from)
    }

    /// A transport failure means the request may or may not have reached
    /// the server — only protocol-level errors are definitive answers.
    fn is_transport_error(e: &UStreamError) -> bool {
        matches!(
            e,
            UStreamError::Io(_) | UStreamError::DeadlineExceeded { .. }
        )
    }

    /// [`Self::request`] plus the reconnect policy, for requests that are
    /// safe to resend after an ambiguous transport failure.
    fn request_idempotent(&mut self, req: &Request) -> Result<Response> {
        let mut last = match self.request(req) {
            Ok(r) => return Ok(r),
            Err(e) if Self::is_transport_error(&e) => e,
            Err(e) => return Err(e),
        };
        let Some(policy) = self.reconnect.clone() else {
            return Err(last);
        };
        let mut backoff = Backoff::new(policy.base_backoff_ms, policy.max_backoff_ms, policy.seed);
        for _ in 0..policy.max_attempts {
            // lint:allow(no-sleep): bounded, jittered backoff between reconnect attempts
            std::thread::sleep(backoff.next_delay());
            match TcpStream::connect(self.peer) {
                Ok(stream) => {
                    if let Err(e) = stream.set_nodelay(true) {
                        last = UStreamError::Io(e);
                        continue;
                    }
                    self.stream = stream;
                    match self.request(req) {
                        Ok(r) => return Ok(r),
                        Err(e) if Self::is_transport_error(&e) => last = e,
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => last = UStreamError::Io(e),
            }
        }
        Err(UStreamError::RetriesExhausted {
            attempts: policy.max_attempts + 1,
            last_error: last.to_string(),
        })
    }

    /// Liveness probe (idempotent: retries under the reconnect policy).
    pub fn ping(&mut self) -> Result<()> {
        match self.request_idempotent(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Creates a tenant.
    pub fn create_tenant(&mut self, name: &str, spec: TenantSpec) -> Result<()> {
        match self.request(&Request::CreateTenant {
            name: name.to_string(),
            spec,
        })? {
            Response::Created => Ok(()),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("Created", &other)),
        }
    }

    /// Removes a tenant and all its state.
    pub fn remove_tenant(&mut self, name: &str) -> Result<()> {
        match self.request(&Request::RemoveTenant {
            name: name.to_string(),
        })? {
            Response::Removed => Ok(()),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("Removed", &other)),
        }
    }

    /// Ingests a batch; returns `(accepted, dropped)` where `dropped`
    /// counts sampled + shed + rejected records.
    pub fn ingest(&mut self, name: &str, points: Vec<WirePoint>) -> Result<(u64, u64)> {
        match self.request(&Request::Ingest {
            name: name.to_string(),
            points,
        })? {
            Response::Ingested {
                accepted,
                sampled_out,
                shed,
                rejected,
                ..
            } => Ok((accepted, sampled_out + shed + rejected)),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    /// Per-tenant statistics (idempotent: retries under the reconnect
    /// policy).
    pub fn tenant_stats(&mut self, name: &str) -> Result<WireTenantStats> {
        match self.request_idempotent(&Request::TenantStats {
            name: name.to_string(),
        })? {
            Response::TenantStats { stats } => Ok(stats),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("TenantStats", &other)),
        }
    }

    /// Aggregate server statistics (idempotent: retries under the
    /// reconnect policy).
    pub fn server_stats(&mut self) -> Result<WireServerStats> {
        match self.request_idempotent(&Request::ServerStats)? {
            Response::ServerStats { stats } => Ok(stats),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("ServerStats", &other)),
        }
    }

    /// Asks the server host to shut down (the server finishes in-flight
    /// work first).
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { code, message } => Err(wire_error(code, message)),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> UStreamError {
    UStreamError::Serde(format!("expected {wanted} response, got {got:?}"))
}
