//! Per-tenant state: one clusterer, one pyramidal snapshot store, and one
//! admission ladder.
//!
//! Each tenant is an isolated clustering universe — its own
//! [`OnlineClusterer`] (UMicro or the decayed variant, per its spec), its
//! own [`HorizonAnalyzer`] with an optional [`SnapshotBudget`], and its own
//! rung on the engine's degradation ladder ([`LoadStage`]). The server's
//! governor polls each tenant's ingest rate against the per-tenant quota
//! and walks the ladder with the same asymmetric hysteresis the engine
//! uses, so one hot tenant degrades *itself* (widen → sample → shed) while
//! every other tenant keeps full fidelity.

use crate::protocol::{TenantSpec, WireCluster, WirePoint, WireTenantStats};
use serde::{Deserialize, Serialize};
use umicro::{
    ClustererState, DecayedUMicro, Ecf, HorizonAnalyzer, OnlineClusterer, UMicro, UMicroConfig,
};
use ustream_common::{AdditiveFeature, Result, Timestamp, UStreamError};
use ustream_engine::{LoadPolicy, LoadStage};
use ustream_kmeans::MacroClustering;
use ustream_snapshot::{ClusterSetSnapshot, PyramidConfig, SnapshotBudget};

/// Per-tenant admission control: an ingest-rate quota plus the engine's
/// ladder hysteresis parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Sustained points/second a tenant may ingest at full fidelity.
    /// Pressure is `observed rate / quota`; the ladder watermarks apply to
    /// that fraction.
    pub quota_points_per_sec: u64,
    /// Watermarks, hysteresis counts, widen factor and sampling rate —
    /// the same knobs as the engine's channel-pressure governor.
    pub ladder: LoadPolicy,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self {
            quota_points_per_sec: 1_000_000,
            ladder: LoadPolicy::default(),
        }
    }
}

impl AdmissionPolicy {
    /// First invalid-field description, if any (non-panicking validation,
    /// mirroring `EngineBuilder`).
    pub fn problem(&self) -> Option<String> {
        if self.quota_points_per_sec == 0 {
            return Some("admission quota_points_per_sec must be positive".into());
        }
        let l = &self.ladder;
        if l.high_watermark <= 0.0 || l.high_watermark.is_nan() {
            return Some("admission high_watermark must be positive".into());
        }
        if l.low_watermark < 0.0 || l.low_watermark >= l.high_watermark {
            return Some("admission low_watermark must be in [0, high_watermark)".into());
        }
        if l.trip_polls == 0 || l.clear_polls == 0 {
            return Some("admission trip/clear polls must be positive".into());
        }
        if l.widen_factor == 0 {
            return Some("admission widen_factor must be >= 1".into());
        }
        if !(1..=1000).contains(&l.keep_per_mille) {
            return Some("admission keep_per_mille must be in [1, 1000]".into());
        }
        None
    }
}

/// Outcome of one ingest batch, in admission-accounting terms.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestOutcome {
    /// Records absorbed into the model.
    pub accepted: u64,
    /// Records dropped by `Sample`-stage admission.
    pub sampled_out: u64,
    /// Records dropped by `Shed`-stage admission.
    pub shed: u64,
    /// Records rejected by validation.
    pub rejected: u64,
    /// The stage that admitted (or dropped) the batch.
    pub stage: LoadStage,
}

/// splitmix64 — the workspace's standard cheap deterministic hash, used
/// here for `Sample`-stage admission so shedding is reproducible.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One tenant's complete serving state.
pub struct Tenant {
    spec: TenantSpec,
    clusterer: Box<dyn OnlineClusterer<Summary = Ecf>>,
    horizon: HorizonAnalyzer,
    /// Admission-ladder rung; walked by the governor, read at ingest.
    stage: LoadStage,
    /// Consecutive governor polls above/below the watermarks.
    above: u32,
    below: u32,
    /// Admission counters.
    accepted: u64,
    sampled_out: u64,
    shed: u64,
    rejected: u64,
    /// Total records seen at the previous governor poll (rate baseline).
    offered_at_poll: u64,
    /// Admission-sampling sequence number (deterministic keep/drop).
    seq: u64,
    /// Latest stream tick observed.
    last_tick: Timestamp,
    /// Tick of the last recorded pyramid snapshot.
    last_snapshot: Timestamp,
}

/// Builds the spec's clusterer (decayed iff a half-life is given).
fn build_clusterer(spec: &TenantSpec) -> Result<Box<dyn OnlineClusterer<Summary = Ecf>>> {
    let config = UMicroConfig::new(spec.n_micro, spec.dims)?;
    Ok(match spec.decay_half_life {
        Some(hl) => {
            if hl <= 0.0 || hl.is_nan() {
                return Err(UStreamError::InvalidConfig(
                    "decay_half_life must be positive".into(),
                ));
            }
            Box::new(DecayedUMicro::with_half_life(config, hl))
        }
        None => Box::new(UMicro::new(config)),
    })
}

fn build_horizon(spec: &TenantSpec) -> Result<HorizonAnalyzer> {
    let pyramid = PyramidConfig::new(spec.alpha, spec.l)?;
    let mut hz = HorizonAnalyzer::new(pyramid);
    if spec.max_snapshots.is_some() || spec.max_snapshot_bytes.is_some() {
        hz.set_budget(SnapshotBudget {
            max_snapshots: spec.max_snapshots,
            max_bytes: spec.max_snapshot_bytes,
        });
    }
    Ok(hz)
}

impl Tenant {
    /// Creates a tenant from its spec; fails (typed, never panics) on an
    /// invalid spec so a bad `CreateTenant` request cannot kill a worker.
    pub fn new(spec: TenantSpec) -> Result<Self> {
        if spec.snapshot_every == 0 {
            return Err(UStreamError::InvalidConfig(
                "snapshot_every must be positive".into(),
            ));
        }
        let clusterer = build_clusterer(&spec)?;
        let horizon = build_horizon(&spec)?;
        Ok(Self {
            spec,
            clusterer,
            horizon,
            stage: LoadStage::Normal,
            above: 0,
            below: 0,
            accepted: 0,
            sampled_out: 0,
            shed: 0,
            rejected: 0,
            offered_at_poll: 0,
            seq: 0,
            last_tick: 0,
            last_snapshot: 0,
        })
    }

    /// The tenant's configured spec.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// Current admission-ladder stage.
    pub fn stage(&self) -> LoadStage {
        self.stage
    }

    /// Forces the admission stage (tests and operator tooling).
    pub fn force_stage(&mut self, stage: LoadStage) {
        self.stage = stage;
        self.above = 0;
        self.below = 0;
    }

    /// Ingests one batch under the current admission stage.
    ///
    /// `Shed` drops the whole batch; `Sample` keeps `keep_per_mille`‰ of
    /// records by a deterministic per-record hash; `WidenMerge` stretches
    /// the snapshot cadence by `widen_factor`. Validation failures (NaN
    /// values, bad ψ, wrong dimensionality) are counted per record and
    /// never abort the rest of the batch.
    pub fn ingest(&mut self, points: Vec<WirePoint>, policy: &AdmissionPolicy) -> IngestOutcome {
        let mut out = IngestOutcome {
            stage: self.stage,
            ..IngestOutcome::default()
        };
        if self.stage == LoadStage::Shed {
            out.shed = points.len() as u64;
            self.shed += out.shed;
            self.seq += points.len() as u64;
            return out;
        }
        let cadence = self.snapshot_cadence(policy);
        for wp in points {
            self.seq += 1;
            if self.stage == LoadStage::Sample
                && splitmix64(self.seq) % 1000 >= policy.ladder.keep_per_mille
            {
                out.sampled_out += 1;
                continue;
            }
            if wp.values.len() != self.spec.dims {
                out.rejected += 1;
                continue;
            }
            let point = match wp.into_point() {
                Ok(p) => p,
                Err(_) => {
                    out.rejected += 1;
                    continue;
                }
            };
            let t = point.timestamp();
            self.clusterer.insert(&point);
            out.accepted += 1;
            self.last_tick = self.last_tick.max(t);
            if self.last_tick >= self.last_snapshot + cadence {
                self.record_snapshot();
            }
        }
        self.accepted += out.accepted;
        self.sampled_out += out.sampled_out;
        self.rejected += out.rejected;
        out
    }

    /// Snapshot cadence under the current stage: the configured interval,
    /// stretched `widen_factor`× at `WidenMerge` and above.
    fn snapshot_cadence(&self, policy: &AdmissionPolicy) -> u64 {
        if self.stage >= LoadStage::WidenMerge {
            self.spec
                .snapshot_every
                .saturating_mul(policy.ladder.widen_factor)
        } else {
            self.spec.snapshot_every
        }
    }

    /// Files the current cluster set into the pyramid at `last_tick`.
    fn record_snapshot(&mut self) {
        let t = self.last_tick;
        // The store requires monotone capture times; a replayed or
        // out-of-order batch must not trip its debug assertion.
        if t > self.horizon.last_recorded() {
            let snap = self.clusterer.snapshot_at(t);
            self.horizon.record_snapshot(t, snap);
            self.last_snapshot = t;
        }
    }

    /// Flushes a final snapshot (drain path) so horizon queries can see
    /// everything ingested.
    pub fn flush_snapshot(&mut self) {
        self.record_snapshot();
    }

    /// Micro-clusters of the trailing window `(last_tick − h, last_tick]`.
    pub fn horizon_clusters(&mut self, h: u64) -> Result<(Vec<WireCluster>, f64)> {
        // Make the newest data visible to the query before subtracting.
        self.record_snapshot();
        let window = self.horizon.horizon_clusters(self.last_tick, h)?;
        Ok(wire_clusters(&window))
    }

    /// On-demand macro-clustering of the live micro-clusters, answered
    /// through the unified [`umicro::ClusterQuery`] read surface.
    pub fn macro_cluster(&mut self, k: usize, seed: u64) -> MacroClustering {
        umicro::ClusterQuery::macro_cluster(&mut self.clusterer, k, seed)
    }

    /// Per-tenant statistics in wire form.
    pub fn stats(&self) -> WireTenantStats {
        let q = umicro::ClusterQuery::stats(&self.clusterer);
        WireTenantStats {
            points_processed: q.points_processed,
            num_clusters: q.num_clusters,
            approx_memory_bytes: q.approx_memory_bytes as u64,
            stage: self.stage.as_u8(),
            accepted: self.accepted,
            sampled_out: self.sampled_out,
            shed: self.shed,
            rejected: self.rejected,
            snapshots_retained: self.horizon.store().len(),
            last_tick: self.last_tick,
        }
    }

    /// Total records offered to admission so far (kept or not).
    fn offered(&self) -> u64 {
        self.accepted + self.sampled_out + self.shed + self.rejected
    }

    /// One governor poll: measures the ingest rate since the previous poll
    /// against the quota and walks the ladder with asymmetric hysteresis.
    /// Returns `Some((from, to, pressure))` when the stage changed.
    pub fn governor_poll(
        &mut self,
        elapsed_secs: f64,
        policy: &AdmissionPolicy,
    ) -> Option<(LoadStage, LoadStage, f64)> {
        let offered = self.offered();
        let delta = offered.saturating_sub(self.offered_at_poll);
        self.offered_at_poll = offered;
        if elapsed_secs <= 0.0 {
            return None;
        }
        let rate = delta as f64 / elapsed_secs;
        let pressure = rate / policy.quota_points_per_sec as f64;
        let ladder = &policy.ladder;
        if pressure > ladder.high_watermark {
            self.above += 1;
            self.below = 0;
            if self.above >= ladder.trip_polls && self.stage != LoadStage::Shed {
                let from = self.stage;
                self.stage = self.stage.escalate();
                self.above = 0;
                return Some((from, self.stage, pressure));
            }
        } else if pressure < ladder.low_watermark {
            self.below += 1;
            self.above = 0;
            if self.below >= ladder.clear_polls && self.stage != LoadStage::Normal {
                let from = self.stage;
                self.stage = self.stage.relax();
                self.below = 0;
                return Some((from, self.stage, pressure));
            }
        } else {
            self.above = 0;
            self.below = 0;
        }
        None
    }

    /// Exports the complete tenant state for the atomic map checkpoint.
    pub fn export(&self, name: &str) -> Result<TenantCheckpoint> {
        let state = umicro::ClusterQuery::export_state(&self.clusterer).ok_or_else(|| {
            UStreamError::Checkpoint(format!("tenant {name}: clusterer cannot export state"))
        })?;
        let snapshots = self
            .horizon
            .store()
            .iter_chronological()
            .map(|s| TenantSnapshot {
                time: s.time,
                clusters: s.data.clone(),
            })
            .collect();
        Ok(TenantCheckpoint {
            name: name.to_string(),
            spec: self.spec.clone(),
            stage: self.stage.as_u8(),
            accepted: self.accepted,
            sampled_out: self.sampled_out,
            shed: self.shed,
            rejected: self.rejected,
            seq: self.seq,
            last_tick: self.last_tick,
            last_snapshot: self.last_snapshot,
            state,
            snapshots,
        })
    }

    /// Rebuilds a tenant from its checkpoint, continuing exactly where the
    /// exported one left off (model state, counters, pyramid contents and
    /// admission stage included).
    pub fn restore(ckpt: &TenantCheckpoint) -> Result<Self> {
        let mut tenant = Tenant::new(ckpt.spec.clone())?;
        tenant.clusterer.import_state(&ckpt.state)?;
        for s in &ckpt.snapshots {
            tenant.horizon.record_snapshot(s.time, s.clusters.clone());
        }
        tenant.stage = LoadStage::from_u8(ckpt.stage);
        tenant.accepted = ckpt.accepted;
        tenant.sampled_out = ckpt.sampled_out;
        tenant.shed = ckpt.shed;
        tenant.rejected = ckpt.rejected;
        tenant.offered_at_poll = tenant.offered();
        tenant.seq = ckpt.seq;
        tenant.last_tick = ckpt.last_tick;
        tenant.last_snapshot = ckpt.last_snapshot;
        Ok(tenant)
    }
}

/// Converts a cluster-set snapshot into wire clusters plus total weight.
fn wire_clusters(snap: &ClusterSetSnapshot<Ecf>) -> (Vec<WireCluster>, f64) {
    let clusters: Vec<WireCluster> = snap
        .clusters
        .iter()
        .map(|(id, e)| WireCluster {
            id: *id,
            centroid: e.centroid(),
            weight: e.count(),
        })
        .collect();
    let total = snap.total_count();
    (clusters, total)
}

/// One retained pyramid snapshot in checkpoint form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantSnapshot {
    /// Capture tick.
    pub time: Timestamp,
    /// The cluster set at that tick.
    pub clusters: ClusterSetSnapshot<Ecf>,
}

/// The complete persisted state of one tenant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantCheckpoint {
    /// Tenant name.
    pub name: String,
    /// Clustering spec the tenant was created with.
    pub spec: TenantSpec,
    /// Admission stage at checkpoint time (`LoadStage::as_u8`).
    pub stage: u8,
    /// Records absorbed into the model.
    pub accepted: u64,
    /// Records dropped by `Sample`-stage admission.
    pub sampled_out: u64,
    /// Records dropped by `Shed`-stage admission.
    pub shed: u64,
    /// Records rejected by validation.
    pub rejected: u64,
    /// Admission-sampling sequence number.
    pub seq: u64,
    /// Latest stream tick observed.
    pub last_tick: Timestamp,
    /// Tick of the last recorded snapshot.
    pub last_snapshot: Timestamp,
    /// The clusterer's full mutable state.
    pub state: ClustererState<Ecf>,
    /// Retained pyramid snapshots, chronological.
    pub snapshots: Vec<TenantSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wp(x: f64, y: f64, t: u64) -> WirePoint {
        WirePoint {
            values: vec![x, y],
            errors: vec![0.2, 0.2],
            timestamp: t,
        }
    }

    fn spec() -> TenantSpec {
        TenantSpec {
            snapshot_every: 8,
            ..TenantSpec::new(8, 2)
        }
    }

    fn stream(tenant: &mut Tenant, policy: &AdmissionPolicy, n: u64) -> IngestOutcome {
        let points: Vec<WirePoint> = (1..=n)
            .map(|t| {
                let x = if t % 2 == 0 { 0.0 } else { 9.0 };
                wp(x, -x, t)
            })
            .collect();
        tenant.ingest(points, policy)
    }

    #[test]
    fn ingest_clusters_and_answers_queries() {
        let mut t = Tenant::new(spec()).unwrap();
        let policy = AdmissionPolicy::default();
        let out = stream(&mut t, &policy, 200);
        assert_eq!(out.accepted, 200);
        assert_eq!(out.stage, LoadStage::Normal);
        let stats = t.stats();
        assert_eq!(stats.points_processed, 200);
        assert!(stats.num_clusters >= 2);
        assert!(stats.snapshots_retained > 0);
        assert_eq!(stats.last_tick, 200);
        let mac = t.macro_cluster(2, 7);
        assert_eq!(mac.k(), 2);
        let (clusters, total) = t.horizon_clusters(32).unwrap();
        assert!(!clusters.is_empty());
        assert!(total >= 32.0 - 1e-9);
    }

    #[test]
    fn malformed_records_are_counted_not_fatal() {
        let mut t = Tenant::new(spec()).unwrap();
        let policy = AdmissionPolicy::default();
        let batch = vec![
            wp(1.0, 1.0, 1),
            WirePoint {
                values: vec![f64::NAN, 0.0],
                errors: vec![0.1, 0.1],
                timestamp: 2,
            },
            WirePoint {
                values: vec![1.0],
                errors: vec![0.1],
                timestamp: 3,
            }, // wrong dims
            WirePoint {
                values: vec![1.0, 1.0],
                errors: vec![-1.0, 0.1],
                timestamp: 4,
            }, // bad psi
            wp(2.0, 2.0, 5),
        ];
        let out = t.ingest(batch, &policy);
        assert_eq!(out.accepted, 2);
        assert_eq!(out.rejected, 3);
    }

    #[test]
    fn shed_stage_drops_everything_sample_stage_drops_roughly_half() {
        let policy = AdmissionPolicy::default(); // keep_per_mille = 500
        let mut t = Tenant::new(spec()).unwrap();
        t.force_stage(LoadStage::Shed);
        let out = stream(&mut t, &policy, 100);
        assert_eq!(out.shed, 100);
        assert_eq!(out.accepted, 0);

        let mut t = Tenant::new(spec()).unwrap();
        t.force_stage(LoadStage::Sample);
        let out = stream(&mut t, &policy, 1000);
        assert_eq!(out.accepted + out.sampled_out, 1000);
        assert!(
            (300..=700).contains(&out.accepted),
            "sampling at 500‰ kept {}",
            out.accepted
        );
    }

    #[test]
    fn governor_escalates_hot_tenant_and_relaxes_idle_one() {
        let policy = AdmissionPolicy {
            quota_points_per_sec: 1000,
            ladder: LoadPolicy::default(), // trip 3, clear 5
        };
        let mut t = Tenant::new(spec()).unwrap();
        // Three polls at 10× quota escalate Normal → WidenMerge.
        for poll in 0..3 {
            stream(&mut t, &policy, 100); // fresh timestamps don't matter for rate
            let changed = t.governor_poll(0.01, &policy);
            if poll < 2 {
                assert!(changed.is_none(), "escalated too early at poll {poll}");
            } else {
                let (from, to, pressure) = changed.expect("third hot poll escalates");
                assert_eq!(from, LoadStage::Normal);
                assert_eq!(to, LoadStage::WidenMerge);
                assert!(pressure > 1.0);
            }
        }
        // Five idle polls relax back to Normal.
        for _ in 0..4 {
            assert!(t.governor_poll(0.01, &policy).is_none());
        }
        let (from, to, _) = t
            .governor_poll(0.01, &policy)
            .expect("fifth idle poll relaxes");
        assert_eq!(from, LoadStage::WidenMerge);
        assert_eq!(to, LoadStage::Normal);
    }

    #[test]
    fn checkpoint_round_trip_is_exact() {
        let mut t = Tenant::new(spec()).unwrap();
        let policy = AdmissionPolicy::default();
        stream(&mut t, &policy, 300);
        t.force_stage(LoadStage::Sample);
        let ckpt = t.export("acme").unwrap();
        let mut back = Tenant::restore(&ckpt).unwrap();

        assert_eq!(back.stage(), LoadStage::Sample);
        assert_eq!(back.stats(), t.stats());
        // Horizon queries reproduce bit-for-bit: same pyramid contents.
        let (a, wa) = t.horizon_clusters(64).unwrap();
        let (b, wb) = back.horizon_clusters(64).unwrap();
        assert_eq!(a, b);
        assert_eq!(wa.to_bits(), wb.to_bits());
        // And the restored model continues the stream identically.
        let out_a = stream(&mut t, &policy, 50);
        let out_b = stream(&mut back, &policy, 50);
        assert_eq!(out_a, out_b);
        assert_eq!(back.stats(), t.stats());
    }

    #[test]
    fn decayed_spec_builds_and_rejects_bad_half_life() {
        let mut s = spec();
        s.decay_half_life = Some(500.0);
        let mut t = Tenant::new(s).unwrap();
        let policy = AdmissionPolicy::default();
        assert_eq!(stream(&mut t, &policy, 64).accepted, 64);

        let mut bad = spec();
        bad.decay_half_life = Some(0.0);
        assert!(Tenant::new(bad).is_err());
        let mut bad = spec();
        bad.snapshot_every = 0;
        assert!(Tenant::new(bad).is_err());
        let mut bad = spec();
        bad.n_micro = 0;
        assert!(Tenant::new(bad).is_err());
    }

    #[test]
    fn admission_policy_validation() {
        assert!(AdmissionPolicy::default().problem().is_none());
        let p = AdmissionPolicy {
            quota_points_per_sec: 0,
            ..AdmissionPolicy::default()
        };
        assert!(p.problem().is_some());
        let mut p = AdmissionPolicy::default();
        p.ladder.keep_per_mille = 0;
        assert!(p.problem().is_some());
    }
}
