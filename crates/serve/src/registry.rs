//! The multi-tenant registry: a sharded map of named [`Tenant`]s with an
//! atomic whole-map checkpoint.
//!
//! Tenants are spread across lock buckets by `fnv1a64(name)` — the same
//! hash the engine's checkpoint format uses — so unrelated tenants never
//! contend on one mutex. The checkpoint locks *every* bucket in index
//! order (a fixed total order, so concurrent checkpoints cannot deadlock),
//! serialises the full tenant map in one pass, and lands it via the
//! workspace's tmp-then-rename idiom under a `USRVMAP` header with the
//! shared fnv1a64 payload checksum. A restore therefore sees either the
//! whole tenant map at a single instant or nothing — never a torn subset.

use crate::protocol::TenantSpec;
use crate::tenant::{AdmissionPolicy, Tenant, TenantCheckpoint};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use ustream_common::ordered::{ranks, OrderedMutex, OrderedMutexGuard};
use ustream_common::{Result, UStreamError};
use ustream_engine::checkpoint::fnv1a64;
use ustream_engine::LoadStage;

/// Header magic for the tenant-map checkpoint file. Same scheme as the
/// engine's `USTREAMCKPT`: ASCII header line, then a JSON payload guarded
/// by an fnv1a64 checksum.
pub const MAP_MAGIC: &str = "USRVMAP";
/// Tenant-map checkpoint format version.
pub const MAP_VERSION: u32 = 1;

/// Why a registry operation could not be applied; the server maps these to
/// wire error codes.
#[derive(Debug)]
pub enum RegistryError {
    /// The named tenant does not exist.
    NoSuchTenant,
    /// A tenant with that name already exists.
    TenantExists,
    /// The tenant spec was invalid (typed cause attached).
    Invalid(UStreamError),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::NoSuchTenant => write!(f, "no such tenant"),
            RegistryError::TenantExists => write!(f, "tenant already exists"),
            RegistryError::Invalid(e) => write!(f, "invalid tenant spec: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One lock shard. [`OrderedMutex`] pins every bucket at rank
/// [`ranks::SERVE_BUCKET`] with its bucket position as the index, so the
/// checkpoint's index-order sweep is provably legal while any out-of-order
/// pair of bucket acquisitions panics under the lock audit. The backing
/// primitive does not poison: a worker that panics mid-update leaves the
/// map serviceable (its tenant state was built from per-record validated
/// inputs, so it is still structurally sound).
type Bucket = OrderedMutex<BTreeMap<String, Tenant>>;

/// Sharded map of named tenants plus the admission policy they all run
/// under.
pub struct TenantRegistry {
    buckets: Vec<Bucket>,
    policy: AdmissionPolicy,
}

impl TenantRegistry {
    /// Creates an empty registry with `buckets` lock shards (minimum 1).
    pub fn new(buckets: usize, policy: AdmissionPolicy) -> Result<Self> {
        if let Some(problem) = policy.problem() {
            return Err(UStreamError::InvalidConfig(problem));
        }
        let n = buckets.max(1);
        Ok(Self {
            buckets: (0..n)
                .map(|i| {
                    Bucket::with_index(
                        "serve::bucket",
                        ranks::SERVE_BUCKET,
                        i as u32,
                        BTreeMap::new(),
                    )
                })
                .collect(),
            policy,
        })
    }

    /// The admission policy every tenant runs under.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    fn bucket_for(&self, name: &str) -> &Bucket {
        let idx = (fnv1a64(name.as_bytes()) % self.buckets.len() as u64) as usize;
        &self.buckets[idx]
    }

    /// Creates a tenant; fails if the name is taken or the spec invalid.
    pub fn create(&self, name: &str, spec: TenantSpec) -> std::result::Result<(), RegistryError> {
        let mut bucket = self.bucket_for(name).lock();
        if bucket.contains_key(name) {
            return Err(RegistryError::TenantExists);
        }
        let tenant = Tenant::new(spec).map_err(RegistryError::Invalid)?;
        bucket.insert(name.to_string(), tenant);
        Ok(())
    }

    /// Removes a tenant, dropping all its state. Returns `false` when no
    /// tenant had that name.
    pub fn remove(&self, name: &str) -> bool {
        self.bucket_for(name).lock().remove(name).is_some()
    }

    /// Runs `f` against the named tenant under its bucket lock.
    pub fn with_tenant<R>(
        &self,
        name: &str,
        f: impl FnOnce(&mut Tenant) -> R,
    ) -> std::result::Result<R, RegistryError> {
        let mut bucket = self.bucket_for(name).lock();
        match bucket.get_mut(name) {
            Some(tenant) => Ok(f(tenant)),
            None => Err(RegistryError::NoSuchTenant),
        }
    }

    /// Number of live tenants.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.lock().len()).sum()
    }

    /// Whether the registry holds no tenants.
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|b| b.lock().is_empty())
    }

    /// One governor sweep: polls every tenant's ingest rate against the
    /// quota and walks its ladder. Returns the stage transitions that
    /// fired, by tenant name.
    pub fn governor_sweep(&self, elapsed_secs: f64) -> Vec<(String, LoadStage, LoadStage, f64)> {
        let mut transitions = Vec::new();
        for bucket in &self.buckets {
            let mut guard = bucket.lock();
            for (name, tenant) in guard.iter_mut() {
                if let Some((from, to, pressure)) = tenant.governor_poll(elapsed_secs, &self.policy)
                {
                    transitions.push((name.clone(), from, to, pressure));
                }
            }
        }
        transitions
    }

    /// Flushes a final pyramid snapshot for every tenant (drain path).
    pub fn flush_all(&self) {
        for bucket in &self.buckets {
            for tenant in bucket.lock().values_mut() {
                tenant.flush_snapshot();
            }
        }
    }

    /// Locks all buckets in index order (a fixed total order, so two
    /// concurrent checkpoints cannot deadlock) and returns the guards.
    fn lock_all(&self) -> Vec<OrderedMutexGuard<'_, BTreeMap<String, Tenant>>> {
        self.buckets.iter().map(Bucket::lock).collect()
    }

    /// Serialises the entire tenant map at one instant.
    fn export_all(&self) -> Result<RegistryCheckpoint> {
        let guards = self.lock_all();
        let mut tenants = Vec::new();
        for guard in &guards {
            for (name, tenant) in guard.iter() {
                tenants.push(tenant.export(name)?);
            }
        }
        // Bucket count is a runtime knob, not state: sort so the file is
        // byte-stable regardless of sharding.
        tenants.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(RegistryCheckpoint {
            version: MAP_VERSION,
            tenants,
        })
    }

    /// Writes an atomic whole-map checkpoint to `path` (tmp + rename).
    /// Returns the file size in bytes.
    pub fn checkpoint(&self, path: &Path) -> Result<u64> {
        let ckpt = self.export_all()?;
        let bytes = encode_map(&ckpt)?;
        let tmp = path.with_extension("tmp");
        let mut file = std::fs::File::create(&tmp).map_err(UStreamError::Io)?;
        // lint:allow(blocking-io): local checkpoint file, not a socket — no peer can stall it
        file.write_all(&bytes).map_err(UStreamError::Io)?;
        file.sync_all().map_err(UStreamError::Io)?;
        std::fs::rename(&tmp, path).map_err(UStreamError::Io)?;
        Ok(bytes.len() as u64)
    }

    /// Rebuilds a registry (same sharding and policy knobs as `new`) from
    /// a checkpoint file written by [`TenantRegistry::checkpoint`].
    pub fn restore(path: &Path, buckets: usize, policy: AdmissionPolicy) -> Result<Self> {
        let bytes = std::fs::read(path).map_err(UStreamError::Io)?;
        let ckpt = decode_map(&bytes)?;
        let registry = TenantRegistry::new(buckets, policy)?;
        for tc in &ckpt.tenants {
            let tenant = Tenant::restore(tc)?;
            registry
                .bucket_for(&tc.name)
                .lock()
                .insert(tc.name.clone(), tenant);
        }
        Ok(registry)
    }
}

/// The persisted form of the whole tenant map.
#[derive(Debug, Serialize, Deserialize)]
pub struct RegistryCheckpoint {
    /// Format version ([`MAP_VERSION`]).
    pub version: u32,
    /// Every tenant's full state, sorted by name.
    pub tenants: Vec<TenantCheckpoint>,
}

/// Encodes a map checkpoint: `USRVMAP <version> <payload-bytes>
/// <fnv1a64-hex>\n` followed by the JSON payload.
pub fn encode_map(ckpt: &RegistryCheckpoint) -> Result<Vec<u8>> {
    let payload = serde_json::to_string(ckpt).map_err(|e| UStreamError::Serde(e.to_string()))?;
    let payload = payload.into_bytes();
    let header = format!(
        "{MAP_MAGIC} {MAP_VERSION} {} {:016x}\n",
        payload.len(),
        fnv1a64(&payload)
    );
    let mut out = header.into_bytes();
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Decodes a map checkpoint, verifying magic, version, declared length
/// and checksum before touching the JSON.
pub fn decode_map(bytes: &[u8]) -> Result<RegistryCheckpoint> {
    let nl = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| UStreamError::Checkpoint("map checkpoint: missing header line".into()))?;
    let header = std::str::from_utf8(&bytes[..nl])
        .map_err(|_| UStreamError::Checkpoint("map checkpoint: header is not UTF-8".into()))?;
    let mut parts = header.split_ascii_whitespace();
    let magic = parts.next().unwrap_or_default();
    if magic != MAP_MAGIC {
        return Err(UStreamError::Checkpoint(format!(
            "map checkpoint: bad magic {magic:?}"
        )));
    }
    let version: u32 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| UStreamError::Checkpoint("map checkpoint: bad version field".into()))?;
    if version != MAP_VERSION {
        return Err(UStreamError::Checkpoint(format!(
            "map checkpoint: unsupported version {version}"
        )));
    }
    let declared_len: usize = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| UStreamError::Checkpoint("map checkpoint: bad length field".into()))?;
    let declared_sum = parts
        .next()
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| UStreamError::Checkpoint("map checkpoint: bad checksum field".into()))?;
    let payload = &bytes[nl + 1..];
    if payload.len() != declared_len {
        return Err(UStreamError::Checkpoint(format!(
            "map checkpoint: payload is {} bytes, header declared {declared_len}",
            payload.len()
        )));
    }
    let actual = fnv1a64(payload);
    if actual != declared_sum {
        return Err(UStreamError::Checkpoint(format!(
            "map checkpoint: checksum mismatch (declared {declared_sum:016x}, got {actual:016x})"
        )));
    }
    let json = std::str::from_utf8(payload)
        .map_err(|_| UStreamError::Checkpoint("map checkpoint: payload is not UTF-8".into()))?;
    serde_json::from_str(json).map_err(|e| UStreamError::Serde(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::WirePoint;

    fn spec() -> TenantSpec {
        TenantSpec {
            snapshot_every: 16,
            ..TenantSpec::new(6, 2)
        }
    }

    fn feed(reg: &TenantRegistry, name: &str, n: u64) {
        let points: Vec<WirePoint> = (1..=n)
            .map(|t| WirePoint {
                values: vec![t as f64 % 7.0, -(t as f64 % 5.0)],
                errors: vec![0.1, 0.1],
                timestamp: t,
            })
            .collect();
        reg.with_tenant(name, |t| {
            let policy = AdmissionPolicy::default();
            t.ingest(points, &policy)
        })
        .unwrap();
    }

    fn tmp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("usrvmap_{tag}_{}.ckpt", std::process::id()));
        p
    }

    #[test]
    fn create_query_remove_lifecycle() {
        let reg = TenantRegistry::new(8, AdmissionPolicy::default()).unwrap();
        assert!(reg.is_empty());
        reg.create("a", spec()).unwrap();
        reg.create("b", spec()).unwrap();
        assert!(matches!(
            reg.create("a", spec()),
            Err(RegistryError::TenantExists)
        ));
        assert_eq!(reg.len(), 2);
        feed(&reg, "a", 100);
        let stats = reg.with_tenant("a", |t| t.stats()).unwrap();
        assert_eq!(stats.points_processed, 100);
        assert!(matches!(
            reg.with_tenant("ghost", |t| t.stats()),
            Err(RegistryError::NoSuchTenant)
        ));
        assert!(reg.remove("a"));
        assert!(!reg.remove("a"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn invalid_spec_is_a_typed_create_failure() {
        let reg = TenantRegistry::new(4, AdmissionPolicy::default()).unwrap();
        let mut bad = spec();
        bad.dims = 0;
        assert!(matches!(
            reg.create("x", bad),
            Err(RegistryError::Invalid(_))
        ));
        assert!(reg.is_empty());
    }

    #[test]
    fn checkpoint_restores_the_whole_map() {
        let reg = TenantRegistry::new(4, AdmissionPolicy::default()).unwrap();
        for name in ["alpha", "beta", "gamma"] {
            reg.create(name, spec()).unwrap();
            feed(&reg, name, 200);
        }
        let path = tmp_path("roundtrip");
        let bytes = reg.checkpoint(&path).unwrap();
        assert!(bytes > 0);
        // Restore with a *different* bucket count: sharding is a runtime
        // knob, not persisted state.
        let back = TenantRegistry::restore(&path, 2, AdmissionPolicy::default()).unwrap();
        assert_eq!(back.len(), 3);
        for name in ["alpha", "beta", "gamma"] {
            let a = reg.with_tenant(name, |t| t.stats()).unwrap();
            let b = back.with_tenant(name, |t| t.stats()).unwrap();
            assert_eq!(a, b, "tenant {name} diverged across restore");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_map_checkpoints_are_typed_failures() {
        let reg = TenantRegistry::new(2, AdmissionPolicy::default()).unwrap();
        reg.create("only", spec()).unwrap();
        let good = encode_map(&reg.export_all().unwrap()).unwrap();

        // Flip a payload byte: checksum mismatch.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        assert!(decode_map(&bad)
            .unwrap_err()
            .to_string()
            .contains("checksum"));

        // Truncate the payload: length mismatch.
        let mut short = good.clone();
        short.truncate(good.len() - 4);
        assert!(decode_map(&short).is_err());

        // Wrong magic.
        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(decode_map(&magic)
            .unwrap_err()
            .to_string()
            .contains("magic"));

        // No header newline at all.
        assert!(decode_map(b"USRVMAP 1 4").is_err());
    }
}
