//! The snapshot store proper, plus keyed cluster-set subtraction.

use crate::budget::{effective_l, error_bound_for, BudgetReport, SnapshotBudget};
use crate::pyramid::{snapshot_order, PyramidConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use ustream_common::{AdditiveFeature, Result, Timestamp, UStreamError};

/// Default payload measure: free of charge, disables byte accounting.
fn zero_measure<S>(_: &S) -> usize {
    0
}

/// A snapshot stored in the pyramid, tagged with its capture tick and order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredSnapshot<S> {
    /// Clock tick at which the snapshot was taken.
    pub time: Timestamp,
    /// The pyramid order it was filed under.
    pub order: u32,
    /// The snapshot payload (typically a [`ClusterSetSnapshot`]).
    pub data: S,
}

/// A pyramidal time-frame store of snapshots.
///
/// `record` decides by itself whether tick `t` deserves a snapshot (it does
/// if the caller provides one — every tick qualifies for order 0), files it
/// at its highest qualifying order, and evicts the oldest snapshot of that
/// order beyond the `α^l + 1` retention cap.
#[derive(Debug, Clone)]
pub struct SnapshotStore<S> {
    config: PyramidConfig,
    /// `orders[i]` holds snapshots of order `i`, oldest first.
    orders: Vec<VecDeque<StoredSnapshot<S>>>,
    taken: u64,
    /// Optional memory ceiling; see [`SnapshotBudget`].
    budget: Option<SnapshotBudget>,
    /// Estimates payload bytes of one snapshot (for the byte budget).
    measure: fn(&S) -> usize,
    /// Running estimate of retained payload bytes under `measure`.
    total_bytes: u64,
    /// Snapshots evicted by the budget, beyond pyramid retention.
    budget_evictions: u64,
    /// Smallest ring length left behind by a budget eviction, i.e. the
    /// worst per-order retention the budget has forced so far.
    worst_trimmed_len: Option<usize>,
}

impl<S: Clone> SnapshotStore<S> {
    /// Creates an empty store with the given geometry.
    pub fn new(config: PyramidConfig) -> Self {
        Self {
            config,
            orders: Vec::new(),
            taken: 0,
            budget: None,
            measure: zero_measure::<S>,
            total_bytes: 0,
            budget_evictions: 0,
            worst_trimmed_len: None,
        }
    }

    /// Installs (or replaces) a memory budget.
    ///
    /// `measure` estimates the payload bytes of one snapshot; it is applied
    /// to snapshots already retained so the byte accounting starts correct.
    /// Enforcement happens on this call and on every later [`record`].
    ///
    /// [`record`]: SnapshotStore::record
    pub fn set_budget(&mut self, budget: SnapshotBudget, measure: fn(&S) -> usize) {
        self.measure = measure;
        self.total_bytes = self
            .orders
            .iter()
            .flat_map(|r| r.iter())
            .map(|s| measure(&s.data) as u64)
            .sum();
        self.budget = Some(budget);
        self.enforce_budget();
    }

    /// The installed budget, if any.
    pub fn budget(&self) -> Option<&SnapshotBudget> {
        self.budget.as_ref()
    }

    /// Estimated payload bytes currently retained (0 until a budget with a
    /// byte measure is installed).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Snapshots evicted by the budget, beyond normal pyramid retention.
    pub fn budget_evictions(&self) -> u64 {
        self.budget_evictions
    }

    /// The horizon-error bound actually in force: the configured
    /// `1/α^{l−1}` until a budget eviction trims a ring below the pyramid
    /// capacity, the inflated `1/α^{l_eff−1}` afterwards.
    pub fn effective_error_bound(&self) -> f64 {
        match self.worst_trimmed_len {
            None => self.config.horizon_error_bound(),
            Some(len) => {
                let l_eff = effective_l(self.config.alpha, len);
                error_bound_for(self.config.alpha, l_eff.min(self.config.l))
                    .max(self.config.horizon_error_bound())
            }
        }
    }

    /// Budget accounting in one view (see [`BudgetReport`]).
    pub fn budget_report(&self) -> BudgetReport {
        let configured = self.config.horizon_error_bound();
        let effective = self.effective_error_bound();
        BudgetReport {
            evictions: self.budget_evictions,
            retained_bytes: self.total_bytes,
            retained: self.len(),
            effective_error_bound: effective,
            error_inflation: effective / configured,
        }
    }

    fn over_budget(&self) -> bool {
        self.budget
            .as_ref()
            .is_some_and(|b| b.exceeded_by(self.len(), self.total_bytes))
    }

    /// Evicts until the budget holds. Victims come from the fullest ring
    /// (ties toward the lowest order) so orders degrade evenly; rings are
    /// not emptied while any ring still holds > 1 snapshot, and only when
    /// every ring is down to its last snapshot does the globally oldest
    /// one go — the configured ceiling is a hard limit.
    fn enforce_budget(&mut self) {
        while self.over_budget() {
            let mut victim: Option<usize> = None;
            for (i, ring) in self.orders.iter().enumerate() {
                if ring.len() > 1 && victim.is_none_or(|v| ring.len() > self.orders[v].len()) {
                    victim = Some(i);
                }
            }
            let victim = victim.or_else(|| {
                self.orders
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| !r.is_empty())
                    .min_by_key(|(_, r)| r.front().map(|s| s.time))
                    .map(|(i, _)| i)
            });
            let Some(idx) = victim else {
                return; // store empty; nothing left to evict
            };
            if let Some(old) = self.orders[idx].pop_front() {
                self.total_bytes = self
                    .total_bytes
                    .saturating_sub((self.measure)(&old.data) as u64);
                self.budget_evictions += 1;
                let left = self.orders[idx].len();
                if self.worst_trimmed_len.is_none_or(|w| left < w) {
                    self.worst_trimmed_len = Some(left);
                }
            }
        }
    }

    /// Store geometry.
    pub fn config(&self) -> &PyramidConfig {
        &self.config
    }

    /// Total snapshots currently retained.
    pub fn len(&self) -> usize {
        self.orders.iter().map(VecDeque::len).sum()
    }

    /// Whether no snapshots are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of snapshots ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.taken
    }

    /// Records the snapshot taken at tick `t`.
    ///
    /// Callers normally invoke this once per tick (or once per batch of
    /// ticks); the store files the snapshot at order `max{i : α^i | t}` and
    /// enforces per-order retention.
    pub fn record(&mut self, t: Timestamp, data: S) {
        let bytes = (self.measure)(&data) as u64;
        let order = snapshot_order(t, self.config.alpha);
        let order_idx = order as usize;
        if self.orders.len() <= order_idx {
            self.orders.resize_with(order_idx + 1, VecDeque::new);
        }
        let measure = self.measure;
        let mut freed = 0u64;
        let ring = &mut self.orders[order_idx];
        // Monotone capture times within an order; replace on duplicate tick.
        if let Some(last) = ring.back() {
            debug_assert!(last.time <= t, "snapshots must be recorded in order");
            if last.time == t {
                if let Some(old) = ring.pop_back() {
                    freed += measure(&old.data) as u64;
                }
            }
        }
        ring.push_back(StoredSnapshot {
            time: t,
            order,
            data,
        });
        let cap = self.config.per_order_capacity();
        while ring.len() > cap {
            if let Some(old) = ring.pop_front() {
                freed += measure(&old.data) as u64;
            }
        }
        self.total_bytes = (self.total_bytes + bytes).saturating_sub(freed);
        self.taken += 1;
        self.enforce_budget();
    }

    /// The most recent stored snapshot with `time ≤ t`, across all orders.
    ///
    /// This is the lookup the horizon query needs: asking for horizon `h` at
    /// current time `t_c` resolves to `find_at_or_before(t_c − h)`, and the
    /// pyramid geometry guarantees the returned snapshot is at most a factor
    /// `1/α^{l−1}` older than requested (while the target tick is still
    /// within retention).
    pub fn find_at_or_before(&self, t: Timestamp) -> Option<&StoredSnapshot<S>> {
        let mut best: Option<&StoredSnapshot<S>> = None;
        for ring in &self.orders {
            // Rings are sorted by time; binary-search the last element ≤ t.
            let (lo, hi) = ring.as_slices();
            for slice in [lo, hi] {
                let idx = slice.partition_point(|s| s.time <= t);
                if idx > 0 {
                    let cand = &slice[idx - 1];
                    if best.is_none_or(|b| cand.time > b.time) {
                        best = Some(cand);
                    }
                }
            }
        }
        best
    }

    /// The oldest snapshot still retained.
    pub fn oldest(&self) -> Option<&StoredSnapshot<S>> {
        self.orders
            .iter()
            .filter_map(|r| r.front())
            .min_by_key(|s| s.time)
    }

    /// The most recent snapshot retained.
    pub fn newest(&self) -> Option<&StoredSnapshot<S>> {
        self.orders
            .iter()
            .filter_map(|r| r.back())
            .max_by_key(|s| s.time)
    }

    /// All retained snapshots ordered by capture time.
    pub fn iter_chronological(&self) -> impl Iterator<Item = &StoredSnapshot<S>> {
        let mut all: Vec<&StoredSnapshot<S>> = self.orders.iter().flat_map(|r| r.iter()).collect();
        all.sort_by_key(|s| s.time);
        all.into_iter()
    }

    /// Resolves a horizon query: returns the stored snapshot to subtract for
    /// horizon `h` at current time `now`, or an error when the horizon
    /// reaches past the retained history.
    pub fn horizon_base(&self, now: Timestamp, h: u64) -> Result<&StoredSnapshot<S>> {
        let target = now.saturating_sub(h);
        self.find_at_or_before(target)
            .ok_or(UStreamError::HorizonUnavailable { requested: h })
    }
}

/// A snapshot of a complete micro-cluster set: feature vectors keyed by
/// stable cluster id.
///
/// The id keying is what makes the paper's subtraction semantics precise:
/// "the statistics for each micro-cluster in `S(t_c − h')` is subtracted from
/// the statistics of the *corresponding* micro-clusters in `S(t_c)`.
/// Micro-clusters which are removed ... are discarded, and micro-clusters
/// which are created in the period are retained in their current form."
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSetSnapshot<F> {
    /// Feature vectors keyed by cluster id.
    pub clusters: BTreeMap<u64, F>,
}

impl<F> Default for ClusterSetSnapshot<F> {
    fn default() -> Self {
        Self {
            clusters: BTreeMap::new(),
        }
    }
}

impl<F: AdditiveFeature> ClusterSetSnapshot<F> {
    /// Builds a snapshot from `(id, feature)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, F)>) -> Self {
        Self {
            clusters: pairs.into_iter().collect(),
        }
    }

    /// Number of micro-clusters captured.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the snapshot holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Horizon reconstruction: statistics of the window `(t_past, t_now]`.
    ///
    /// For each cluster id in `self` (the current snapshot): if the id also
    /// exists in `past`, its past statistics are subtracted; otherwise the
    /// cluster was created inside the window and is kept as-is. Ids that
    /// exist only in `past` were evicted during the window and are
    /// discarded. Clusters that end up empty (no points in the window) are
    /// dropped.
    pub fn subtract_past(&self, past: &ClusterSetSnapshot<F>) -> ClusterSetSnapshot<F> {
        let mut out = BTreeMap::new();
        for (id, current) in &self.clusters {
            let mut f = current.clone();
            if let Some(old) = past.clusters.get(id) {
                f.subtract(old);
            }
            if !f.is_empty() {
                out.insert(*id, f);
            }
        }
        ClusterSetSnapshot { clusters: out }
    }

    /// Total point count (or weight) across all captured clusters.
    pub fn total_count(&self) -> f64 {
        self.clusters.values().map(AdditiveFeature::count).sum()
    }

    /// Estimated resident bytes of this snapshot, suitable as the measure
    /// for [`SnapshotStore::set_budget`].
    ///
    /// Counts the inline feature struct, the map-entry overhead, and the
    /// per-dimension heap vectors an additive feature typically carries
    /// (an ECF holds CF1, EF2, and W — three `f64` per dimension). An
    /// estimate, not an allocator audit: it is monotone in cluster count
    /// and dimensionality, which is all budget enforcement needs.
    pub fn approx_bytes(&self) -> usize {
        const MAP_NODE_OVERHEAD: usize = 48;
        let per_entry = std::mem::size_of::<u64>() + std::mem::size_of::<F>() + MAP_NODE_OVERHEAD;
        let heap: usize = self.clusters.values().map(|f| f.dims() * 3 * 8).sum();
        std::mem::size_of::<Self>() + self.clusters.len() * per_entry + heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::Timestamp as Ts;

    /// Minimal additive feature for store tests: a 1-d sum + count.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Toy {
        sum: f64,
        n: f64,
        t: Ts,
    }

    impl Toy {
        fn new(sum: f64, n: f64, t: Ts) -> Self {
            Self { sum, n, t }
        }
    }

    impl AdditiveFeature for Toy {
        fn dims(&self) -> usize {
            1
        }
        fn count(&self) -> f64 {
            self.n
        }
        fn last_update(&self) -> Ts {
            self.t
        }
        fn merge(&mut self, other: &Self) {
            self.sum += other.sum;
            self.n += other.n;
            self.t = self.t.max(other.t);
        }
        fn subtract(&mut self, other: &Self) {
            self.sum -= other.sum;
            self.n = (self.n - other.n).max(0.0);
        }
        fn centroid(&self) -> Vec<f64> {
            vec![self.sum / self.n.max(1e-12)]
        }
    }

    fn store_with(ticks: impl IntoIterator<Item = Ts>) -> SnapshotStore<Ts> {
        let mut s = SnapshotStore::new(PyramidConfig::new(2, 2).unwrap());
        for t in ticks {
            s.record(t, t);
        }
        s
    }

    #[test]
    fn files_by_highest_order() {
        let s = store_with(1..=8);
        // order 0: odd ticks; order 1: 2,6; order 2: 4; order 3: 8.
        assert_eq!(
            s.orders[0].iter().map(|x| x.time).collect::<Vec<_>>(),
            vec![1, 3, 5, 7]
        );
        assert_eq!(
            s.orders[1].iter().map(|x| x.time).collect::<Vec<_>>(),
            vec![2, 6]
        );
        assert_eq!(
            s.orders[2].iter().map(|x| x.time).collect::<Vec<_>>(),
            vec![4]
        );
        assert_eq!(
            s.orders[3].iter().map(|x| x.time).collect::<Vec<_>>(),
            vec![8]
        );
    }

    #[test]
    fn retention_cap_per_order() {
        // alpha=2, l=2 → 5 snapshots per order.
        let s = store_with(1..=100);
        for ring in &s.orders {
            assert!(ring.len() <= 5, "ring too long: {}", ring.len());
        }
        // Order 0 keeps the 5 most recent odd ticks.
        assert_eq!(
            s.orders[0].iter().map(|x| x.time).collect::<Vec<_>>(),
            vec![91, 93, 95, 97, 99]
        );
    }

    #[test]
    fn find_at_or_before_exact_and_between() {
        let s = store_with(1..=32);
        assert_eq!(s.find_at_or_before(32).unwrap().time, 32);
        assert_eq!(s.find_at_or_before(31).unwrap().time, 31);
        // Tick 17 was evicted from order 0 (only 23..31 odd retained);
        // the best ≤ 18 is 18? 18 = 2·9 → order 1. Order-1 ring holds
        // last 5 of {2,6,10,14,18,22,26,30} = {14,18,22,26,30}.
        assert_eq!(s.find_at_or_before(18).unwrap().time, 18);
        assert_eq!(s.find_at_or_before(17).unwrap().time, 16);
    }

    #[test]
    fn find_before_start_returns_none() {
        let s = store_with(5..=10);
        assert!(s.find_at_or_before(4).is_none());
    }

    #[test]
    fn oldest_and_newest() {
        let s = store_with(1..=64);
        assert_eq!(s.newest().unwrap().time, 64);
        // Oldest retained is the order-⌈max⌉ snapshot: 64 is order 6, but
        // earlier high-order snapshots (16, 32, 48) persist in their rings.
        let oldest = s.oldest().unwrap().time;
        assert!(oldest <= 16, "oldest retained: {oldest}");
    }

    #[test]
    fn chronological_iteration_sorted() {
        let s = store_with(1..=40);
        let times: Vec<Ts> = s.iter_chronological().map(|x| x.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert!(!times.is_empty());
    }

    #[test]
    fn horizon_guarantee_holds_within_retention() {
        // alpha=2, l=4 → 17 per order; error bound 1/8.
        let cfg = PyramidConfig::new(2, 4).unwrap();
        let mut s = SnapshotStore::new(cfg);
        let now: Ts = 1000;
        for t in 1..=now {
            s.record(t, t);
        }
        let bound = cfg.horizon_error_bound();
        // Horizons within the well-covered range.
        for h in [1u64, 2, 5, 10, 17, 33, 100, 250, 500, 900] {
            let base = s.horizon_base(now, h).unwrap();
            let h_eff = now - base.time;
            assert!(h_eff >= h, "h_eff {h_eff} < h {h}");
            let rel = (h_eff - h) as f64 / h as f64;
            assert!(
                rel <= bound + 1e-9,
                "horizon {h}: effective {h_eff}, rel error {rel} > bound {bound}"
            );
        }
    }

    #[test]
    fn horizon_unavailable_error() {
        let s = store_with(990..=1000);
        let err = s.horizon_base(1000, 500).unwrap_err();
        assert!(matches!(
            err,
            UStreamError::HorizonUnavailable { requested: 500 }
        ));
    }

    #[test]
    fn duplicate_tick_replaces() {
        let mut s = SnapshotStore::new(PyramidConfig::new(2, 2).unwrap());
        s.record(3, 30);
        s.record(3, 31);
        assert_eq!(s.len(), 1);
        assert_eq!(s.find_at_or_before(3).unwrap().data, 31);
    }

    #[test]
    fn cluster_set_subtraction_semantics() {
        // Past: clusters 1, 2. Current: clusters 1 (grown), 3 (new).
        let past = ClusterSetSnapshot::from_pairs([
            (1, Toy::new(10.0, 5.0, 100)),
            (2, Toy::new(4.0, 2.0, 90)),
        ]);
        let current = ClusterSetSnapshot::from_pairs([
            (1, Toy::new(30.0, 9.0, 200)),
            (3, Toy::new(7.0, 3.0, 150)),
        ]);
        let window = current.subtract_past(&past);
        // Cluster 1: in-window contribution only.
        assert_eq!(window.clusters[&1].sum, 20.0);
        assert_eq!(window.clusters[&1].n, 4.0);
        // Cluster 2 (evicted in window): discarded.
        assert!(!window.clusters.contains_key(&2));
        // Cluster 3 (created in window): retained as-is.
        assert_eq!(window.clusters[&3].sum, 7.0);
        assert_eq!(window.total_count(), 7.0);
    }

    #[test]
    fn subtraction_drops_empty_clusters() {
        let past = ClusterSetSnapshot::from_pairs([(1, Toy::new(10.0, 5.0, 100))]);
        let current = ClusterSetSnapshot::from_pairs([(1, Toy::new(10.0, 5.0, 100))]);
        let window = current.subtract_past(&past);
        assert!(window.is_empty());
    }

    #[test]
    fn snapshot_budget_caps_count() {
        let mut s = SnapshotStore::new(PyramidConfig::new(2, 4).unwrap());
        s.set_budget(SnapshotBudget::by_snapshots(20), |_| 0);
        for t in 1..=10_000u64 {
            s.record(t, t);
            assert!(s.len() <= 20, "budget exceeded at t={t}: {}", s.len());
        }
        assert!(s.budget_evictions() > 0);
        // Queries keep working: the newest snapshot is always reachable.
        assert_eq!(s.find_at_or_before(10_000).unwrap().time, 10_000);
        assert!(s.horizon_base(10_000, 4).is_ok());
    }

    #[test]
    fn snapshot_budget_caps_bytes() {
        let mut s = SnapshotStore::new(PyramidConfig::new(2, 4).unwrap());
        // Every payload "costs" 100 bytes; ceiling 1 kB → ≤ 10 snapshots.
        s.set_budget(SnapshotBudget::by_bytes(1000), |_| 100);
        for t in 1..=5_000u64 {
            s.record(t, t);
            assert!(
                s.total_bytes() <= 1000,
                "byte budget exceeded at t={t}: {}",
                s.total_bytes()
            );
        }
        assert!(s.len() <= 10);
    }

    #[test]
    fn budget_eviction_reports_error_inflation() {
        let cfg = PyramidConfig::new(2, 4).unwrap(); // bound 1/8, cap 17/order
        let mut s = SnapshotStore::new(cfg);
        for t in 1..=4096u64 {
            s.record(t, t);
        }
        let unconstrained = s.budget_report();
        assert_eq!(unconstrained.evictions, 0);
        assert!((unconstrained.error_inflation - 1.0).abs() < 1e-12);
        assert!((unconstrained.effective_error_bound - cfg.horizon_error_bound()).abs() < 1e-12);

        // Now squeeze hard: trimming rings below α^l + 1 must inflate the
        // reported bound (l_eff < l ⇒ bound > 1/8).
        s.set_budget(SnapshotBudget::by_snapshots(24), |_| 0);
        let squeezed = s.budget_report();
        assert!(squeezed.retained <= 24);
        assert!(squeezed.evictions > 0);
        assert!(squeezed.effective_error_bound > cfg.horizon_error_bound());
        assert!(squeezed.error_inflation > 1.0);
    }

    #[test]
    fn budget_never_exceeded_even_at_one_per_ring() {
        // Budget below the number of nonempty rings forces the global-oldest
        // fallback; the ceiling must still hold and queries still answer.
        let mut s = SnapshotStore::new(PyramidConfig::new(2, 3).unwrap());
        s.set_budget(SnapshotBudget::by_snapshots(3), |_| 0);
        for t in 1..=1024u64 {
            s.record(t, t);
            assert!(s.len() <= 3, "t={t}: {}", s.len());
        }
        assert!(s.find_at_or_before(1024).is_some());
    }

    #[test]
    fn set_budget_accounts_existing_payloads() {
        let mut s = SnapshotStore::new(PyramidConfig::new(2, 2).unwrap());
        for t in 1..=8u64 {
            s.record(t, t);
        }
        assert_eq!(s.total_bytes(), 0); // no measure installed yet
        s.set_budget(SnapshotBudget::by_bytes(u64::MAX), |_| 10);
        assert_eq!(s.total_bytes(), s.len() as u64 * 10);
    }

    #[test]
    fn approx_bytes_scales_with_clusters_and_dims() {
        let one = ClusterSetSnapshot::from_pairs([(1, Toy::new(1.0, 1.0, 1))]);
        let two = ClusterSetSnapshot::from_pairs([
            (1, Toy::new(1.0, 1.0, 1)),
            (2, Toy::new(2.0, 1.0, 1)),
        ]);
        assert!(two.approx_bytes() > one.approx_bytes());
        assert!(one.approx_bytes() > 0);
    }
}
