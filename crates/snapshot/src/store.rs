//! The snapshot store proper, plus keyed cluster-set subtraction.

use crate::pyramid::{snapshot_order, PyramidConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use ustream_common::{AdditiveFeature, Result, Timestamp, UStreamError};

/// A snapshot stored in the pyramid, tagged with its capture tick and order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredSnapshot<S> {
    /// Clock tick at which the snapshot was taken.
    pub time: Timestamp,
    /// The pyramid order it was filed under.
    pub order: u32,
    /// The snapshot payload (typically a [`ClusterSetSnapshot`]).
    pub data: S,
}

/// A pyramidal time-frame store of snapshots.
///
/// `record` decides by itself whether tick `t` deserves a snapshot (it does
/// if the caller provides one — every tick qualifies for order 0), files it
/// at its highest qualifying order, and evicts the oldest snapshot of that
/// order beyond the `α^l + 1` retention cap.
#[derive(Debug, Clone)]
pub struct SnapshotStore<S> {
    config: PyramidConfig,
    /// `orders[i]` holds snapshots of order `i`, oldest first.
    orders: Vec<VecDeque<StoredSnapshot<S>>>,
    taken: u64,
}

impl<S: Clone> SnapshotStore<S> {
    /// Creates an empty store with the given geometry.
    pub fn new(config: PyramidConfig) -> Self {
        Self {
            config,
            orders: Vec::new(),
            taken: 0,
        }
    }

    /// Store geometry.
    pub fn config(&self) -> &PyramidConfig {
        &self.config
    }

    /// Total snapshots currently retained.
    pub fn len(&self) -> usize {
        self.orders.iter().map(VecDeque::len).sum()
    }

    /// Whether no snapshots are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of snapshots ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.taken
    }

    /// Records the snapshot taken at tick `t`.
    ///
    /// Callers normally invoke this once per tick (or once per batch of
    /// ticks); the store files the snapshot at order `max{i : α^i | t}` and
    /// enforces per-order retention.
    pub fn record(&mut self, t: Timestamp, data: S) {
        let order = snapshot_order(t, self.config.alpha);
        let order_idx = order as usize;
        if self.orders.len() <= order_idx {
            self.orders.resize_with(order_idx + 1, VecDeque::new);
        }
        let ring = &mut self.orders[order_idx];
        // Monotone capture times within an order; replace on duplicate tick.
        if let Some(last) = ring.back() {
            debug_assert!(last.time <= t, "snapshots must be recorded in order");
            if last.time == t {
                ring.pop_back();
            }
        }
        ring.push_back(StoredSnapshot {
            time: t,
            order,
            data,
        });
        let cap = self.config.per_order_capacity();
        while ring.len() > cap {
            ring.pop_front();
        }
        self.taken += 1;
    }

    /// The most recent stored snapshot with `time ≤ t`, across all orders.
    ///
    /// This is the lookup the horizon query needs: asking for horizon `h` at
    /// current time `t_c` resolves to `find_at_or_before(t_c − h)`, and the
    /// pyramid geometry guarantees the returned snapshot is at most a factor
    /// `1/α^{l−1}` older than requested (while the target tick is still
    /// within retention).
    pub fn find_at_or_before(&self, t: Timestamp) -> Option<&StoredSnapshot<S>> {
        let mut best: Option<&StoredSnapshot<S>> = None;
        for ring in &self.orders {
            // Rings are sorted by time; binary-search the last element ≤ t.
            let (lo, hi) = ring.as_slices();
            for slice in [lo, hi] {
                let idx = slice.partition_point(|s| s.time <= t);
                if idx > 0 {
                    let cand = &slice[idx - 1];
                    if best.is_none_or(|b| cand.time > b.time) {
                        best = Some(cand);
                    }
                }
            }
        }
        best
    }

    /// The oldest snapshot still retained.
    pub fn oldest(&self) -> Option<&StoredSnapshot<S>> {
        self.orders
            .iter()
            .filter_map(|r| r.front())
            .min_by_key(|s| s.time)
    }

    /// The most recent snapshot retained.
    pub fn newest(&self) -> Option<&StoredSnapshot<S>> {
        self.orders
            .iter()
            .filter_map(|r| r.back())
            .max_by_key(|s| s.time)
    }

    /// All retained snapshots ordered by capture time.
    pub fn iter_chronological(&self) -> impl Iterator<Item = &StoredSnapshot<S>> {
        let mut all: Vec<&StoredSnapshot<S>> = self.orders.iter().flat_map(|r| r.iter()).collect();
        all.sort_by_key(|s| s.time);
        all.into_iter()
    }

    /// Resolves a horizon query: returns the stored snapshot to subtract for
    /// horizon `h` at current time `now`, or an error when the horizon
    /// reaches past the retained history.
    pub fn horizon_base(&self, now: Timestamp, h: u64) -> Result<&StoredSnapshot<S>> {
        let target = now.saturating_sub(h);
        self.find_at_or_before(target)
            .ok_or(UStreamError::HorizonUnavailable { requested: h })
    }
}

/// A snapshot of a complete micro-cluster set: feature vectors keyed by
/// stable cluster id.
///
/// The id keying is what makes the paper's subtraction semantics precise:
/// "the statistics for each micro-cluster in `S(t_c − h')` is subtracted from
/// the statistics of the *corresponding* micro-clusters in `S(t_c)`.
/// Micro-clusters which are removed ... are discarded, and micro-clusters
/// which are created in the period are retained in their current form."
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSetSnapshot<F> {
    /// Feature vectors keyed by cluster id.
    pub clusters: BTreeMap<u64, F>,
}

impl<F> Default for ClusterSetSnapshot<F> {
    fn default() -> Self {
        Self {
            clusters: BTreeMap::new(),
        }
    }
}

impl<F: AdditiveFeature> ClusterSetSnapshot<F> {
    /// Builds a snapshot from `(id, feature)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u64, F)>) -> Self {
        Self {
            clusters: pairs.into_iter().collect(),
        }
    }

    /// Number of micro-clusters captured.
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether the snapshot holds no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Horizon reconstruction: statistics of the window `(t_past, t_now]`.
    ///
    /// For each cluster id in `self` (the current snapshot): if the id also
    /// exists in `past`, its past statistics are subtracted; otherwise the
    /// cluster was created inside the window and is kept as-is. Ids that
    /// exist only in `past` were evicted during the window and are
    /// discarded. Clusters that end up empty (no points in the window) are
    /// dropped.
    pub fn subtract_past(&self, past: &ClusterSetSnapshot<F>) -> ClusterSetSnapshot<F> {
        let mut out = BTreeMap::new();
        for (id, current) in &self.clusters {
            let mut f = current.clone();
            if let Some(old) = past.clusters.get(id) {
                f.subtract(old);
            }
            if !f.is_empty() {
                out.insert(*id, f);
            }
        }
        ClusterSetSnapshot { clusters: out }
    }

    /// Total point count (or weight) across all captured clusters.
    pub fn total_count(&self) -> f64 {
        self.clusters.values().map(AdditiveFeature::count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::Timestamp as Ts;

    /// Minimal additive feature for store tests: a 1-d sum + count.
    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Toy {
        sum: f64,
        n: f64,
        t: Ts,
    }

    impl Toy {
        fn new(sum: f64, n: f64, t: Ts) -> Self {
            Self { sum, n, t }
        }
    }

    impl AdditiveFeature for Toy {
        fn dims(&self) -> usize {
            1
        }
        fn count(&self) -> f64 {
            self.n
        }
        fn last_update(&self) -> Ts {
            self.t
        }
        fn merge(&mut self, other: &Self) {
            self.sum += other.sum;
            self.n += other.n;
            self.t = self.t.max(other.t);
        }
        fn subtract(&mut self, other: &Self) {
            self.sum -= other.sum;
            self.n = (self.n - other.n).max(0.0);
        }
        fn centroid(&self) -> Vec<f64> {
            vec![self.sum / self.n.max(1e-12)]
        }
    }

    fn store_with(ticks: impl IntoIterator<Item = Ts>) -> SnapshotStore<Ts> {
        let mut s = SnapshotStore::new(PyramidConfig::new(2, 2).unwrap());
        for t in ticks {
            s.record(t, t);
        }
        s
    }

    #[test]
    fn files_by_highest_order() {
        let s = store_with(1..=8);
        // order 0: odd ticks; order 1: 2,6; order 2: 4; order 3: 8.
        assert_eq!(
            s.orders[0].iter().map(|x| x.time).collect::<Vec<_>>(),
            vec![1, 3, 5, 7]
        );
        assert_eq!(
            s.orders[1].iter().map(|x| x.time).collect::<Vec<_>>(),
            vec![2, 6]
        );
        assert_eq!(
            s.orders[2].iter().map(|x| x.time).collect::<Vec<_>>(),
            vec![4]
        );
        assert_eq!(
            s.orders[3].iter().map(|x| x.time).collect::<Vec<_>>(),
            vec![8]
        );
    }

    #[test]
    fn retention_cap_per_order() {
        // alpha=2, l=2 → 5 snapshots per order.
        let s = store_with(1..=100);
        for ring in &s.orders {
            assert!(ring.len() <= 5, "ring too long: {}", ring.len());
        }
        // Order 0 keeps the 5 most recent odd ticks.
        assert_eq!(
            s.orders[0].iter().map(|x| x.time).collect::<Vec<_>>(),
            vec![91, 93, 95, 97, 99]
        );
    }

    #[test]
    fn find_at_or_before_exact_and_between() {
        let s = store_with(1..=32);
        assert_eq!(s.find_at_or_before(32).unwrap().time, 32);
        assert_eq!(s.find_at_or_before(31).unwrap().time, 31);
        // Tick 17 was evicted from order 0 (only 23..31 odd retained);
        // the best ≤ 18 is 18? 18 = 2·9 → order 1. Order-1 ring holds
        // last 5 of {2,6,10,14,18,22,26,30} = {14,18,22,26,30}.
        assert_eq!(s.find_at_or_before(18).unwrap().time, 18);
        assert_eq!(s.find_at_or_before(17).unwrap().time, 16);
    }

    #[test]
    fn find_before_start_returns_none() {
        let s = store_with(5..=10);
        assert!(s.find_at_or_before(4).is_none());
    }

    #[test]
    fn oldest_and_newest() {
        let s = store_with(1..=64);
        assert_eq!(s.newest().unwrap().time, 64);
        // Oldest retained is the order-⌈max⌉ snapshot: 64 is order 6, but
        // earlier high-order snapshots (16, 32, 48) persist in their rings.
        let oldest = s.oldest().unwrap().time;
        assert!(oldest <= 16, "oldest retained: {oldest}");
    }

    #[test]
    fn chronological_iteration_sorted() {
        let s = store_with(1..=40);
        let times: Vec<Ts> = s.iter_chronological().map(|x| x.time).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert!(!times.is_empty());
    }

    #[test]
    fn horizon_guarantee_holds_within_retention() {
        // alpha=2, l=4 → 17 per order; error bound 1/8.
        let cfg = PyramidConfig::new(2, 4).unwrap();
        let mut s = SnapshotStore::new(cfg);
        let now: Ts = 1000;
        for t in 1..=now {
            s.record(t, t);
        }
        let bound = cfg.horizon_error_bound();
        // Horizons within the well-covered range.
        for h in [1u64, 2, 5, 10, 17, 33, 100, 250, 500, 900] {
            let base = s.horizon_base(now, h).unwrap();
            let h_eff = now - base.time;
            assert!(h_eff >= h, "h_eff {h_eff} < h {h}");
            let rel = (h_eff - h) as f64 / h as f64;
            assert!(
                rel <= bound + 1e-9,
                "horizon {h}: effective {h_eff}, rel error {rel} > bound {bound}"
            );
        }
    }

    #[test]
    fn horizon_unavailable_error() {
        let s = store_with(990..=1000);
        let err = s.horizon_base(1000, 500).unwrap_err();
        assert!(matches!(
            err,
            UStreamError::HorizonUnavailable { requested: 500 }
        ));
    }

    #[test]
    fn duplicate_tick_replaces() {
        let mut s = SnapshotStore::new(PyramidConfig::new(2, 2).unwrap());
        s.record(3, 30);
        s.record(3, 31);
        assert_eq!(s.len(), 1);
        assert_eq!(s.find_at_or_before(3).unwrap().data, 31);
    }

    #[test]
    fn cluster_set_subtraction_semantics() {
        // Past: clusters 1, 2. Current: clusters 1 (grown), 3 (new).
        let past = ClusterSetSnapshot::from_pairs([
            (1, Toy::new(10.0, 5.0, 100)),
            (2, Toy::new(4.0, 2.0, 90)),
        ]);
        let current = ClusterSetSnapshot::from_pairs([
            (1, Toy::new(30.0, 9.0, 200)),
            (3, Toy::new(7.0, 3.0, 150)),
        ]);
        let window = current.subtract_past(&past);
        // Cluster 1: in-window contribution only.
        assert_eq!(window.clusters[&1].sum, 20.0);
        assert_eq!(window.clusters[&1].n, 4.0);
        // Cluster 2 (evicted in window): discarded.
        assert!(!window.clusters.contains_key(&2));
        // Cluster 3 (created in window): retained as-is.
        assert_eq!(window.clusters[&3].sum, 7.0);
        assert_eq!(window.total_count(), 7.0);
    }

    #[test]
    fn subtraction_drops_empty_clusters() {
        let past = ClusterSetSnapshot::from_pairs([(1, Toy::new(10.0, 5.0, 100))]);
        let current = ClusterSetSnapshot::from_pairs([(1, Toy::new(10.0, 5.0, 100))]);
        let window = current.subtract_past(&past);
        assert!(window.is_empty());
    }
}
