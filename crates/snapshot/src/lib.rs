//! # ustream-snapshot
//!
//! The *pyramidal time frame* used by CluStream and UMicro (§II-D of the
//! ICDE'08 paper) to store micro-cluster snapshots at geometrically spaced
//! intervals:
//!
//! * snapshots of order `i` are taken whenever the clock is divisible by
//!   `α^i` (and stored at the *highest* order they qualify for);
//! * at most `α^l + 1` snapshots are retained per order;
//! * for any user horizon `h` there is a stored snapshot at `t_c − h'` with
//!   `h ≤ h' ≤ (1 + 1/α^{l−1})·h`, so horizon statistics can be
//!   reconstructed by the subtractive property with bounded error.
//!
//! The store is generic over the snapshot payload, and
//! [`ClusterSetSnapshot`] implements the paper's keyed subtraction semantics
//! for any [`ustream_common::AdditiveFeature`]: clusters removed during the
//! horizon are discarded, clusters created during the horizon are retained
//! as-is.

pub mod budget;
pub mod merge;
pub mod persist;
pub mod pyramid;
pub mod store;
pub mod tracker;

pub use budget::{BudgetReport, SnapshotBudget};
pub use merge::{merge_namespaced, namespaced_id, shard_of_id, SHARD_ID_BITS};
pub use pyramid::{snapshot_order, PyramidConfig};
pub use store::{ClusterSetSnapshot, SnapshotStore, StoredSnapshot};
pub use tracker::HorizonTracker;
