//! Memory governance for the pyramidal snapshot store.
//!
//! The pyramid's per-order retention cap (`α^l + 1`) bounds the snapshot
//! count only as a function of the geometry; on a long-running engine the
//! *payload* of each snapshot (a full micro-cluster set) is what dominates
//! memory. [`SnapshotBudget`] adds an operator-facing ceiling — max bytes
//! and/or max snapshots — that the store enforces with order-aware eviction:
//!
//! * victims are popped from the *front* (oldest) of the **fullest** ring,
//!   ties broken toward the lowest order, so all orders degrade evenly and
//!   the most recent snapshot of every order survives longest;
//! * a ring is never emptied while any ring still holds more than one
//!   snapshot, keeping at least one reachable base per order for horizon
//!   queries;
//! * once every ring is down to one snapshot, the globally oldest snapshot
//!   is dropped — the hard budget always wins.
//!
//! Trimming a ring below `α^l + 1` weakens the paper's horizon-error
//! guarantee for horizons that resolve through that order: retaining `m`
//! snapshots per order behaves like an effective `l_eff = ⌊log_α(m − 1)⌋`,
//! inflating the relative-error bound from `1/α^{l−1}` to `1/α^{l_eff−1}`.
//! The store tracks the worst (smallest) post-eviction ring length and
//! reports the inflated bound so callers can see exactly what the budget
//! cost them.

use serde::{Deserialize, Serialize};

/// A memory ceiling for a [`crate::SnapshotStore`].
///
/// Either limit may be left unset; an unset limit never triggers eviction.
/// A budget with both limits unset is valid and inert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SnapshotBudget {
    /// Maximum estimated payload bytes retained across all orders.
    pub max_bytes: Option<u64>,
    /// Maximum number of snapshots retained across all orders.
    pub max_snapshots: Option<usize>,
}

impl SnapshotBudget {
    /// A byte-only budget.
    pub fn by_bytes(max_bytes: u64) -> Self {
        Self {
            max_bytes: Some(max_bytes),
            max_snapshots: None,
        }
    }

    /// A count-only budget.
    pub fn by_snapshots(max_snapshots: usize) -> Self {
        Self {
            max_bytes: None,
            max_snapshots: Some(max_snapshots),
        }
    }

    /// Whether the given store occupancy violates this budget.
    pub fn exceeded_by(&self, snapshots: usize, bytes: u64) -> bool {
        self.max_snapshots.is_some_and(|m| snapshots > m)
            || self.max_bytes.is_some_and(|m| bytes > m)
    }
}

/// What budget enforcement has cost a store so far.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetReport {
    /// Snapshots evicted by the budget (beyond normal pyramid retention).
    pub evictions: u64,
    /// Estimated payload bytes currently retained.
    pub retained_bytes: u64,
    /// Snapshots currently retained.
    pub retained: usize,
    /// The horizon-error bound actually in force: the configured
    /// `1/α^{l−1}` when the budget never bit, the inflated
    /// `1/α^{l_eff−1}` otherwise. Values ≥ 1 mean the guarantee is void
    /// for horizons resolving through the trimmed orders.
    pub effective_error_bound: f64,
    /// `effective_error_bound / configured bound` — 1.0 means the budget
    /// has not weakened the paper's guarantee.
    pub error_inflation: f64,
}

/// Effective `l` when only `retained` snapshots survive in an order:
/// the largest `l_eff` with `α^l_eff + 1 ≤ retained`.
pub(crate) fn effective_l(alpha: u64, retained: usize) -> u32 {
    if retained < 2 {
        return 0;
    }
    let mut l_eff = 0u32;
    let mut pow = 1u64;
    loop {
        match pow.checked_mul(alpha) {
            Some(next) if (next as u128) < retained as u128 => {
                pow = next;
                l_eff += 1;
            }
            _ => return l_eff,
        }
    }
}

/// The relative horizon-error bound `1/α^{l−1}` for an effective `l`.
/// `l = 0` yields `α` (no guarantee at all).
pub(crate) fn error_bound_for(alpha: u64, l: u32) -> f64 {
    let a = alpha as f64;
    a.powi(1 - l as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_predicates() {
        let b = SnapshotBudget {
            max_bytes: Some(1000),
            max_snapshots: Some(10),
        };
        assert!(!b.exceeded_by(10, 1000));
        assert!(b.exceeded_by(11, 0));
        assert!(b.exceeded_by(0, 1001));
        assert!(!SnapshotBudget::default().exceeded_by(usize::MAX, u64::MAX));
    }

    #[test]
    fn effective_l_matches_capacity_formula() {
        // α=2: capacity for l is 2^l + 1 → retaining exactly that many
        // preserves l; one fewer drops to l−1.
        for l in 1..=6u32 {
            let cap = 2u64.pow(l) as usize + 1;
            assert_eq!(effective_l(2, cap), l);
            assert_eq!(effective_l(2, cap - 1), l - 1);
        }
        assert_eq!(effective_l(2, 0), 0);
        assert_eq!(effective_l(2, 1), 0);
        assert_eq!(effective_l(2, 2), 0);
        assert_eq!(effective_l(2, 3), 1);
    }

    #[test]
    fn error_bound_inflates_as_l_shrinks() {
        assert!((error_bound_for(2, 4) - 0.125).abs() < 1e-12);
        assert!((error_bound_for(2, 1) - 1.0).abs() < 1e-12);
        assert!((error_bound_for(2, 0) - 2.0).abs() < 1e-12);
        assert!(error_bound_for(2, 0) > error_bound_for(2, 1));
    }
}
