//! Pyramidal frame geometry: orders, capacities and the horizon guarantee.

use serde::{Deserialize, Serialize};
use ustream_common::{Result, Timestamp, UStreamError};

/// Geometry of the pyramidal time frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PyramidConfig {
    /// Base `α ≥ 2`: snapshots of order `i` are spaced `α^i` ticks apart.
    pub alpha: u64,
    /// Retention exponent `l ≥ 1`: each order keeps `α^l + 1` snapshots.
    pub l: u32,
}

impl Default for PyramidConfig {
    fn default() -> Self {
        // α = 2, l = 4: 17 snapshots per order; horizon error ≤ 1/α^{l-1} = 1/8.
        Self { alpha: 2, l: 4 }
    }
}

impl PyramidConfig {
    /// Validated constructor.
    pub fn new(alpha: u64, l: u32) -> Result<Self> {
        if alpha < 2 {
            return Err(UStreamError::InvalidConfig(format!(
                "pyramid base alpha must be >= 2, got {alpha}"
            )));
        }
        if l < 1 {
            return Err(UStreamError::InvalidConfig(
                "pyramid retention exponent l must be >= 1".into(),
            ));
        }
        // alpha^l must fit comfortably in u64 capacity arithmetic.
        if (alpha as f64).powi(l as i32) > 1e15 {
            return Err(UStreamError::InvalidConfig(format!(
                "alpha^l too large: {alpha}^{l}"
            )));
        }
        Ok(Self { alpha, l })
    }

    /// Snapshots retained per order: `α^l + 1`.
    pub fn per_order_capacity(&self) -> usize {
        self.alpha.pow(self.l) as usize + 1
    }

    /// Upper bound on the relative horizon error: `1/α^{l−1}`.
    ///
    /// For any horizon `h` covered by the retained snapshots there is a
    /// stored snapshot at `h'` with `(h' − h)/h ≤ 1/α^{l−1}` (Eq. 7 of the
    /// paper, restated).
    pub fn horizon_error_bound(&self) -> f64 {
        1.0 / (self.alpha as f64).powi(self.l as i32 - 1)
    }

    /// Maximum order needed for a stream of length `t`: `⌊log_α t⌋`.
    pub fn max_order_for(&self, t: Timestamp) -> u32 {
        if t == 0 {
            return 0;
        }
        let mut order = 0u32;
        let mut p = self.alpha;
        while p <= t {
            order += 1;
            match p.checked_mul(self.alpha) {
                Some(next) => p = next,
                None => break,
            }
        }
        order
    }
}

/// The order of the snapshot taken at tick `t`: the largest `i` with
/// `α^i | t`. Tick 0 is defined to have order 0 (it is the stream origin and
/// never re-taken).
pub fn snapshot_order(t: Timestamp, alpha: u64) -> u32 {
    debug_assert!(alpha >= 2);
    if t == 0 {
        return 0;
    }
    let mut order = 0u32;
    let mut rest = t;
    while rest.is_multiple_of(alpha) {
        order += 1;
        rest /= alpha;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let c = PyramidConfig::default();
        assert_eq!(c.per_order_capacity(), 17);
        assert!((c.horizon_error_bound() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_alpha() {
        assert!(PyramidConfig::new(1, 2).is_err());
        assert!(PyramidConfig::new(0, 2).is_err());
        assert!(PyramidConfig::new(2, 0).is_err());
    }

    #[test]
    fn order_of_powers() {
        assert_eq!(snapshot_order(1, 2), 0);
        assert_eq!(snapshot_order(2, 2), 1);
        assert_eq!(snapshot_order(4, 2), 2);
        assert_eq!(snapshot_order(6, 2), 1);
        assert_eq!(snapshot_order(8, 2), 3);
        assert_eq!(snapshot_order(12, 2), 2);
        assert_eq!(snapshot_order(1024, 2), 10);
        assert_eq!(snapshot_order(0, 2), 0);
    }

    #[test]
    fn order_base_three() {
        assert_eq!(snapshot_order(9, 3), 2);
        assert_eq!(snapshot_order(27, 3), 3);
        assert_eq!(snapshot_order(10, 3), 0);
    }

    #[test]
    fn max_order() {
        let c = PyramidConfig::new(2, 2).unwrap();
        assert_eq!(c.max_order_for(0), 0);
        assert_eq!(c.max_order_for(1), 0);
        assert_eq!(c.max_order_for(2), 1);
        assert_eq!(c.max_order_for(1024), 10);
        assert_eq!(c.max_order_for(1023), 9);
    }

    #[test]
    fn error_bound_shrinks_with_l() {
        let e1 = PyramidConfig::new(2, 2).unwrap().horizon_error_bound();
        let e2 = PyramidConfig::new(2, 6).unwrap().horizon_error_bound();
        assert!(e2 < e1);
    }
}
