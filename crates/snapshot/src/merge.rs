//! Exact merging of per-shard micro-cluster sets into one global view.
//!
//! The ECF's additive property (Property 2.1 of the paper) means a cluster
//! set maintained over any partition of the stream can be folded into a
//! single set without information loss: the union of the shards' summaries
//! carries exactly the statistics a single clusterer would carry for the
//! same point-to-cluster assignment. The sharded ingestion engine relies on
//! this: each shard clusters its slice of the stream independently, and the
//! periodic merge is a pure union of namespaced summaries.
//!
//! Cluster ids are only unique *within* a shard, so the merge namespaces
//! them: the shard index occupies the top [`SHARD_ID_BITS`]-complement bits
//! of the 64-bit id and the shard-local id keeps the low bits. Shard 0 maps
//! to the identity, so a single-shard engine produces exactly the ids an
//! unsharded run would.

use crate::store::ClusterSetSnapshot;
use ustream_common::AdditiveFeature;

/// Bits of a global cluster id reserved for the shard-local id.
pub const SHARD_ID_BITS: u32 = 48;

/// Mask selecting the shard-local bits of a global id.
pub const LOCAL_ID_MASK: u64 = (1 << SHARD_ID_BITS) - 1;

/// Maps a shard-local cluster id into the global id space.
///
/// # Panics
/// Debug builds assert the local id fits in [`SHARD_ID_BITS`] bits and the
/// shard index fits in the remaining bits (2^16 shards is far beyond any
/// sane configuration).
pub fn namespaced_id(shard: usize, local_id: u64) -> u64 {
    debug_assert!(local_id <= LOCAL_ID_MASK, "local cluster id overflow");
    debug_assert!(
        (shard as u64) < (1 << (64 - SHARD_ID_BITS)),
        "shard index overflow"
    );
    ((shard as u64) << SHARD_ID_BITS) | local_id
}

/// The shard index encoded in a global cluster id.
pub fn shard_of_id(id: u64) -> usize {
    (id >> SHARD_ID_BITS) as usize
}

/// The shard-local cluster id encoded in a global cluster id.
pub fn local_id_of(id: u64) -> u64 {
    id & LOCAL_ID_MASK
}

/// Folds per-shard snapshots into one global snapshot by namespacing every
/// cluster id with its shard index. The fold is exact: no summaries are
/// combined or dropped, so every additive statistic (weight, first and
/// second moments, error moments) of the union equals the sum over shards.
pub fn merge_namespaced<F: AdditiveFeature>(
    parts: impl IntoIterator<Item = (usize, ClusterSetSnapshot<F>)>,
) -> ClusterSetSnapshot<F> {
    let mut merged = ClusterSetSnapshot::default();
    for (shard, part) in parts {
        for (local, feature) in part.clusters {
            merged.clusters.insert(namespaced_id(shard, local), feature);
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use ustream_common::Timestamp;

    /// Minimal additive feature: a 1-d sum + count.
    #[derive(Debug, Clone, PartialEq)]
    struct Toy {
        sum: f64,
        n: f64,
    }

    impl AdditiveFeature for Toy {
        fn dims(&self) -> usize {
            1
        }
        fn count(&self) -> f64 {
            self.n
        }
        fn last_update(&self) -> Timestamp {
            0
        }
        fn merge(&mut self, other: &Self) {
            self.sum += other.sum;
            self.n += other.n;
        }
        fn subtract(&mut self, other: &Self) {
            self.sum -= other.sum;
            self.n = (self.n - other.n).max(0.0);
        }
        fn centroid(&self) -> Vec<f64> {
            vec![self.sum / self.n.max(1e-12)]
        }
    }

    fn cf(x: f64, n: usize) -> Toy {
        Toy {
            sum: x * n as f64,
            n: n as f64,
        }
    }

    #[test]
    fn id_namespacing_round_trips() {
        let id = namespaced_id(3, 42);
        assert_eq!(shard_of_id(id), 3);
        assert_eq!(local_id_of(id), 42);
        // Shard 0 is the identity mapping.
        assert_eq!(namespaced_id(0, 7), 7);
    }

    #[test]
    fn merge_preserves_total_count() {
        let a = ClusterSetSnapshot::from_pairs([(0u64, cf(0.0, 3)), (1, cf(5.0, 2))]);
        let b = ClusterSetSnapshot::from_pairs([(0u64, cf(9.0, 4))]);
        let merged = merge_namespaced([(0, a.clone()), (1, b.clone())]);
        assert_eq!(merged.len(), 3);
        assert!((merged.total_count() - (a.total_count() + b.total_count())).abs() < 1e-12);
        // Same local id on different shards must not collide.
        assert!(merged.clusters.contains_key(&0));
        assert!(merged.clusters.contains_key(&namespaced_id(1, 0)));
    }

    #[test]
    fn merge_of_single_shard_is_identity() {
        let a = ClusterSetSnapshot::from_pairs([(4u64, cf(1.0, 2)), (9, cf(2.0, 1))]);
        let merged = merge_namespaced([(0, a.clone())]);
        assert_eq!(
            merged.clusters.keys().collect::<Vec<_>>(),
            a.clusters.keys().collect::<Vec<_>>()
        );
    }
}
