//! Snapshot persistence as JSON lines.
//!
//! CluStream-style frameworks persist snapshots so that offline horizon
//! analysis can run long after the stream ended. We use one JSON object per
//! line — human-greppable and appendable, which matters for a store that is
//! written continuously while a stream runs.

use crate::store::{SnapshotStore, StoredSnapshot};
use crate::PyramidConfig;
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use ustream_common::{Result, UStreamError};

/// Writes every retained snapshot, oldest first, one JSON object per line.
pub fn write_snapshots<S, W>(store: &SnapshotStore<S>, writer: W) -> Result<()>
where
    S: Serialize + Clone,
    W: Write,
{
    let mut out = BufWriter::new(writer);
    for snap in store.iter_chronological() {
        let line = serde_json::to_string(snap).map_err(|e| UStreamError::Serde(e.to_string()))?;
        writeln!(out, "{line}")?;
    }
    out.flush()?;
    Ok(())
}

/// Reads snapshots (as written by [`write_snapshots`]) into a fresh store.
///
/// Snapshots must appear in chronological order, which `write_snapshots`
/// guarantees.
pub fn read_snapshots<S, R>(config: PyramidConfig, reader: R) -> Result<SnapshotStore<S>>
where
    S: DeserializeOwned + Clone,
    R: Read,
{
    let mut store = SnapshotStore::new(config);
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let snap: StoredSnapshot<S> = serde_json::from_str(&line)
            .map_err(|e| UStreamError::Serde(format!("line {}: {e}", lineno + 1)))?;
        store.record(snap.time, snap.data);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let cfg = PyramidConfig::new(2, 3).unwrap();
        let mut store = SnapshotStore::new(cfg);
        for t in 1..=50u64 {
            store.record(t, vec![t as f64, (t * 2) as f64]);
        }
        let mut buf = Vec::new();
        write_snapshots(&store, &mut buf).unwrap();
        assert!(!buf.is_empty());

        let restored: SnapshotStore<Vec<f64>> = read_snapshots(cfg, buf.as_slice()).unwrap();
        assert_eq!(restored.len(), store.len());
        for (a, b) in store
            .iter_chronological()
            .zip(restored.iter_chronological())
        {
            assert_eq!(a.time, b.time);
            assert_eq!(a.order, b.order);
            assert_eq!(a.data, b.data);
        }
    }

    #[test]
    fn empty_store_round_trips() {
        let cfg = PyramidConfig::default();
        let store: SnapshotStore<u64> = SnapshotStore::new(cfg);
        let mut buf = Vec::new();
        write_snapshots(&store, &mut buf).unwrap();
        let restored: SnapshotStore<u64> = read_snapshots(cfg, buf.as_slice()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn blank_lines_ignored() {
        let cfg = PyramidConfig::default();
        let input = b"\n\n".to_vec();
        let restored: SnapshotStore<u64> = read_snapshots(cfg, input.as_slice()).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn corrupt_line_reports_position() {
        let cfg = PyramidConfig::default();
        let input = b"{not json}\n".to_vec();
        let err = read_snapshots::<u64, _>(cfg, input.as_slice()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
