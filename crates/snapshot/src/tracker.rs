//! A feature-generic horizon tracker.
//!
//! [`HorizonTracker`] packages the recurring pattern on top of
//! [`SnapshotStore`]: record keyed cluster-set snapshots as the stream
//! advances, and answer "clusters of the window `(now − h, now]`" by keyed
//! subtraction. Both the deterministic CluStream feature vector and the
//! uncertain ECF run through the same tracker — the subtractive property is
//! all it needs.

use crate::budget::{BudgetReport, SnapshotBudget};
use crate::pyramid::PyramidConfig;
use crate::store::{ClusterSetSnapshot, SnapshotStore};
use ustream_common::{AdditiveFeature, Result, Timestamp, UStreamError};

/// Records snapshots and answers horizon queries for any additive feature.
#[derive(Debug, Clone)]
pub struct HorizonTracker<F> {
    store: SnapshotStore<ClusterSetSnapshot<F>>,
    last_recorded: Timestamp,
}

impl<F: AdditiveFeature> HorizonTracker<F> {
    /// Tracker with the given pyramid geometry.
    pub fn new(config: PyramidConfig) -> Self {
        Self {
            store: SnapshotStore::new(config),
            last_recorded: 0,
        }
    }

    /// Tracker with the default geometry (α = 2, l = 4).
    pub fn with_defaults() -> Self {
        Self::new(PyramidConfig::default())
    }

    /// The underlying snapshot store (persistence, inspection).
    pub fn store(&self) -> &SnapshotStore<ClusterSetSnapshot<F>> {
        &self.store
    }

    /// Installs a memory budget on the underlying store, measured with
    /// [`ClusterSetSnapshot::approx_bytes`]. See [`SnapshotBudget`].
    pub fn set_budget(&mut self, budget: SnapshotBudget) {
        self.store
            .set_budget(budget, |s: &ClusterSetSnapshot<F>| s.approx_bytes());
    }

    /// Budget accounting of the underlying store.
    pub fn budget_report(&self) -> BudgetReport {
        self.store.budget_report()
    }

    /// Records the cluster set active at tick `now`.
    pub fn record_snapshot(&mut self, now: Timestamp, snap: ClusterSetSnapshot<F>) {
        self.store.record(now, snap);
        self.last_recorded = now;
    }

    /// Tick of the most recent recorded snapshot.
    pub fn last_recorded(&self) -> Timestamp {
        self.last_recorded
    }

    /// The full snapshot at (or just before) `t`.
    pub fn clusters_at(&self, t: Timestamp) -> Option<&ClusterSetSnapshot<F>> {
        self.store.find_at_or_before(t).map(|s| &s.data)
    }

    /// The cluster statistics of the window `(now − h, now]` via keyed
    /// subtraction (see [`ClusterSetSnapshot::subtract_past`]).
    pub fn horizon_clusters(&self, now: Timestamp, h: u64) -> Result<ClusterSetSnapshot<F>> {
        let current = self
            .store
            .find_at_or_before(now)
            .ok_or(UStreamError::HorizonUnavailable { requested: h })?;
        let base = self.store.horizon_base(current.time, h)?;
        Ok(current.data.subtract_past(&base.data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Toy {
        sum: f64,
        n: f64,
        t: Timestamp,
    }

    impl AdditiveFeature for Toy {
        fn dims(&self) -> usize {
            1
        }
        fn count(&self) -> f64 {
            self.n
        }
        fn last_update(&self) -> Timestamp {
            self.t
        }
        fn merge(&mut self, other: &Self) {
            self.sum += other.sum;
            self.n += other.n;
            self.t = self.t.max(other.t);
        }
        fn subtract(&mut self, other: &Self) {
            self.sum -= other.sum;
            self.n = (self.n - other.n).max(0.0);
        }
        fn centroid(&self) -> Vec<f64> {
            vec![self.sum / self.n.max(1e-12)]
        }
    }

    #[test]
    fn generic_tracker_round_trip() {
        let mut tracker: HorizonTracker<Toy> =
            HorizonTracker::new(PyramidConfig::new(2, 5).unwrap());
        // One cluster accumulating one unit per tick.
        for t in 1..=256u64 {
            tracker.record_snapshot(
                t,
                ClusterSetSnapshot::from_pairs([(
                    1u64,
                    Toy {
                        sum: t as f64,
                        n: t as f64,
                        t,
                    },
                )]),
            );
        }
        assert_eq!(tracker.last_recorded(), 256);
        let window = tracker.horizon_clusters(256, 64).unwrap();
        // The window holds exactly the last 64 units (256 and 192 are both
        // stored exactly).
        assert!((window.clusters[&1].n - 64.0).abs() < 1e-9);
        assert!(tracker.clusters_at(256).is_some());
        assert!(tracker.clusters_at(0).is_none());
    }

    #[test]
    fn unavailable_horizon_errors() {
        let tracker: HorizonTracker<Toy> = HorizonTracker::with_defaults();
        assert!(tracker.horizon_clusters(10, 5).is_err());
    }
}
